//! Offline stand-in for the `rand` crate: a deterministic, seedable
//! generator with the `SeedableRng::seed_from_u64` + `Rng::gen_range`
//! surface this workspace uses.
//!
//! The registry is unreachable in this build environment, so the real
//! crate cannot be fetched. Every use here seeds explicitly (the
//! workloads demand reproducible corpora), so a fixed, portable PRNG is
//! exactly what is wanted: `StdRng` is xoshiro256** seeded via
//! SplitMix64, the construction recommended by its authors. Streams are
//! stable across platforms and releases — corpora generated on one
//! machine hash identically on another, which content addressing relies
//! on in tests.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of randomness: the subset of `rand::RngCore` we need.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, must be nonempty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform bits give an exact dyadic comparison.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per
                // draw, irrelevant for workload generation.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let off = (wide >> 64) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a "standard" full-width distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** with SplitMix64 seeding: fast, portable, and with a
    /// fixed stream per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let diff: Vec<u64> = (0..16).map(|_| d.gen_range(0..1_000_000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }
}
