//! Offline stand-in for `criterion`: the `criterion_group!` /
//! `criterion_main!` harness surface with a simple sampled timer
//! instead of criterion's statistical machinery.
//!
//! The registry is unreachable in this build environment, so the real
//! crate cannot be fetched. Bench binaries compile and run: each
//! `bench_function` is warmed up, then timed over a handful of batches,
//! and the per-iteration min/median/max are printed — the spread is
//! what makes pipelining wins (and noise-floor regressions) visible,
//! where a bare median could hide them. Swap in real criterion when a
//! registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The per-iteration timing spread of one benchmark: the fastest,
/// median, and slowest sampled batch.
#[derive(Clone, Copy, Debug, Default)]
struct Spread {
    min: Duration,
    median: Duration,
    max: Duration,
}

/// Measurement context handed to each benchmark closure.
pub struct Bencher {
    /// Timing spread of the last `iter` call.
    last: Option<Spread>,
}

impl Bencher {
    /// Times `f`, storing the min/median/max per-iteration durations
    /// over the sampled batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibration of the batch size to ~2 ms.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < Duration::from_millis(20) {
            black_box(f());
            warm_iters += 1;
        }
        let per = start.elapsed() / warm_iters.max(1) as u32;
        let batch = (Duration::from_millis(2).as_nanos() / per.as_nanos().max(1)).max(1) as u64;

        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed() / batch as u32);
        }
        samples.sort();
        self.last = Some(Spread {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
        });
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark. Like the real crate's
    /// `impl Into<BenchmarkId>`, the id may be owned or borrowed.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut b = Bencher { last: None };
        f(&mut b);
        let spread = b.last.unwrap_or_default();
        let (min, median, max) = (spread.min, spread.median, spread.max);
        // Median leads (comparable to the old single-number output);
        // the min..max spread makes wins and regressions visible.
        match self.throughput {
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let gibps = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
                println!(
                    "{}/{id}: {median:?}/iter [min {min:?}, max {max:?}] ({gibps:.2} GiB/s)",
                    self.name
                );
            }
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let eps = n as f64 / median.as_secs_f64();
                println!(
                    "{}/{id}: {median:?}/iter [min {min:?}, max {max:?}] ({eps:.0} elem/s)",
                    self.name
                );
            }
            _ => println!(
                "{}/{id}: {median:?}/iter [min {min:?}, max {max:?}]",
                self.name
            ),
        }
        self
    }

    /// Accepted for API compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level harness object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group runner compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
