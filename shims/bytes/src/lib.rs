//! Offline stand-in for the `bytes` crate: the subset of the `Bytes`
//! API this workspace uses, backed by an `Arc<[u8]>` plus a window.
//!
//! The container's build environment has no registry access, so the
//! real crate cannot be fetched; this shim is dependency-free and keeps
//! the same semantics for the operations Fix relies on: O(1) clone,
//! O(1) sub-slicing that shares the allocation, and `Deref<[u8]>`.

#![forbid(unsafe_code)]

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable region of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty region.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies `data` into a fresh shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Creates a region from a static slice (copies; the real crate
    /// borrows, but nothing here depends on that distinction).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// The number of bytes in the region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-region sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice (named to match the real crate's
    /// inherent method, which shadows the trait).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the region out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn equality_and_clone() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(a == b"hello".to_vec());
    }
}
