//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex` /
//! `RwLock` / `Condvar` API, implemented over `std::sync`.
//!
//! The registry is unreachable in this build environment, so the real
//! crate cannot be fetched. Semantics match what the workspace needs:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`),
//! and a poisoned std lock (a panic while held) is treated as still
//! usable, mirroring parking_lot's indifference to panics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses, releasing the
    /// guard's lock while waiting.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    ///
    /// The real crate returns whether a thread was woken; `std` cannot
    /// report that, so this always returns `true`. Do not branch on it.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiting threads.
    ///
    /// The real crate returns the number of threads woken; `std` cannot
    /// report that, so this always returns `0`. Do not branch on it.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed
/// (as opposed to a notification).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        t.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(1u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }
}
