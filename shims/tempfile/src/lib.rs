//! Offline stand-in for `tempfile`: the `TempDir` subset the workspace
//! uses (tempdir-with-cleanup only).
//!
//! The registry is unreachable in this build environment, so the real
//! crate cannot be fetched. A [`TempDir`] is a directory under
//! `std::env::temp_dir()` whose name mixes the process id with a
//! process-wide counter (unique without consulting the clock or a RNG),
//! removed recursively on drop.

#![forbid(unsafe_code)]

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory that deletes itself (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: Option<PathBuf>,
}

impl TempDir {
    /// Creates a fresh, empty temp directory.
    pub fn new() -> io::Result<TempDir> {
        Self::with_prefix("tmp")
    }

    /// Creates a fresh temp directory whose name starts with `prefix`.
    pub fn with_prefix<S: AsRef<str>>(prefix: S) -> io::Result<TempDir> {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("{}-{}-{n}", prefix.as_ref(), std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path: Some(path) })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        self.path.as_deref().expect("TempDir already taken")
    }

    /// Disarms the cleanup and returns the path (the directory persists).
    pub fn keep(mut self) -> PathBuf {
        self.path.take().expect("TempDir already taken")
    }

    /// Deletes the directory now, reporting any error (drop ignores them).
    pub fn close(mut self) -> io::Result<()> {
        match self.path.take() {
            Some(path) => std::fs::remove_dir_all(path),
            None => Ok(()),
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_dir_all(path);
        }
    }
}

/// Creates a temp directory (the free-function form of [`TempDir::new`]).
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let dir = TempDir::new().unwrap();
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("nested"), b"x").unwrap();
        std::fs::create_dir(path.join("sub")).unwrap();
        std::fs::write(path.join("sub/inner"), b"y").unwrap();
        drop(dir);
        assert!(!path.exists(), "drop must remove the tree recursively");
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new().unwrap();
        let b = TempDir::new().unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn close_reports_and_keep_disarms() {
        let dir = TempDir::new().unwrap();
        dir.close().unwrap();

        let dir = TempDir::new().unwrap();
        let path = dir.keep();
        assert!(path.exists());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
