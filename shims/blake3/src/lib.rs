//! Offline stand-in for the `blake3` crate: a portable reference
//! implementation of BLAKE3 (hash, keyed hash, and XOF), written
//! directly from the specification's reference design.
//!
//! The registry is unreachable in this build environment, so the
//! official crate cannot be fetched. `fix-hash` uses this crate purely
//! as a cross-check oracle; it is a second, structurally independent
//! implementation (chunk-state + output objects, like the spec's
//! `reference_impl`, vs `fix-hash`'s CV-stack-with-merge-by-count), and
//! it pins official test vectors below so the digest paths cannot drift
//! together. Two pins could not be transcribed offline and are marked
//! as fix-hash cross-checks instead (keyed len-2049, XOF bytes 32..64);
//! XOF output past block 1 has no independent anchor yet — re-pin from
//! the official `test_vectors.json` when a registry is reachable.

#![forbid(unsafe_code)]

/// Bytes in a compression block.
const BLOCK_LEN: usize = 64;
/// Bytes in a chunk.
const CHUNK_LEN: usize = 1024;

const CHUNK_START: u32 = 1 << 0;
const CHUNK_END: u32 = 1 << 1;
const PARENT: u32 = 1 << 2;
const ROOT: u32 = 1 << 3;
const KEYED_HASH: u32 = 1 << 4;

const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

#[inline]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

fn permute(m: &mut [u32; 16]) {
    let mut out = [0u32; 16];
    for i in 0..16 {
        out[i] = m[MSG_PERMUTATION[i]];
    }
    *m = out;
}

fn compress(
    cv: &[u32; 8],
    block_words: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 16] {
    let mut state = [
        cv[0],
        cv[1],
        cv[2],
        cv[3],
        cv[4],
        cv[5],
        cv[6],
        cv[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut block = *block_words;
    round(&mut state, &block); // round 1
    for _ in 0..6 {
        permute(&mut block);
        round(&mut state, &block); // rounds 2..=7
    }
    for i in 0..8 {
        state[i] ^= state[i + 8];
        state[i + 8] ^= cv[i];
    }
    state
}

fn words_from_block(bytes: &[u8]) -> [u32; 16] {
    let mut words = [0u32; 16];
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut buf = [0u8; 4];
        buf[..chunk.len()].copy_from_slice(chunk);
        words[i] = u32::from_le_bytes(buf);
    }
    words
}

fn first_8(words: [u32; 16]) -> [u32; 8] {
    let mut cv = [0u32; 8];
    cv.copy_from_slice(&words[..8]);
    cv
}

/// A pending compression whose output can be a CV or root bytes.
#[derive(Clone)]
struct Output {
    cv: [u32; 8],
    block: [u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
}

impl Output {
    fn chaining_value(&self) -> [u32; 8] {
        first_8(compress(
            &self.cv,
            &self.block,
            self.counter,
            self.block_len,
            self.flags,
        ))
    }

    fn root_block(&self, block_counter: u64) -> [u8; 64] {
        let words = compress(
            &self.cv,
            &self.block,
            block_counter,
            self.block_len,
            self.flags | ROOT,
        );
        let mut out = [0u8; 64];
        for (i, w) in words.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[derive(Clone)]
struct ChunkState {
    cv: [u32; 8],
    chunk_counter: u64,
    block: [u8; BLOCK_LEN],
    block_len: u8,
    blocks_compressed: u8,
    flags: u32,
}

impl ChunkState {
    fn new(key: &[u32; 8], chunk_counter: u64, flags: u32) -> ChunkState {
        ChunkState {
            cv: *key,
            chunk_counter,
            block: [0; BLOCK_LEN],
            block_len: 0,
            blocks_compressed: 0,
            flags,
        }
    }

    fn len(&self) -> usize {
        BLOCK_LEN * self.blocks_compressed as usize + self.block_len as usize
    }

    fn start_flag(&self) -> u32 {
        if self.blocks_compressed == 0 {
            CHUNK_START
        } else {
            0
        }
    }

    fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            if self.block_len as usize == BLOCK_LEN {
                let words = words_from_block(&self.block);
                self.cv = first_8(compress(
                    &self.cv,
                    &words,
                    self.chunk_counter,
                    BLOCK_LEN as u32,
                    self.flags | self.start_flag(),
                ));
                self.blocks_compressed += 1;
                self.block = [0; BLOCK_LEN];
                self.block_len = 0;
            }
            let want = BLOCK_LEN - self.block_len as usize;
            let take = want.min(input.len());
            self.block[self.block_len as usize..self.block_len as usize + take]
                .copy_from_slice(&input[..take]);
            self.block_len += take as u8;
            input = &input[take..];
        }
    }

    fn output(&self) -> Output {
        Output {
            cv: self.cv,
            block: words_from_block(&self.block),
            counter: self.chunk_counter,
            block_len: self.block_len as u32,
            flags: self.flags | self.start_flag() | CHUNK_END,
        }
    }
}

fn parent_output(left: [u32; 8], right: [u32; 8], key: &[u32; 8], flags: u32) -> Output {
    let mut block = [0u32; 16];
    block[..8].copy_from_slice(&left);
    block[8..].copy_from_slice(&right);
    Output {
        cv: *key,
        block,
        counter: 0,
        block_len: BLOCK_LEN as u32,
        flags: flags | PARENT,
    }
}

/// A 32-byte BLAKE3 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hash([u8; 32]);

impl Hash {
    /// The digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex of the digest.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl From<Hash> for [u8; 32] {
    fn from(h: Hash) -> [u8; 32] {
        h.0
    }
}

impl std::fmt::Debug for Hash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hash({})", self.to_hex())
    }
}

/// Incremental hasher (default, or keyed via [`Hasher::new_keyed`]).
#[derive(Clone)]
pub struct Hasher {
    chunk: ChunkState,
    key: [u32; 8],
    cv_stack: Vec<[u32; 8]>,
    flags: u32,
}

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

impl Hasher {
    /// The regular (unkeyed) mode.
    pub fn new() -> Hasher {
        Hasher::with_key_flags(IV, 0)
    }

    /// The keyed-hash mode.
    pub fn new_keyed(key: &[u8; 32]) -> Hasher {
        let mut words = [0u32; 8];
        for (i, c) in key.chunks(4).enumerate() {
            words[i] = u32::from_le_bytes(c.try_into().unwrap());
        }
        Hasher::with_key_flags(words, KEYED_HASH)
    }

    fn with_key_flags(key: [u32; 8], flags: u32) -> Hasher {
        Hasher {
            chunk: ChunkState::new(&key, 0, flags),
            key,
            cv_stack: Vec::new(),
            flags,
        }
    }

    fn add_chunk_cv(&mut self, mut cv: [u32; 8], mut total_chunks: u64) {
        while total_chunks & 1 == 0 {
            let left = self.cv_stack.pop().expect("stack underflow");
            cv = parent_output(left, cv, &self.key, self.flags).chaining_value();
            total_chunks >>= 1;
        }
        self.cv_stack.push(cv);
    }

    /// Absorbs `input`; chainable.
    pub fn update(&mut self, mut input: &[u8]) -> &mut Hasher {
        while !input.is_empty() {
            if self.chunk.len() == CHUNK_LEN {
                let cv = self.chunk.output().chaining_value();
                let total = self.chunk.chunk_counter + 1;
                self.add_chunk_cv(cv, total);
                self.chunk = ChunkState::new(&self.key, total, self.flags);
            }
            let take = (CHUNK_LEN - self.chunk.len()).min(input.len());
            self.chunk.update(&input[..take]);
            input = &input[take..];
        }
        self
    }

    fn root_output(&self) -> Output {
        let mut output = self.chunk.output();
        for &left in self.cv_stack.iter().rev() {
            output = parent_output(left, output.chaining_value(), &self.key, self.flags);
        }
        output
    }

    /// The 32-byte digest of everything absorbed so far.
    pub fn finalize(&self) -> Hash {
        let block = self.root_output().root_block(0);
        let mut out = [0u8; 32];
        out.copy_from_slice(&block[..32]);
        Hash(out)
    }

    /// An extendable-output reader over the root node.
    pub fn finalize_xof(&self) -> OutputReader {
        OutputReader {
            output: self.root_output(),
            position: 0,
        }
    }
}

/// Streams arbitrary-length output from a finalized hash.
pub struct OutputReader {
    output: Output,
    position: u64,
}

impl OutputReader {
    /// Fills `buf` with the next output bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        while filled < buf.len() {
            let block_index = self.position / BLOCK_LEN as u64;
            let offset = (self.position % BLOCK_LEN as u64) as usize;
            let block = self.output.root_block(block_index);
            let take = (BLOCK_LEN - offset).min(buf.len() - filled);
            buf[filled..filled + take].copy_from_slice(&block[offset..offset + take]);
            filled += take;
            self.position += take as u64;
        }
    }
}

/// One-shot hash of `input`.
pub fn hash(input: &[u8]) -> Hash {
    let mut h = Hasher::new();
    h.update(input);
    h.finalize()
}

/// One-shot keyed hash of `input` under `key`.
pub fn keyed_hash(key: &[u8; 32], input: &[u8]) -> Hash {
    let mut h = Hasher::new_keyed(key);
    h.update(input);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The official test-vector input pattern: byte `i` is `i % 251`.
    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    /// Official test vectors (first 32 bytes of `hash`), from the BLAKE3
    /// repository's `test_vectors.json`.
    #[test]
    fn official_vectors() {
        let cases: &[(usize, &str)] = &[
            (
                0,
                "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262",
            ),
            (
                1,
                "2d3adedff11b61f14c886e35afa036736dcd87a74d27b5c1510225d0f592e213",
            ),
            (
                1023,
                "10108970eeda3eb932baac1428c7a2163b0e924c9a9e25b35bba72b28f70bd11",
            ),
            (
                1024,
                "42214739f095a406f3fc83deb889744ac00df831c10daa55189b5d121c855af7",
            ),
            (
                1025,
                "d00278ae47eb27b34faecf67b4fe263f82d5412916c1ffd97c8cb7fb814b8444",
            ),
            (
                2048,
                "e776b6028c7cd22a4d0ba182a8bf62205d2ef576467e838ed6f2529b85fba24a",
            ),
            (
                2049,
                "5f4d72f40d7a5f82b15ca2b2e44b1de3c2ef86c426c95c1af0b6879522563030",
            ),
            (
                3072,
                "b98cb0ff3623be03326b373de6b9095218513e64f1ee2edd2525c7ad1e5cffd2",
            ),
            (
                3073,
                "7124b49501012f81cc7f11ca069ec9226cecb8a2c850cfe644e327d22d3e1cd3",
            ),
            (
                4096,
                "015094013f57a5277b59d8475c0501042c0b642e531b0a1c8f58d2163229e969",
            ),
            (
                5120,
                "9cadc15fed8b5d854562b26a9536d9707cadeda9b143978f319ab34230535833",
            ),
            (
                31744,
                "62b6960e1a44bcc1eb1a611a8d6235b6b4b78f32e7abc4fb4c6cdcce94895c47",
            ),
        ];
        for &(len, expect) in cases {
            assert_eq!(hash(&pattern(len)).to_hex(), expect, "input length {len}");
        }
    }

    #[test]
    fn official_keyed_vectors() {
        // key = "whats the Elvish word for friend" (the official vector key).
        let key: &[u8; 32] = b"whats the Elvish word for friend";
        let cases: &[(usize, &str)] = &[
            (
                0,
                "92b2b75604ed3c761f9d6f62392c8a9227ad0ea3f09573e783f1498a4ed60d26",
            ),
            (
                1,
                "6d7878dfff2f485635d39013278ae14f1454b8c0a3a2d34bc1ab38228a80c95b",
            ),
            (
                1024,
                "75c46f6f3d9eb4f55ecaaee480db732e6c2105546f1e675003687c31719c7ba4",
            ),
            (
                1025,
                "357dc55de0c7e382c900fd6e320acc04146be01db6a8ce7210b7189bd664ea69",
            ),
            // Regression pin (cross-checked against fix-hash's independent
            // implementation), not transcribed from the official file.
            (
                2049,
                "9f29700902f7c86e514ddc4df1e3049f258b2472b6dd5267f61bf13983b78dd5",
            ),
        ];
        for &(len, expect) in cases {
            assert_eq!(
                keyed_hash(key, &pattern(len)).to_hex(),
                expect,
                "keyed length {len}"
            );
        }
    }

    #[test]
    fn xof_extends_the_digest() {
        let mut h = Hasher::new();
        h.update(&pattern(2049));
        let mut long = vec![0u8; 101];
        h.finalize_xof().fill(&mut long);
        assert_eq!(&long[..32], h.finalize().as_bytes());
        // First 32 bytes are the official len=2049 digest; the tail is a
        // regression pin cross-checked against fix-hash's independent
        // XOF implementation.
        let mut first64 = vec![0u8; 64];
        h.finalize_xof().fill(&mut first64);
        let hex: String = first64.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "5f4d72f40d7a5f82b15ca2b2e44b1de3c2ef86c426c95c1af0b6879522563030\
             96de31d71d74103403822a2e0bc1eb193e7aecc9643a76b7bbc0c9f9c52e8783",
        );
    }

    #[test]
    fn streaming_split_equivalence() {
        let input = pattern(7000);
        let oneshot = hash(&input);
        for split in [1usize, 63, 64, 65, 1024, 1025] {
            let mut h = Hasher::new();
            for c in input.chunks(split) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "split {split}");
        }
    }
}
