//! The [`Strategy`] trait and combinators (sampling only, no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                (self.start as i128 + (wide >> 64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        // Parsed per sample; patterns in tests are tiny.
        let atoms = crate::string::parse(self);
        crate::string::generate(&atoms, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
