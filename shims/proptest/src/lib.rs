//! Offline stand-in for `proptest`: the subset of the API this
//! workspace's property tests use, with deterministic per-test random
//! streams and **no shrinking** (a failing case panics with its seed
//! context instead of minimizing).
//!
//! The registry is unreachable in this build environment, so the real
//! crate cannot be fetched. The surface kept compatible:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prelude`] with [`Strategy`](strategy::Strategy), `any::<T>()`,
//!   `prop_assert!` / `prop_assert_eq!`,
//! * [`collection`] (`vec`, `hash_map`, `btree_set`),
//! * `&str` regex-subset strategies (char classes + `{m,n}` repeats),
//! * [`sample::Index`].
//!
//! Streams are a pure function of (test path, case number), so failures
//! reproduce exactly on re-run.

#![forbid(unsafe_code)]

pub mod strategy;

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// How many cases each property runs, etc.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // The real crate defaults to 256; 64 keeps offline CI quick
            // while still exercising the size boundaries that matter.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case random stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The stream for case `case` of the test named `path`.
        pub fn for_case(path: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x9E37_79B9),
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform sample below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait
/// behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashMap};
    use std::ops::Range;

    /// A half-open range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashMap<K::Value, V::Value>`.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `HashMap`s of `size` entries with keys from `key`, values from `value`.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V> {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: std::hash::Hash + Eq,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = HashMap::with_capacity(n);
            // Key collisions shrink the map; retry so the requested size
            // is honored, and fail loudly (like the real crate's
            // generation give-up) rather than silently under-filling if
            // the key domain is too narrow.
            let mut attempts = 0;
            while out.len() < n {
                assert!(
                    attempts < 100 * n + 256,
                    "hash_map strategy could not reach size {n}: key domain too narrow"
                );
                out.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `BTreeSet`s of `size` elements drawn from `elem`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n {
                assert!(
                    attempts < 100 * n + 256,
                    "btree_set strategy could not reach size {n}: element domain too narrow"
                );
                out.insert(self.elem.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Selection helpers.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is unknown at
    /// generation time; resolve with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// String strategies from a regex subset (char classes + repeats).
pub mod string {
    use crate::test_runner::TestRng;

    /// One parsed regex atom: a choice of chars and a repeat range.
    #[derive(Clone, Debug)]
    pub struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parses the supported regex subset: literals, `[...]` classes
    /// with ranges, and `{n}` / `{m,n}` / `?` / `+` / `*` quantifiers.
    pub fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated char class")
                    + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "bad class range");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                set
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                    None => {
                        let n: usize = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '?' || chars[i] == '*' || chars[i] == '+') {
                let q = chars[i];
                i += 1;
                match q {
                    '?' => (0, 1),
                    '*' => (0, 8),
                    _ => (1, 8),
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty char class");
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    /// Generates one string matching the parsed pattern.
    pub fn generate(atoms: &[Atom], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// The usual imports for writing properties.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a boolean property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__path, __case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __result = ::std::panic::catch_unwind(
                        ::core::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest shim: case {}/{} of {} failed \
                             (streams are deterministic: re-running reproduces it)",
                            __case + 1, __cfg.cases, __path,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn custom() -> impl Strategy<Value = (u64, String)> {
        (1u64..10, "[a-z]{1,3}").prop_map(|(n, s)| (n * 2, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            n in 3u64..9,
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set("[a-z]{1,8}", 2..6),
            pick in any::<crate::sample::Index>(),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(s.len() >= 2 && s.len() < 6);
            prop_assert!(s.iter().all(|w| !w.is_empty() && w.len() <= 8));
            prop_assert!(pick.index(v.len()) < v.len());
        }

        #[test]
        fn mapped_tuples((n, s) in custom()) {
            prop_assert!(n % 2 == 0 && n >= 2);
            prop_assert!((1..=3).contains(&s.len()));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let atoms = crate::string::parse("[a-z][a-z0-9_.]{0,8}");
        let mut rng = crate::test_runner::TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = crate::string::generate(&atoms, &mut rng);
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.len() <= 9);
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
            );
        }
    }

    #[test]
    fn deterministic_streams() {
        let atoms = crate::string::parse("[A-Z]{4}");
        let mut a = crate::test_runner::TestRng::for_case("det", 3);
        let mut b = crate::test_runner::TestRng::for_case("det", 3);
        assert_eq!(
            crate::string::generate(&atoms, &mut a),
            crate::string::generate(&atoms, &mut b)
        );
    }
}
