//! Crash-recoverable serving end to end: durable multi-tenant serving
//! with a deterministic kill point, restart, and self-asserted recovery.
//!
//! Three modes:
//!
//! * no arguments — in-process demo: serve durably into a temp dir,
//!   crash persistence mid-batch at a deterministic kill point, reopen,
//!   re-serve, and assert the crash-recovery contract (bit-identical
//!   tables, accounting closure, replayed work not recomputed);
//! * `--kill-at N --dir PATH` — serve durably into `PATH` and *really*
//!   crash: the kill point terminates the process with exit code 113
//!   mid-batch, leaving a torn final frame in the log (the CI recovery
//!   smoke asserts the nonzero exit);
//! * `--recover --dir PATH` — reopen `PATH` after such a crash and
//!   self-assert recovery: the torn frame was truncated, the recovered
//!   table is bit-identical to a fresh in-memory reference, replayed
//!   (memoized) work re-serves with fewer procedures than a cold run,
//!   and a replayed result is served from disk (a real fault), not from
//!   recomputation.
//!
//! Run with: `cargo run --release --example durable_serving`

use fix::durable::{DurableOptions, DurableStore, FsyncPolicy, KillMode, KillPoint};
use fix::prelude::*;
use fix::serve::recovery::{kill_and_recover, serve_durable};
use fix::serve::{serve, ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
use std::path::PathBuf;

fn config() -> ServeConfig {
    ServeConfig {
        seed: 42,
        duration_us: 40_000,
        drivers: 2,
        batch: 8,
        queue_capacity: 64,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec::uniform_mix(
                "interactive",
                3,
                ArrivalProcess::Poisson { rate_rps: 900.0 },
                RequestKind::Add,
            ),
            // Renders produce large (non-literal) result blobs, so the
            // recovery probe can demonstrate a real disk fault.
            TenantSpec::uniform_mix(
                "webapp",
                1,
                ArrivalProcess::Poisson { rate_rps: 300.0 },
                RequestKind::SebsHtml { users: 4 },
            ),
        ],
    }
}

fn clean() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        ..DurableOptions::default()
    }
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let cfg = config();
    let dir: Option<PathBuf> = arg_value("--dir").map(PathBuf::from);

    if let Some(kill_at) = arg_value("--kill-at") {
        let after_frames: u64 = kill_at.parse().expect("--kill-at takes a frame count");
        let dir = dir.expect("--kill-at requires --dir");
        println!(
            "serving durably into {}, crashing after frame {after_frames}…",
            dir.display()
        );
        let options = DurableOptions {
            fsync: FsyncPolicy::Always,
            kill: Some(KillPoint {
                after_frames,
                mode: KillMode::Exit(113),
            }),
            ..DurableOptions::default()
        };
        // The kill point terminates the process from inside the writer
        // thread — at the latest during the final flush. Reaching the
        // line after it means the run appended fewer frames than the
        // kill point, which is a configuration error.
        let _ = serve_durable(&dir, &cfg, options).expect("serve");
        eprintln!("error: the kill point never tripped (fewer than {after_frames} frames)");
        std::process::exit(1);
    }

    if std::env::args().any(|a| a == "--recover") {
        let dir = dir.expect("--recover requires --dir");
        println!("recovering {} after the crash…", dir.display());
        let recovered = serve_durable(&dir, &cfg, clean()).expect("recover");
        recovered.assert_accounting_closure();
        assert!(
            recovered.truncated_bytes > 0,
            "the crash left a torn final frame; recovery must truncate it"
        );
        assert!(recovered.replayed_relations > 0, "the log prefix replays");

        // The deterministic tables are a function of the config alone:
        // the recovered run must match a fresh in-memory reference bit
        // for bit — and redo strictly less work than it.
        let reference_rt = Runtime::builder().build();
        let reference = serve(&reference_rt, &cfg).expect("reference serve");
        assert_eq!(
            recovered.table,
            reference.to_string(),
            "recovered table must be bit-identical to the reference"
        );
        assert!(
            recovered.procedures_run < reference_rt.procedures_run(),
            "replayed memoized work must not be recomputed ({} vs {})",
            recovered.procedures_run,
            reference_rt.procedures_run()
        );

        // Warm restarts serve from disk: reopen once more and read a
        // replayed (non-literal) result — it must arrive via a real
        // disk fault, not recomputation.
        let d = DurableStore::open(&dir, clean()).expect("reopen");
        let &(_, _, output) = d
            .replayed_relations()
            .iter()
            .find(|(_, _, o)| o.is_value() && !o.is_literal())
            .expect("some replayed relation has a stored result");
        d.store().get(output).expect("replayed result readable");
        assert_eq!(d.stats().faults, 1, "the result came from disk");

        println!("{}", recovered.table);
        println!(
            "recovered: {} relations replayed, {} torn bytes truncated, \
             {} procedures re-run (reference: {})",
            recovered.replayed_relations,
            recovered.truncated_bytes,
            recovered.procedures_run,
            reference_rt.procedures_run(),
        );
        println!("OK: crash-recovery contract holds");
        return;
    }

    // ------------------------------------------------------------------
    // Default: the whole scenario in-process (KillMode::Stop).
    // ------------------------------------------------------------------
    let tmp = tempfile::tempdir().expect("tempdir");
    println!("== durable serving with an in-process crash ==\n");

    let (killed, recovered) = kill_and_recover(tmp.path(), &cfg, 120).expect("kill and recover");
    killed.assert_accounting_closure();
    recovered.assert_accounting_closure();
    assert!(killed.crashed, "the kill point must trip");
    assert_eq!(
        recovered.table, killed.table,
        "tables must be bit-identical across the crash boundary"
    );
    assert!(recovered.truncated_bytes > 0, "torn final frame tolerated");
    assert!(
        recovered.procedures_run < killed.procedures_run,
        "recovered work is replayed, not recomputed"
    );

    println!("-- crashed run (persistence stopped mid-batch) --");
    println!("{}", killed.table);
    println!("-- recovered run (same directory) --");
    println!("{}", recovered.table);
    println!(
        "crash boundary: {} relations replayed, {} torn bytes truncated, \
         procedures {} -> {}",
        recovered.replayed_relations,
        recovered.truncated_bytes,
        killed.procedures_run,
        recovered.procedures_run,
    );

    // And with no crash at all, a warm restart recomputes *nothing*.
    let warm = serve_durable(tmp.path(), &cfg, clean()).expect("warm restart");
    warm.assert_accounting_closure();
    assert_eq!(warm.table, killed.table);
    assert_eq!(
        warm.procedures_run, 0,
        "a clean warm restart serves entirely from the log"
    );
    println!(
        "warm restart: {} relations replayed, 0 procedures run",
        warm.replayed_relations
    );
    println!("\nOK: crash-recovery contract holds");
}
