//! The paper's count-string map-reduce (§5.3.2), for real: generates a
//! sharded corpus, counts a trigram with parallel `count-string`
//! invocations, and merges with a binary reduction of `merge-counts` —
//! all expressed as Fix thunks and strict encodes, and all driven
//! through the backend-agnostic One Fix API traits: the same workload
//! function runs on the multi-worker runtime *and* on the simulated
//! distributed engine.
//!
//! Run with: `cargo run --release --example wordcount [n_shards] [shard_kib]`

use fix::prelude::*;
use fix::workloads::corpus::{count_nonoverlapping, generate_shard};
use fix::workloads::wordcount::{run_wordcount_fix, store_shards};
use std::time::Instant;

/// The whole workload against any backend: store the corpus, run the
/// map-reduce, return (count, procedures actually executed).
fn count_on<R: InvocationApi + Evaluator>(
    rt: &R,
    seed: u64,
    n_shards: usize,
    shard_size: usize,
    needle: &[u8],
) -> Result<(u64, u64)> {
    let shards = store_shards(rt, seed, n_shards, shard_size);
    let before = rt.procedures_run();
    let total = run_wordcount_fix(rt, &shards, needle)?;
    Ok((total, rt.procedures_run() - before))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let shard_kib: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let shard_size = shard_kib * 1024;
    let needle = b"the";

    println!("counting in {n_shards} shards x {shard_kib} KiB ...");
    let rt = Runtime::builder().workers(num_threads()).build();
    let start = Instant::now();
    let (total, runs) = count_on(&rt, 42, n_shards, shard_size, needle).expect("wordcount");
    let elapsed = start.elapsed();
    println!(
        "count-string(\"{}\") = {total}   in {elapsed:?} on {} workers",
        String::from_utf8_lossy(needle),
        num_threads(),
    );
    println!(
        "procedures run: {runs} ({n_shards} map + {} merges)",
        n_shards - 1
    );

    // Verify against a direct scan.
    let expect: u64 = (0..n_shards)
        .map(|i| count_nonoverlapping(&generate_shard(42, i as u64, shard_size), needle))
        .sum();
    assert_eq!(total, expect, "Fix result must match the direct scan");
    println!("verified against a direct scan ✓");

    // The identical workload function on the simulated 10-node cluster.
    let cc = ClusterClient::builder().build().expect("cluster client");
    let (cluster_total, _) = count_on(&cc, 42, n_shards, shard_size, needle).expect("cluster");
    assert_eq!(cluster_total, total, "backends agree bit-for-bit");
    println!(
        "same workload on the distributed engine: {cluster_total}  ({})",
        cc.last_report().expect("one simulated run")
    );
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
