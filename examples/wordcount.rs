//! The paper's count-string map-reduce (§5.3.2), for real: generates a
//! sharded corpus, counts a trigram with parallel `count-string`
//! invocations, and merges with a binary reduction of `merge-counts` —
//! all expressed as Fix thunks and strict encodes.
//!
//! Run with: `cargo run --release --example wordcount [n_shards] [shard_kib]`

use fix::workloads::corpus::{count_nonoverlapping, generate_shard};
use fix::workloads::wordcount::{run_wordcount_fix, store_shards};
use fixpoint::Runtime;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let shard_kib: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let shard_size = shard_kib * 1024;
    let needle = b"the";

    println!("generating {n_shards} shards x {shard_kib} KiB ...");
    let rt = Runtime::builder().workers(num_threads()).build();
    let shards = store_shards(&rt, 42, n_shards, shard_size);
    println!(
        "stored {} objects, {:.1} MiB total",
        rt.store().object_count(),
        rt.store().total_bytes() as f64 / (1 << 20) as f64
    );

    let start = Instant::now();
    let total = run_wordcount_fix(&rt, &shards, needle).expect("wordcount");
    let elapsed = start.elapsed();
    println!(
        "count-string(\"{}\") = {total}   in {elapsed:?} on {} workers",
        String::from_utf8_lossy(needle),
        num_threads(),
    );

    // Verify against a direct scan.
    let expect: u64 = (0..n_shards)
        .map(|i| count_nonoverlapping(&generate_shard(42, i as u64, shard_size), needle))
        .sum();
    assert_eq!(total, expect, "Fix result must match the direct scan");
    println!("verified against a direct scan ✓");

    let stats = &rt.engine().stats;
    println!(
        "procedures run: {} ({} map + {} merges)",
        stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed),
        n_shards,
        n_shards - 1
    );
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
