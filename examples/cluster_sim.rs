//! The simulated 10-node cluster (Figs. 8a/8b in miniature): run the
//! count-string workload under the Fix engine and its ablations, plus
//! the Ray and OpenWhisk baselines, and print the comparison.
//!
//! Run with: `cargo run --release --example cluster_sim [n_shards]`

use fix::baselines::{profiles, run_baseline, CostModel};
use fix::cluster::{run_fix, Binding, ClusterSetup, FixConfig, Placement};
use fix::netsim::{NetConfig, NodeId, NodeSpec};
use fix::workloads::wordcount::{fig8b_graph, Fig8bParams};

fn main() {
    let n_shards: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(246);

    let params = Fig8bParams {
        n_shards,
        ..Fig8bParams::default()
    };
    let graph = fig8b_graph(&params);
    println!(
        "workload: {} map tasks + {} merges over {:.1} GiB of shards\n",
        n_shards,
        n_shards - 1,
        graph.total_input_bytes() as f64 / (1 << 30) as f64
    );

    let workers: Vec<NodeId> = (0..10).map(NodeId).collect();
    let setup = ClusterSetup {
        specs: vec![NodeSpec::default(); 12],
        net: NetConfig::default().with_bandwidth_bps(300_000_000),
        workers: workers.clone(),
        client: None,
    };
    let cost = CostModel::default();

    println!("{:<42} {:>10} {:>12}", "system", "time", "CPU waiting");
    let show = |name: &str, r: &fix::cluster::RunReport| {
        println!(
            "{:<42} {:>8.2} s {:>11.0}%",
            name,
            r.makespan_secs(),
            r.cpu.waiting_percent()
        );
    };

    show("Fixpoint", &run_fix(&setup, &graph, &FixConfig::default()));
    show(
        "Fixpoint (no locality)",
        &run_fix(
            &setup,
            &graph,
            &FixConfig {
                placement: Placement::Random,
                ..FixConfig::default()
            },
        ),
    );
    show(
        "Fixpoint (no locality + internal I/O)",
        &run_fix(
            &setup,
            &graph,
            &FixConfig {
                placement: Placement::Random,
                binding: Binding::Early,
                ..FixConfig::default()
            },
        ),
    );
    show(
        "Ray (continuation-passing)",
        &run_baseline(&setup, &graph, &profiles::ray_cps(NodeId(11), &cost)),
    );
    show(
        "Ray (blocking)",
        &run_baseline(&setup, &graph, &profiles::ray_blocking(NodeId(11), &cost)),
    );
    show(
        "OpenWhisk + MinIO + K8s",
        &run_baseline(&setup, &graph, &profiles::openwhisk(&workers, &cost)),
    );
    println!("\n(see `cargo run -p fix-bench --bin figures` for the full paper tables)");
}
