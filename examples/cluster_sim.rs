//! The simulated 10-node cluster (Figs. 8a/8b in miniature), two ways:
//!
//! 1. **through the One Fix API** — the real count-string workload,
//!    written once against the backend-agnostic traits, executed by the
//!    netsim-backed `ClusterClient` and by a baseline evaluator, with
//!    bit-identical results and per-backend run reports;
//! 2. **as a Fig. 8b job graph** — the paper-scale workload under the
//!    Fix engine, its ablations, and the Ray/OpenWhisk baselines.
//!
//! Run with: `cargo run --release --example cluster_sim [n_shards]`

use fix::baselines::{profiles, run_baseline, BaselineEvaluator, CostModel};
use fix::cluster::{run_fix, Binding, ClusterSetup, FixConfig, Placement};
use fix::netsim::{NetConfig, NodeId, NodeSpec};
use fix::prelude::*;
use fix::workloads::wordcount::{fig8b_graph, run_wordcount_fix, store_shards, Fig8bParams};

/// The real workload, against any backend: count "the" in a small
/// generated corpus.
fn wordcount_on<R: InvocationApi + Evaluator>(rt: &R) -> Result<u64> {
    let shards = store_shards(rt, 42, 32, 64 << 10);
    run_wordcount_fix(rt, &shards, b"the")
}

fn main() {
    // ------------------------------------------------------------------
    // Part 1: one workload, three backends, via the One Fix API.
    // ------------------------------------------------------------------
    println!("== the same workload through the One Fix API ==\n");
    let cost = CostModel::default();

    let rt = Runtime::builder().build();
    let on_runtime = wordcount_on(&rt).expect("runtime");
    println!("{:<28} count = {on_runtime}   (ran for real)", "Runtime");

    let cc = ClusterClient::builder().build().expect("client");
    let on_cluster = wordcount_on(&cc).expect("cluster");
    println!(
        "{:<28} count = {on_cluster}   ({})",
        "ClusterClient (Fix engine)",
        cc.last_report().expect("report")
    );

    let rb = BaselineEvaluator::builder()
        .profile(profiles::openwhisk(&[NodeId(0)], &cost))
        .build()
        .expect("baseline");
    let on_baseline = wordcount_on(&rb).expect("baseline");
    println!(
        "{:<28} count = {on_baseline}   ({})",
        "BaselineEvaluator (OpenWhisk)",
        rb.last_report().expect("report")
    );

    assert!(on_runtime == on_cluster && on_cluster == on_baseline);
    println!("\nall backends agree: {on_runtime} ✓\n");

    // ------------------------------------------------------------------
    // Part 2: the paper-scale Fig. 8b graph under engines and ablations.
    // ------------------------------------------------------------------
    let n_shards: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(246);

    let params = Fig8bParams {
        n_shards,
        ..Fig8bParams::default()
    };
    let graph = fig8b_graph(&params);
    println!(
        "== Fig. 8b: {} map tasks + {} merges over {:.1} GiB of shards ==\n",
        n_shards,
        n_shards - 1,
        graph.total_input_bytes() as f64 / (1 << 30) as f64
    );

    let workers: Vec<NodeId> = (0..10).map(NodeId).collect();
    let setup = ClusterSetup {
        specs: vec![NodeSpec::default(); 12],
        net: NetConfig::default().with_bandwidth_bps(300_000_000),
        workers: workers.clone(),
        client: None,
    };

    println!("{:<42} {:>10} {:>12}", "system", "time", "CPU waiting");
    let show = |name: &str, r: &fix::cluster::RunReport| {
        println!(
            "{:<42} {:>8.2} s {:>11.0}%",
            name,
            r.makespan_secs(),
            r.cpu.waiting_percent()
        );
    };

    show("Fixpoint", &run_fix(&setup, &graph, &FixConfig::default()));
    show(
        "Fixpoint (no locality)",
        &run_fix(
            &setup,
            &graph,
            &FixConfig {
                placement: Placement::Random,
                ..FixConfig::default()
            },
        ),
    );
    show(
        "Fixpoint (no locality + internal I/O)",
        &run_fix(
            &setup,
            &graph,
            &FixConfig {
                placement: Placement::Random,
                binding: Binding::Early,
                ..FixConfig::default()
            },
        ),
    );
    show(
        "Ray (continuation-passing)",
        &run_baseline(&setup, &graph, &profiles::ray_cps(NodeId(11), &cost)),
    );
    show(
        "Ray (blocking)",
        &run_baseline(&setup, &graph, &profiles::ray_blocking(NodeId(11), &cost)),
    );
    show(
        "OpenWhisk + MinIO + K8s",
        &run_baseline(&setup, &graph, &profiles::openwhisk(&workers, &cost)),
    );
    println!("\n(see `cargo run -p fix-bench --bin figures` for the full paper tables)");
}
