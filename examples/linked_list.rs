//! The paper's linked-list example (Listings 2 & 3), on Fix.
//!
//! A list node is a pair `[value, next]` of Refs. Getting entry `i`
//! means descending `i` nodes. The paper contrasts two styles:
//!
//! * **blocking** (Listing 2, Ray `ray.get`): the running function
//!   pulls each node's data to itself — it occupies its slice while
//!   I/O happens, and its footprint grows with every hop;
//! * **continuation-passing** (Listing 3, and Fix's native style): each
//!   hop is a fresh invocation that *names* the next node; nothing is
//!   fetched except the one value the query is actually for.
//!
//! Fix's cps module generates the continuation plumbing; this example
//! measures what each style touches.
//!
//! Run with: `cargo run --example linked_list`

use fix::prelude::*;
use fix::runtime::cps::{register_stepper, start};
use fix::runtime::StepOutcome;
use std::sync::Arc;

/// Builds the list; every value is a 4 KiB blob (so fetching one is
/// visible in the byte counts). Returns the head node.
fn build_list(rt: &Runtime, n: usize) -> Handle {
    let mut next: Option<Handle> = None;
    for i in (0..n).rev() {
        let mut value = vec![0u8; 4096];
        value[..8].copy_from_slice(&(i as u64).to_le_bytes());
        let v = rt.put_blob(Blob::from_vec(value));
        let mut slots = vec![v.as_ref_handle()];
        if let Some(nx) = next {
            slots.push(nx.as_ref_handle());
        }
        next = Some(rt.put_tree(Tree::from_handles(slots)));
    }
    next.expect("nonempty")
}

/// Listing 2, "blocking style": the caller walks the list itself,
/// loading every node and value on the way (what `ray.get` does).
fn get_blocking(rt: &Runtime, head: Handle, i: u64) -> Result<(u64, u64)> {
    let mut bytes_accessed = 0u64;
    let mut node = rt.get_tree(head)?;
    bytes_accessed += 32 * node.len() as u64;
    for _ in 0..i {
        let next = node.get(1).expect("has next").as_object_handle();
        node = rt.get_tree(next)?;
        bytes_accessed += 32 * node.len() as u64;
        // Blocking style materializes the value of every visited node
        // (a Ray Node holds its ObjectRefs' data once fetched).
        bytes_accessed += rt
            .get_blob(node.get(0).expect("value").as_object_handle())?
            .len() as u64;
    }
    let value = rt.get_blob(node.get(0).expect("value").as_object_handle())?;
    bytes_accessed += value.len() as u64;
    let v = u64::from_le_bytes(value.as_slice()[..8].try_into().expect("u64"));
    Ok((v, bytes_accessed))
}

fn main() -> Result<()> {
    let rt = Runtime::builder().build();
    let n = 256;
    let head = build_list(&rt, n);
    println!("list of {n} nodes, 4 KiB per value\n");

    // Listing 3 on Fix: one invocation per hop, nothing fetched but the
    // final value.
    let get = register_stepper(
        &rt,
        "list/get",
        Arc::new(|ctx| {
            let i = u64::from_le_bytes(ctx.state[..8].try_into().expect("state"));
            let node = ctx.args[0];
            if i == 0 {
                return Ok(StepOutcome::Done(ctx.select(node, 0)?));
            }
            let next = ctx.select(node, 1)?;
            Ok(StepOutcome::suspend((i - 1).to_le_bytes().to_vec())
                .request(next, EncodeStyle::Shallow))
        }),
    );

    let runs = |rt: &Runtime| {
        rt.engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed)
    };

    println!(
        "{:>6} {:>22} {:>24} {:>20}",
        "i", "cps (invocations)", "cps bytes fetched", "blocking bytes"
    );
    for i in [0u64, 15, 63, 255] {
        let before = runs(&rt);
        let thunk = start(&rt, get, &i.to_le_bytes(), &[head])?;
        let out = rt.eval(thunk)?;
        let value = rt.get_blob(out)?;
        let got = u64::from_le_bytes(value.as_slice()[..8].try_into().expect("u64"));
        assert_eq!(got, i);
        let invocations = runs(&rt) - before;

        let (got_b, blocking_bytes) = get_blocking(&rt, head, i)?;
        assert_eq!(got_b, i);
        // CPS touches: the final value, plus each hop's node entry list
        // (32 B/handle, read by the runtime to perform the selection).
        let cps_bytes = value.len() as u64 + invocations * 64;
        println!("{i:>6} {invocations:>22} {cps_bytes:>22} B {blocking_bytes:>18} B");
    }

    println!(
        "\nthe continuation-passing walk names nodes without fetching them\n\
         (Shallow encodes); the blocking walk pulls every node's value to\n\
         the caller — {}x the data at the tail of the list.",
        (256 * 4096 + 256 * 64) / (4096 + 256 * 64)
    );
    Ok(())
}
