//! Computational garbage collection (paper §6): because every Fix
//! object is the deterministic product of known dependencies, a
//! provider offering "delayed-availability" storage may *delete* stored
//! bytes it knows how to recompute, and answer later reads by
//! re-running the recipe within an SLA window.
//!
//! This example computes per-shard byte histograms over a corpus and
//! merges them in a binary-reduction tree (each intermediate is a 2 KiB
//! blob — real bytes, unlike tiny literal counts). It then evicts every
//! recomputable object and reads the final histogram back cold,
//! watching the runtime restore the whole cascade by re-running
//! procedures.
//!
//! Run with: `cargo run --example computational_gc`

use fix::prelude::*;
use fix_workloads::wordcount::store_shards;
use std::sync::Arc;

/// Parses a 2048-byte histogram blob (256 × u64, little-endian).
fn parse_hist(blob: &Blob) -> [u64; 256] {
    let mut out = [0u64; 256];
    for (i, chunk) in blob.as_slice().chunks_exact(8).enumerate().take(256) {
        out[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    out
}

fn main() -> Result<()> {
    // Provenance recording is the opt-in for delayed-availability.
    let rt = Runtime::builder().with_provenance().build();

    // histogram(shard): 256 × u64 counts of each byte value.
    let histogram = rt.register_native(
        "histogram",
        Arc::new(|ctx| {
            let shard = ctx.arg_blob(0)?;
            let mut counts = [0u64; 256];
            for &b in shard.as_slice() {
                counts[b as usize] += 1;
            }
            let bytes: Vec<u8> = counts.iter().flat_map(|c| c.to_le_bytes()).collect();
            ctx.host.create_blob(bytes)
        }),
    );
    // merge(a, b): element-wise sum of two histograms.
    let merge = rt.register_native(
        "merge-histograms",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?;
            let b = ctx.arg_blob(1)?;
            let (ha, hb) = (parse_hist(&a), parse_hist(&b));
            let bytes: Vec<u8> = ha
                .iter()
                .zip(&hb)
                .flat_map(|(x, y)| (x + y).to_le_bytes())
                .collect();
            ctx.host.create_blob(bytes)
        }),
    );

    // A small corpus: 8 shards of deterministic pseudo-text.
    let shards = store_shards(&rt, 42, 8, 64 * 1024);
    println!(
        "corpus stored: {} objects, {} KiB",
        rt.store().object_count(),
        rt.store().total_bytes() / 1024
    );

    // Map, then binary reduce. Each stage's output is recorded with its
    // recipe as it runs.
    let limits = ResourceLimits::default_limits();
    let mut layer: Vec<Handle> = Vec::new();
    for &shard in &shards {
        let t = rt.apply(limits, histogram, &[shard])?;
        layer.push(rt.eval(t)?);
    }
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                let t = rt.apply(limits, merge, &[pair[0], pair[1]])?;
                next.push(rt.eval(t)?);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let total = layer[0];
    let count_e = parse_hist(&rt.get_blob(total)?)[b'e' as usize];
    println!("total 'e' bytes in corpus: {count_e}");

    let procedures = |rt: &Runtime| {
        rt.engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    let before_bytes = rt.store().total_bytes();
    let before_runs = procedures(&rt);

    // --- Evict: every computed object goes (a provider would pin -----
    // whatever its customers hold leases on; here, nothing).
    let outcome = rt.evict_recomputable(&[])?;
    println!(
        "\nevicted {} objects ({} bytes), max recompute depth {}",
        outcome.plan.victims.len(),
        outcome.bytes_reclaimed,
        outcome.plan.max_depth()
    );
    println!(
        "store: {} -> {} bytes",
        before_bytes,
        rt.store().total_bytes()
    );
    assert!(!rt.store().contains(total), "final histogram was evicted");

    // --- Cold read: the platform restores the cascade on demand. ------
    let report = rt.materialize(total)?;
    println!(
        "\ncold read materialized {} objects (depth {}), re-ran {} procedures",
        report.objects_materialized,
        report.max_depth,
        procedures(&rt) - before_runs
    );
    let recomputed = parse_hist(&rt.get_blob(total)?)[b'e' as usize];
    println!("total 'e' bytes in corpus: {recomputed}  (recomputed)");
    assert_eq!(recomputed, count_e, "determinism: same bytes back");

    // Warm read: free.
    let warm = rt.materialize(total)?;
    assert_eq!(warm.objects_materialized, 0);
    println!("\nwarm read touched nothing — bytes are resident again");
    Ok(())
}
