//! The burst-parallel compilation job of §5.5, for real: generate C-like
//! sources, compile each with the in-repo lexer/"clang", link the
//! objects, and verify the symbol table — all as Fix invocations, in
//! parallel, with the link consuming strictly-encoded compile results.
//!
//! Run with: `cargo run --release --example compile_farm [n_files]`

use fix::workloads::compile::{build_project_fix, compile_unit, generate_source};
use fixpoint::Runtime;
use std::sync::atomic::Ordering;
use std::time::Instant;

fn main() {
    let n_files: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let rt = Runtime::builder().workers(workers).build();

    println!("compiling {n_files} generated translation units on {workers} workers ...");
    let start = Instant::now();
    let exe = build_project_fix(&rt, 99, n_files).expect("build");
    let elapsed = start.elapsed();

    let summary = rt.get_blob(exe).expect("executable");
    println!(
        "link output:\n{}",
        String::from_utf8_lossy(summary.as_slice())
    );
    println!("built in {elapsed:?}");
    println!(
        "procedures run: {}",
        rt.engine().stats.procedures_run.load(Ordering::Relaxed)
    );

    // Rebuild: everything is memoized, nothing recompiles.
    let start = Instant::now();
    let exe2 = build_project_fix(&rt, 99, n_files).expect("rebuild");
    println!(
        "no-op rebuild in {:?} (same executable: {})",
        start.elapsed(),
        exe == exe2
    );

    // Touch one file (different seed for unit 0) and rebuild: only that
    // unit recompiles — content addressing gives free incremental builds.
    let before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
    let src0 = generate_source(100, 0, 4);
    let _ = compile_unit(&src0).expect("unit compiles");
    println!(
        "(single-unit compile sanity-checked; {} procedure runs total)",
        before
    );
}
