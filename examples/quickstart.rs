//! Quickstart: the Fix programming model in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use fix::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    // A Fixpoint node: content-addressed storage + evaluator.
    let rt = Runtime::builder().build();

    // --- Data: Blobs and Trees, named by 256-bit Handles. -------------
    let hello = rt.put_blob(Blob::from_slice(b"hello"));
    println!("blob handle:  {hello}   (≤30 bytes ⇒ stored inline as a literal)");

    let big = rt.put_blob(Blob::from_vec(vec![7u8; 4096]));
    println!("blob handle:  {big}   (digest-addressed)");

    let tree = rt.put_tree(Tree::from_handles(vec![hello, big]));
    println!("tree handle:  {tree}");

    // --- Procedures: deterministic functions of their inputs. ---------
    // Native codelets are Rust; FixVM codelets are sandboxed bytecode.
    let shout = rt.register_native(
        "shout",
        Arc::new(|ctx| {
            let text = ctx.arg_blob(0)?;
            let upper: Vec<u8> = text.as_slice().iter().map(u8::to_ascii_uppercase).collect();
            ctx.host.create_blob(upper)
        }),
    );

    // --- Thunks: deferred invocations; nothing runs yet. ---------------
    let thunk = rt.apply(ResourceLimits::default_limits(), shout, &[hello])?;
    println!("thunk:        {thunk}   (describes shout(\"hello\"), unevaluated)");

    // The platform knows the exact data footprint *before* running:
    let fp = rt.footprint(thunk)?;
    println!(
        "footprint:    {} objects, {} bytes, complete={}",
        fp.objects.len(),
        fp.total_bytes,
        fp.is_complete()
    );

    // --- Evaluation: the runtime performs all I/O and runs the code. --
    let result = rt.eval(thunk)?;
    println!(
        "result:       {:?}",
        String::from_utf8_lossy(rt.get_blob(result)?.as_slice())
    );

    // --- Determinism ⇒ memoization: the second eval is a cache hit. ---
    let runs = |rt: &Runtime| {
        rt.engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    let before = runs(&rt);
    rt.eval(thunk)?;
    println!(
        "memoized:     second eval ran {} procedures (result comes from the relation cache)",
        runs(&rt) - before
    );

    // --- Laziness: encode only what you need. --------------------------
    // A selection thunk names one entry of the tree without touching the
    // rest — the "pinpoint data dependency" of the paper.
    let pick = rt.select(tree, 0)?;
    let picked = rt.eval(pick)?;
    assert_eq!(picked, hello);
    println!("selection:    tree[0] == {picked}");
    Ok(())
}
