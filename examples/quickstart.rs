//! Quickstart: the Fix programming model in five minutes.
//!
//! The whole walkthrough is one generic function over the One Fix API
//! traits (`ObjectApi` + `InvocationApi` + `Evaluator`), so the *same
//! program* runs first on the single-node runtime and then on the
//! simulated distributed engine — and, because handles are content
//! addressed, produces bit-identical results on both.
//!
//! Run with: `cargo run --example quickstart`

use fix::prelude::*;
use std::sync::Arc;

/// The Fix programming model, against any backend. Returns the final
/// result handle so the two backends can be compared.
fn walkthrough<R: InvocationApi + Evaluator>(rt: &R) -> Result<Handle> {
    // --- Data: Blobs and Trees, named by 256-bit Handles. -------------
    let hello = rt.put_blob(Blob::from_slice(b"hello"));
    println!("blob handle:  {hello}   (≤30 bytes ⇒ stored inline as a literal)");

    let big = rt.put_blob(Blob::from_vec(vec![7u8; 4096]));
    println!("blob handle:  {big}   (digest-addressed)");

    let tree = rt.put_tree(Tree::from_handles(vec![hello, big]));
    println!("tree handle:  {tree}");

    // --- Procedures: deterministic functions of their inputs. ---------
    // Native codelets are Rust; FixVM codelets are sandboxed bytecode.
    let shout = rt.register_native(
        "shout",
        Arc::new(|ctx| {
            let text = ctx.arg_blob(0)?;
            let upper: Vec<u8> = text.as_slice().iter().map(u8::to_ascii_uppercase).collect();
            ctx.host.create_blob(upper)
        }),
    );

    // --- Thunks: deferred invocations; nothing runs yet. ---------------
    let thunk = rt.apply(ResourceLimits::default_limits(), shout, &[hello])?;
    println!("thunk:        {thunk}   (describes shout(\"hello\"), unevaluated)");

    // The platform knows the exact data footprint *before* running:
    let fp = rt.footprint(thunk)?;
    println!(
        "footprint:    {} objects, {} bytes, complete={}",
        fp.objects.len(),
        fp.total_bytes,
        fp.is_complete()
    );

    // --- Evaluation: the platform performs all I/O and runs the code. --
    let result = rt.eval(thunk)?;
    println!(
        "result:       {:?}",
        String::from_utf8_lossy(rt.get_blob(result)?.as_slice())
    );

    // --- Determinism ⇒ memoization: the second eval is a cache hit. ---
    let before = rt.procedures_run();
    rt.eval(thunk)?;
    println!(
        "memoized:     second eval ran {} procedures (result comes from the relation cache)",
        rt.procedures_run() - before
    );

    // --- Laziness: encode only what you need. --------------------------
    // A selection thunk names one entry of the tree without touching the
    // rest — the "pinpoint data dependency" of the paper.
    let pick = rt.select(tree, 0)?;
    let picked = rt.eval(pick)?;
    assert_eq!(picked, hello);
    println!("selection:    tree[0] == {picked}");
    Ok(result)
}

fn main() -> Result<()> {
    // A Fixpoint node: content-addressed storage + evaluator.
    println!("=== on the single-node runtime ===");
    let local = Runtime::builder().build();
    let local_result = walkthrough(&local)?;

    // The same program, unchanged, on the simulated 10-node cluster:
    // evaluations are placed with dataflow-aware locality and late
    // binding, and every request accumulates a run report.
    println!("\n=== on the distributed engine (10 simulated nodes) ===");
    let cluster = ClusterClient::builder().build()?;
    let cluster_result = walkthrough(&cluster)?;

    assert_eq!(
        local_result, cluster_result,
        "content addressing makes backends agree bit-for-bit"
    );
    println!("\nbackends agree: {local_result}");
    for (i, report) in cluster.reports().iter().enumerate() {
        println!("cluster run {i}: {report}");
    }
    Ok(())
}
