//! The §5.6 porting story: the SeBS `dynamic-html` and `compression`
//! functions running on Fix through Flatware — inputs as command-line
//! arguments, data dependencies as files in a Flatware filesystem.
//!
//! Run with: `cargo run --example sebs_port [username]`

use fix::workloads::archive::extract_archive;
use fix::workloads::sebs::{build_sebs_fs, register_compression, register_dynamic_html};
use fix_core::data::Blob;
use fixpoint::Runtime;
use flatware::run_program;

fn main() {
    let username = std::env::args().nth(1).unwrap_or_else(|| "yuhan".into());
    let rt = Runtime::builder().build();

    // The Flatware filesystem carries the template and the bucket files.
    let bucket = vec![
        ("report.txt".to_string(), b"quarterly numbers...".to_vec()),
        ("image.bin".to_string(), vec![0xA5; 2048]),
        ("notes.md".to_string(), b"# port to Fix\n".to_vec()),
    ];
    let root = build_sebs_fs(&rt, &bucket).expect("fs");

    // --- dynamic-html -------------------------------------------------
    let dh = register_dynamic_html(&rt);
    let (code, html) = run_program(&rt, dh, &["dynamic-html", &username, "6"], root).expect("run");
    println!("dynamic-html exited {code}; output:\n");
    println!("{}", String::from_utf8_lossy(html.as_slice()));

    // --- compression ---------------------------------------------------
    let comp = register_compression(&rt);
    let (code, archive) = run_program(&rt, comp, &["compression", "bucket"], root).expect("run");
    let files = extract_archive(&Blob::from_slice(archive.as_slice())).expect("archive");
    println!(
        "compression exited {code}; archive holds {} files:",
        files.len()
    );
    for (name, contents) in &files {
        println!("  {name} ({} bytes)", contents.len());
    }
    assert_eq!(files.len(), bucket.len());

    // Both invocations are ordinary Fix computations: rerunning either is
    // a pure cache hit.
    let before = rt
        .engine()
        .stats
        .procedures_run
        .load(std::sync::atomic::Ordering::Relaxed);
    run_program(&rt, dh, &["dynamic-html", &username, "6"], root).expect("rerun");
    let after = rt
        .engine()
        .stats
        .procedures_run
        .load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "\nre-render was memoized ({} new procedure runs)",
        after - before
    );
}
