//! The §5.6 porting story: the SeBS `dynamic-html` and `compression`
//! functions running on Fix through Flatware — inputs as command-line
//! arguments, data dependencies as files in a Flatware filesystem.
//!
//! The entire port is generic over the One Fix API traits, so the same
//! functions run here on the single-node runtime and on the simulated
//! cluster without touching the workload code.
//!
//! Run with: `cargo run --example sebs_port [username]`

use fix::prelude::*;
use fix::workloads::archive::extract_archive;
use fix::workloads::sebs::{build_sebs_fs, register_compression, register_dynamic_html};
use flatware::run_program;

/// Both SeBS functions against any backend. Returns the rendered HTML
/// and the archive bytes for cross-backend comparison.
fn port<R: InvocationApi + Evaluator>(rt: &R, username: &str) -> Result<(Blob, Blob)> {
    // The Flatware filesystem carries the template and the bucket files.
    let bucket = vec![
        ("report.txt".to_string(), b"quarterly numbers...".to_vec()),
        ("image.bin".to_string(), vec![0xA5; 2048]),
        ("notes.md".to_string(), b"# port to Fix\n".to_vec()),
    ];
    let root = build_sebs_fs(rt, &bucket)?;

    // --- dynamic-html -------------------------------------------------
    let dh = register_dynamic_html(rt);
    let (code, html) = run_program(rt, dh, &["dynamic-html", username, "6"], root)?;
    println!("dynamic-html exited {code}; output:\n");
    println!("{}", String::from_utf8_lossy(html.as_slice()));

    // --- compression ---------------------------------------------------
    let comp = register_compression(rt);
    let (code, archive) = run_program(rt, comp, &["compression", "bucket"], root)?;
    let files = extract_archive(&Blob::from_slice(archive.as_slice()))?;
    println!(
        "compression exited {code}; archive holds {} files:",
        files.len()
    );
    for (name, contents) in &files {
        println!("  {name} ({} bytes)", contents.len());
    }
    assert_eq!(files.len(), bucket.len());

    // Both invocations are ordinary Fix computations: rerunning either is
    // a pure cache hit.
    let before = rt.procedures_run();
    run_program(rt, dh, &["dynamic-html", username, "6"], root)?;
    println!(
        "\nre-render was memoized ({} new procedure runs)",
        rt.procedures_run() - before
    );
    Ok((html, archive))
}

fn main() {
    let username = std::env::args().nth(1).unwrap_or_else(|| "yuhan".into());

    let rt = Runtime::builder().build();
    let (html, archive) = port(&rt, &username).expect("run on the runtime");

    // The identical port on the distributed engine.
    let cc = ClusterClient::builder().build().expect("cluster client");
    let (html2, archive2) = port(&cc, &username).expect("run on the cluster");
    assert_eq!(html.as_slice(), html2.as_slice());
    assert_eq!(archive.as_slice(), archive2.as_slice());
    println!(
        "\nsame port on the distributed engine: {} simulated runs, {} µs total",
        cc.reports().len(),
        cc.total_simulated_us()
    );
}
