//! Multi-node serving end to end: rendezvous routing across node
//! backends, a node killed mid-burst, failover, and a warm restart —
//! all self-asserted.
//!
//! Two modes:
//!
//! * no arguments — routing demo: the same seeded traffic dispatched
//!   across 3 nodes under affinity, round-robin, and random placement;
//!   asserts affinity wins the warm-hit rate and every run closes its
//!   accounting;
//! * `--kill-node N [--dir PATH]` — failure drill: durable per-node
//!   stores, node `N` killed at a deterministic virtual instant (its
//!   backlog re-routes to the survivors), then restarted warm over its
//!   own log. Runs the scenario twice — pass A on fresh directories,
//!   pass B over the directories pass A populated — and asserts the
//!   whole contract: accounting closure, bit-identical tables across
//!   the two passes, failover confined to survivors, the restarted
//!   node's second segment replaying its log, and pass B running zero
//!   procedures (every result served from the logs).
//!
//! Run with: `cargo run --release --example multi_node -- --kill-node 1`

use fix::dispatch::{
    dispatch, DispatchConfig, DispatchOutcome, FaultPlan, NodeStorage, RestartKind, RoutingPolicy,
};
use fix::serve::{ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
use std::path::{Path, PathBuf};

/// Repeat-heavy traffic (small Fib and SeBS key spaces) so placement
/// has memoization to win, plus a burst 100 µs before the kill instant
/// so the killed node strands a backlog worth re-routing.
fn base_config() -> ServeConfig {
    ServeConfig {
        seed: 17,
        duration_us: 60_000,
        drivers: 1, // per node
        batch: 8,
        queue_capacity: 64,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec::uniform_mix(
                "fib",
                2,
                ArrivalProcess::Poisson { rate_rps: 2500.0 },
                RequestKind::Fib { max_n: 6 },
            ),
            TenantSpec::uniform_mix(
                "renders",
                1,
                ArrivalProcess::Uniform { period_us: 500 },
                RequestKind::SebsHtml { users: 3 },
            ),
            TenantSpec::uniform_mix(
                "bursty",
                1,
                ArrivalProcess::Bursts {
                    period_us: 19_900,
                    burst: 48,
                },
                RequestKind::Wordcount { shard_bytes: 4096 },
            ),
        ],
    }
}

fn fault_config(root: &Path, kill_node: usize) -> DispatchConfig {
    DispatchConfig {
        base: base_config(),
        nodes: 3,
        policy: RoutingPolicy::Affinity,
        spill_margin: 16,
        storage: NodeStorage::Durable(root.to_path_buf()),
        fault: Some(FaultPlan {
            node: kill_node,
            kill_at_us: 20_000,
            restart_at_us: 30_000,
            restart: RestartKind::Warm,
        }),
    }
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Asserts everything the failure drill promises about one pass.
fn check_fault_pass(outcome: &DispatchOutcome, kill_node: usize) {
    outcome.assert_accounting_closure();
    let nodes = &outcome.report.nodes;
    assert_eq!(nodes[kill_node].kills, 1, "the kill must be recorded");
    assert_eq!(nodes[kill_node].restarts, 1, "so must the restart");
    let rerouted: u64 = nodes.iter().map(|n| n.rerouted_in).sum();
    assert!(rerouted > 0, "the kill must strand work worth re-routing");
    assert_eq!(
        nodes[kill_node].rerouted_in, 0,
        "failover must land on survivors only"
    );
    assert_eq!(
        outcome.exec[kill_node].segments.len(),
        2,
        "the killed node runs two incarnations"
    );
    assert!(
        outcome.recovery_window_us.is_some(),
        "the restarted node must re-earn a warm placement"
    );
}

fn main() {
    if let Some(kill_node) = arg_value("--kill-node") {
        let kill_node: usize = kill_node.parse().expect("--kill-node takes a node index");
        let root: PathBuf = match arg_value("--dir") {
            Some(d) => PathBuf::from(d),
            None => {
                // Leak the tempdir guard so the directory survives into
                // pass B; the OS reclaims it like any other temp path.
                let tmp = tempfile::tempdir().expect("tempdir");
                let path = tmp.path().to_path_buf();
                std::mem::forget(tmp);
                path
            }
        };
        std::fs::create_dir_all(&root).expect("create root");
        let cfg = fault_config(&root, kill_node);
        println!(
            "== failure drill: 3 nodes over {}, kill node {kill_node} at 20 ms, \
             warm restart at 30 ms ==\n",
            root.display()
        );

        println!("-- pass A: fresh per-node logs --");
        let first = dispatch(&cfg).expect("pass A dispatch");
        check_fault_pass(&first, kill_node);
        println!("{}", first.report);
        println!(
            "pass A: {} procedures run, {} requests re-routed off node \
             {kill_node}, recovery window {} µs, warm restart replayed {} \
             relations",
            first.procedures_run(),
            first
                .report
                .nodes
                .iter()
                .map(|n| n.rerouted_in)
                .sum::<u64>(),
            first.recovery_window_us.expect("recovery window"),
            first.exec[kill_node].segments[1].replayed_relations,
        );
        assert!(
            first.procedures_run() > 0,
            "fresh logs mean pass A computes for real"
        );
        assert!(
            first.exec[kill_node].segments[1].replayed_relations > 0,
            "the warm restart must replay the node's own log"
        );

        println!("\n-- pass B: same directories, fully warm --");
        let second = dispatch(&cfg).expect("pass B dispatch");
        check_fault_pass(&second, kill_node);
        assert_eq!(
            second.report.to_string(),
            first.report.to_string(),
            "the virtual tables must be bit-identical across passes"
        );
        assert_eq!(
            second.procedures_run(),
            0,
            "pass B must serve every request from the per-node logs"
        );
        println!(
            "pass B: tables bit-identical to pass A, 0 procedures run \
             (every result replayed from disk)"
        );
        println!("\nOK: multi-node failure contract holds");
        return;
    }

    // ------------------------------------------------------------------
    // Default: the routing demo, in memory.
    // ------------------------------------------------------------------
    println!("== placement policy vs memoization hit rate (3 nodes) ==\n");
    let policies = [
        ("affinity", RoutingPolicy::Affinity),
        ("round-robin", RoutingPolicy::RoundRobin),
        ("random", RoutingPolicy::Random),
    ];
    let mut rates = Vec::new();
    for (label, policy) in policies {
        let cfg = DispatchConfig {
            base: base_config(),
            nodes: 3,
            policy,
            spill_margin: 16,
            storage: NodeStorage::Memory,
            fault: None,
        };
        let outcome = dispatch(&cfg).expect("dispatch run");
        outcome.assert_accounting_closure();
        println!("-- {label} --\n{}", outcome.report);
        rates.push((label, outcome.hit_rate()));
    }
    for &(label, rate) in &rates[1..] {
        assert!(
            rates[0].1 > rate,
            "affinity ({:.3}) must beat {label} ({rate:.3})",
            rates[0].1
        );
    }
    let deltas: Vec<String> = rates
        .iter()
        .map(|(l, r)| format!("{l} {:.1}%", r * 100.0))
        .collect();
    println!("warm-hit rates: {}", deltas.join(", "));
    println!("\nOK: affinity routing wins the warm-hit rate");
}
