//! The adaptive control plane end to end: one hostile flash-crowd
//! scenario (open-loop crowd spiking three decades above its base rate,
//! a closed-loop client population, an SNF streaming pipeline) served
//! twice — once by the static PR-5 configuration (fixed pool,
//! capacity-only admission), once under `fix-adapt` (provable-expiry
//! admission pricing plus the hysteresis autoscaler).
//!
//! The example is the control plane's demo *and* its smoke test. It
//! prints both serving tables, the adaptive run's scaling timeline, and
//! the verdict line, then asserts the claims the tables make:
//!
//! * determinism — a repeat run and a 4-worker-pool run render the
//!   figure bit-identically;
//! * a non-trivial scaling timeline — the pool scales up into the spike
//!   and back down after it;
//! * admission-shed beats static-shed — the adaptive run rejects
//!   provably-late work at the door instead of letting it expire in
//!   queue, expires strictly less, and still attains strictly more;
//! * no extra real work — the adaptive runtime executes no more
//!   procedures than the static one (equal distinct-thunk sets by
//!   construction);
//! * the SNF pipeline is never shed by either control plane.
//!
//! Run with: `cargo run --release --example adaptive_serving [--quick]`

use fix::adapt::adaptive_serve;
use fix::runtime::Runtime;
use fix_bench::adapt_table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 5 };

    let first = adapt_table::run(scale);
    println!("Adaptive serving — flash crowd vs. the control plane (seed 2026, scale {scale})\n");
    println!("{first}\n");

    // Determinism: the whole figure — both tables, the scaling
    // timeline, the verdict — re-renders bit-identically on a repeat
    // run and on a 4-worker-pool runtime.
    let repeat = adapt_table::run(scale);
    assert_eq!(
        first.to_string(),
        repeat.to_string(),
        "repeat run must render the identical figure"
    );
    let pooled = adapt_table::run_with(scale, || Runtime::builder().workers(4).build());
    assert_eq!(
        first.to_string(),
        pooled.to_string(),
        "a 4-worker runtime must render the identical figure"
    );
    println!("ok: figure is bit-identical across a repeat run and workers=4");

    // The scaling timeline is non-trivial: up into the spike, down
    // after the drain.
    let scaling = &first.adaptive_report.scaling;
    assert!(
        scaling.iter().any(|s| s.to > s.from),
        "the spike must scale the pool up"
    );
    assert!(
        scaling.iter().any(|s| s.to < s.from),
        "the drain must scale the pool back down"
    );
    println!(
        "ok: scaling timeline has {} events (up and down)",
        scaling.len()
    );

    // Admission-shed beats static-shed: the adaptive run prices the
    // provably-late out cheaply (rejections), expires strictly less in
    // queue, and still attains strictly more than the static pool.
    let (s, a) = (&first.static_report, &first.adaptive_report);
    assert!(a.total_rejected() > 0, "admission must price work out");
    assert!(
        a.total_expired() < s.total_expired(),
        "admission must replace queue expiry ({} adaptive vs {} static)",
        a.total_expired(),
        s.total_expired()
    );
    assert!(
        a.attainment() > s.attainment(),
        "adaptive attainment {:.3} must strictly beat static {:.3}",
        a.attainment(),
        s.attainment()
    );
    assert!(
        first.adaptive_procedures <= first.static_procedures,
        "adaptive may not do extra real work ({} vs {})",
        first.adaptive_procedures,
        first.static_procedures
    );
    for report in [s, a] {
        let snf = &report.tenants[2];
        assert_eq!(snf.offered, snf.ok, "the SNF pipeline must never be shed");
    }
    println!(
        "ok: attainment {:.3} -> {:.3} with {} rejections, procedures {} -> {}",
        s.attainment(),
        a.attainment(),
        a.total_rejected(),
        first.static_procedures,
        first.adaptive_procedures
    );

    // One live run for the non-deterministic half: real execution wall
    // time plus the scheduler's park/steal gauges (reported beside the
    // tables, never inside them).
    let rt = Runtime::builder().workers(2).build();
    let live = adaptive_serve(&rt, &adapt_table::adaptive_config(scale)).expect("live run");
    println!("wall (non-deterministic): {}", live.wall_summary());
}
