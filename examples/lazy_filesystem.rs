//! The Fig. 4 demo: descending a directory structure lazily with the
//! `get-file` procedure — each step's minimum repository holds one
//! directory's inode info, never the contents of siblings or files not
//! on the path.
//!
//! Run with: `cargo run --example lazy_filesystem`

use fix_core::data::Blob;
use fix_core::invocation::Invocation;
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use flatware::{get_file, register_get_file, FsBuilder};

fn main() {
    let rt = Runtime::builder().build();

    // A filesystem with a deep path and some heavy bystanders.
    let mut fs = FsBuilder::new();
    fs.add_file("dir0/file1", b"the one we want".to_vec())
        .unwrap();
    fs.add_file("dir0/sibling.bin", vec![1u8; 5 << 20]).unwrap();
    fs.add_file("dir1/huge-irrelevant.bin", vec![2u8; 20 << 20])
        .unwrap();
    fs.add_file("dir2/also-huge.bin", vec![3u8; 20 << 20])
        .unwrap();
    let root = fs.build(rt.store());
    println!(
        "filesystem stored: {} objects, {:.1} MiB",
        rt.store().object_count(),
        rt.store().total_bytes() as f64 / (1 << 20) as f64
    );

    let proc_h = register_get_file(&rt);

    // Build the first-step invocation by hand so we can inspect its
    // minimum repository before evaluating.
    let root_tree = rt.get_tree(root).unwrap();
    let info = root_tree.get(0).unwrap();
    let inv = Invocation {
        limits: ResourceLimits::default_limits(),
        procedure: proc_h,
        args: vec![
            rt.put_blob(Blob::from_slice(b"dir0/file1")),
            info,
            root.as_ref_handle(),
        ],
    };
    let thunk = rt.put_tree(inv.to_tree()).application().unwrap();

    let fp = rt.footprint(thunk).unwrap();
    println!(
        "\nminimum repository of get-file(\"dir0/file1\"): {} objects, {} bytes",
        fp.objects.len(),
        fp.total_bytes
    );
    println!(
        "  ({} Refs named but NOT fetched — 45 MiB of bystanders stay put)",
        fp.refs.len()
    );

    let result = rt.eval(thunk).unwrap();
    println!(
        "\nresolved to: {:?}",
        String::from_utf8_lossy(rt.get_blob(result).unwrap().as_slice())
    );

    // The convenience wrapper does the same in one call.
    let again = get_file(&rt, proc_h, root, "dir0/file1").unwrap();
    assert_eq!(again, result);
    println!("get_file helper agrees ✓");
}
