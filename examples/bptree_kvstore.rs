//! The B+-tree key-value store of §5.4: built over real Fix Trees and
//! traversed node-by-node by a continuation-passing Fix codelet with
//! pinpoint Selection thunks.
//!
//! Run with: `cargo run --release --example bptree_kvstore [n_keys]`

use fix::workloads::bptree::{build, lookup_fix, lookup_trusted, register_lookup, table2};
use fix::workloads::titles::generate_sorted_titles;
use fixpoint::Runtime;
use std::sync::atomic::Ordering;
use std::time::Instant;

fn main() {
    let n_keys: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);

    println!("generating {n_keys} article titles ...");
    let titles = generate_sorted_titles(7, n_keys);
    let pairs: Vec<(String, Vec<u8>)> = titles
        .iter()
        .map(|t| (t.clone(), format!("article body of {t}").into_bytes()))
        .collect();

    for arity in [4096usize, 256, 16] {
        let rt = Runtime::builder().build();
        let tree = build(rt.store(), &pairs, arity);
        let proc_h = register_lookup(&rt);
        println!(
            "\narity {arity}: depth {}, {} stored objects",
            tree.depth,
            rt.store().object_count()
        );

        // Ten queries, like one of the paper's query sets.
        let keys: Vec<&String> = (0..10).map(|i| &titles[(i * 7919) % n_keys]).collect();

        let mut bytes = 0;
        for k in &keys {
            let (v, stats) = lookup_trusted(rt.store(), &tree, k).expect("lookup");
            assert!(v.is_some());
            bytes += stats.key_bytes_read;
        }

        let before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        let start = Instant::now();
        for k in &keys {
            let value = lookup_fix(&rt, proc_h, &tree, k).expect("fix lookup");
            let blob = rt.get_blob(value).expect("value blob");
            assert!(blob.as_slice().starts_with(b"article body of"));
        }
        let elapsed = start.elapsed();
        let invocations = rt.engine().stats.procedures_run.load(Ordering::Relaxed) - before;
        println!(
            "  10 lookups in {elapsed:?}  ({} invocations, {} key-bytes read per lookup)",
            invocations,
            bytes / 10
        );
    }

    println!("\nTable 2 at arity 256, depth 3 (analytic):");
    for row in table2(256, 3, 22, 32) {
        println!(
            "  {:<28} {:>2} invocations, {:>6} B accessed, {:>6} B footprint",
            row.system, row.invocations, row.data_accessed, row.memory_footprint
        );
    }
}
