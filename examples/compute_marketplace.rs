//! A commodity compute market (paper §6): bid a Fix job out to
//! competing providers, double-check the cheapest answer, and settle
//! wrong-answer insurance.
//!
//! The job ships as a self-contained parcel — sandboxed FixVM code plus
//! content-addressed inputs — so any provider can evaluate it with no
//! prior arrangement, and every answer is a 32-byte handle comparable
//! across administrative domains.
//!
//! Run with: `cargo run --example compute_marketplace`

use fix::prelude::*;
use fix_attest::{Behavior, CheckPolicy, InsurancePolicy, Marketplace, Provider};
use fix_billing::Money;

/// Builds the customer's job: SHA-like digest chain over an input blob
/// (here: iterated squaring mod 2^64 — enough to be "real work"), as a
/// self-contained parcel.
fn build_job(x: u64, rounds: u64) -> Result<Vec<u8>> {
    let rt = Runtime::builder().build();
    let iterate = rt.install_vm_module(
        r#"
        func apply args=0 locals=2
          const 0
          const 2
          tree.get
          const 0
          blob.read_u64
          local.set 0
          const 0
          const 3
          tree.get
          const 0
          blob.read_u64
          local.set 1
        loop:
          local.get 1
          eqz
          jump_if done
          local.get 0
          local.get 0
          mul
          const 1
          add
          local.set 0
          local.get 1
          const 1
          sub
          local.set 1
          jump loop
        done:
          local.get 0
          blob.create_u64
          ret_handle
        end
        "#,
    )?;
    let thunk = rt.apply(
        ResourceLimits::default_limits(),
        iterate,
        &[
            rt.put_blob(Blob::from_u64(x)),
            rt.put_blob(Blob::from_u64(rounds)),
        ],
    )?;
    Ok(rt.store().export(thunk)?.to_bytes())
}

fn main() -> Result<()> {
    // Three providers: the cheapest one is unreliable.
    let mut market = Marketplace::new(
        vec![
            Provider::new(
                "BudgetCloud",
                Money::from_micros(12),
                Behavior::WrongEvery(2),
            ),
            Provider::new("SteadyCompute", Money::from_micros(30), Behavior::Honest),
            Provider::new("PremiumGrid", Money::from_micros(85), Behavior::Honest),
        ],
        InsurancePolicy {
            payout_per_wrong_answer: Money::from_dollars(10),
        },
    );

    println!("== job 1: trust the cheapest bid ==");
    let job = build_job(123_456_789, 10_000)?;
    let out = market.submit(&job, CheckPolicy::TrustCheapest)?;
    println!("paid {} — answer {}", out.paid, out.result);
    println!("(one attestation, nobody checked it)\n");

    println!("== job 2: replicate on the two cheapest ==");
    let out = market.submit(&job, CheckPolicy::Replicate(2))?;
    println!(
        "disputed: {} — {} attestations gathered, paid {}",
        out.disputed,
        out.attestations.len(),
        out.paid
    );
    for att in &out.attestations {
        let verdict = if att.result == out.result {
            "✓"
        } else {
            "✗ WRONG"
        };
        println!("  {verdict} {att}");
    }
    for claim in &out.claims {
        println!(
            "  insurance: {} owes {} for signing a wrong answer",
            claim.provider, claim.payout
        );
    }

    // Fetch the winning bytes; content addressing means no provider can
    // serve different data for the attested handle.
    let customer = Runtime::builder().build();
    let result = market.fetch(&out, &customer)?;
    println!(
        "\nfetched result: {} = {}",
        result,
        customer.get_u64(result)?
    );
    println!(
        "claims on file across the market: {}",
        market.claims().len()
    );
    Ok(())
}
