//! The serving layer end to end: fixed-seed multi-tenant open-loop
//! traffic served through the `fix-serve` driver pool — pipelined, two
//! batches in flight per driver via the submission API — against two
//! backends of the One Fix API: the single-node runtime (which submits
//! natively) and the netsim-backed cluster client (lifted onto
//! `SubmitApi` by `BlockingOffload`), plus a comparator run under the
//! OpenWhisk baseline profile.
//!
//! Three tenants share four drivers: an `interactive` tenant (Poisson
//! adds and fibs, weight 4), an `analytics` tenant (periodic
//! count-string bursts big enough to overrun its queue, weight 2), and
//! a `webapp` tenant (Poisson SeBS dynamic-html renders, weight 1).
//! Every number printed comes from the virtual clock, so the tables are
//! bit-identical run to run — which this example proves by serving the
//! same seed twice and comparing the rendered output.
//!
//! Run with: `cargo run --release --example serving [--quick]`

use fix::prelude::*;
use fix::serve::{serve, ArrivalProcess, RequestKind, ServeConfig, SloClass, TenantSpec};
use fix_baselines::{profiles, BaselineEvaluator, CostModel};
use fix_netsim::NodeId;
use std::sync::Arc;

fn config(scale: u32) -> ServeConfig {
    ServeConfig {
        seed: 42,
        duration_us: 150_000 * scale as u64,
        drivers: 4,
        batch: 32,
        queue_capacity: 64,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                arrivals: ArrivalProcess::Poisson { rate_rps: 3000.0 },
                mix: vec![(RequestKind::Add, 3), (RequestKind::Fib { max_n: 10 }, 1)],
                slo: SloClass::default(),
            },
            TenantSpec::uniform_mix(
                "analytics",
                2,
                ArrivalProcess::Bursts {
                    period_us: 50_000,
                    burst: 120,
                },
                RequestKind::Wordcount {
                    shard_bytes: 16 << 10,
                },
            ),
            TenantSpec::uniform_mix(
                "webapp",
                1,
                ArrivalProcess::Poisson { rate_rps: 500.0 },
                RequestKind::SebsHtml { users: 6 },
            ),
        ],
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = config(if quick { 1 } else { 4 });

    println!(
        "== serving {} tenants for {:.1} s virtual, seed {} ==\n",
        cfg.tenants.len(),
        cfg.duration_us as f64 / 1e6,
        cfg.seed
    );

    // --- Backend 1: the single-node runtime --------------------------
    let rt = Runtime::builder().build();
    let on_runtime = serve(&rt, &cfg).expect("serve on Runtime");
    println!("-- fixpoint::Runtime --");
    println!("{on_runtime}");

    // --- Backend 2: the distributed engine over netsim ---------------
    // A plain blocking backend joins the submission-first driver pool
    // through BlockingOffload (one submission thread per driver).
    let cc = Arc::new(ClusterClient::builder().build().expect("cluster client"));
    let cc_offload = BlockingOffload::with_threads(Arc::clone(&cc), cfg.drivers);
    let on_cluster = serve(&cc_offload, &cfg).expect("serve on ClusterClient");
    println!("-- fix_cluster::ClusterClient (via BlockingOffload) --");
    println!("{on_cluster}");
    println!(
        "   (cluster backend additionally recorded {} simulated runs, {} µs total)\n",
        cc.reports().len(),
        cc.total_simulated_us()
    );

    // --- Backend 3: a comparator profile, same traffic ---------------
    let rb = BaselineEvaluator::builder()
        .profile(profiles::openwhisk(
            &(0..10).map(NodeId).collect::<Vec<_>>(),
            &CostModel::default(),
        ))
        .build()
        .expect("baseline evaluator");
    let rb_offload = BlockingOffload::with_threads(Arc::new(rb), cfg.drivers);
    let on_baseline = serve(&rb_offload, &cfg).expect("serve on BaselineEvaluator");
    println!("-- fix_baselines::BaselineEvaluator (OpenWhisk profile, via BlockingOffload) --");
    println!("{on_baseline}");

    // --- The guarantees the serving layer makes ----------------------
    // 1. Virtual-time telemetry is a pure function of (config, seed):
    //    the same run again prints the identical table.
    let again = serve(&Runtime::builder().build(), &cfg).expect("repeat serve");
    assert_eq!(
        on_runtime.to_string(),
        again.to_string(),
        "same seed must reproduce the table bit for bit"
    );
    // 2. ...and it is backend-independent: evaluation results are
    //    content addressed, so every backend served the same traffic to
    //    the same outcomes.
    assert_eq!(on_runtime.to_string(), on_cluster.to_string());
    assert_eq!(on_runtime.to_string(), on_baseline.to_string());
    // 3. Accounting closes: offered = admitted + dropped, and every
    //    admitted request was really evaluated (ok + errors).
    for t in &on_runtime.tenants {
        assert_eq!(t.offered, t.admitted + t.dropped);
        assert_eq!(t.admitted, t.ok + t.errors);
        assert_eq!(t.errors, 0);
    }
    // 4. Overload really shed: the analytics bursts exceed queue_capacity.
    assert!(
        on_runtime.tenants[1].dropped > 0,
        "bursty tenant must overrun its bounded queue"
    );
    // 5. No SLO classes were configured, so nothing expired and nothing
    //    was cancelled — the default-options path is exactly the old
    //    weighted-fair serving.
    assert_eq!(on_runtime.total_expired(), 0);
    assert_eq!(on_runtime.total_cancelled(), 0);
    println!("serving tables reproduced bit-for-bit across runs and backends ✓\n");

    // --- The SLO configuration: two service classes, one backend ------
    // The same traffic shape, now with intent attached: the interactive
    // tenant is latency-class with a 25 ms deadline (expired, not
    // served, when missed), and analytics is batch-class (served only
    // when the latency tier is idle). Dispatch becomes two-level —
    // strict priority tiers, EDF within a tier — and every batch is
    // submitted through `submit_with` at its tier.
    let slo_cfg = slo_config(&cfg);
    let on_slo = serve(&Runtime::builder().build(), &slo_cfg).expect("serve SLO config");
    println!("-- fixpoint::Runtime, two-class SLO config --");
    println!("{on_slo}");

    let slo_again = serve(&Runtime::builder().build(), &slo_cfg).expect("repeat SLO serve");
    assert_eq!(
        on_slo.to_string(),
        slo_again.to_string(),
        "SLO dispatch must be as deterministic as weighted-fair dispatch"
    );
    for t in &on_slo.tenants {
        assert_eq!(t.offered, t.admitted + t.dropped);
        assert_eq!(t.admitted, t.ok + t.errors + t.expired + t.cancelled);
        assert_eq!(t.errors, 0);
    }
    let (_, _, interactive_p99, _) = on_slo.tenants[0].latency.tail_summary();
    let (_, _, analytics_p99, _) = on_slo.tenants[1].latency.tail_summary();
    assert!(
        interactive_p99 < analytics_p99,
        "the latency tier's p99 ({interactive_p99} µs) must sit below the batch tier's \
         ({analytics_p99} µs)"
    );
    println!(
        "SLO table reproduced bit-for-bit; latency-tier p99 {interactive_p99} µs < batch-tier \
         p99 {analytics_p99} µs ✓"
    );

    // --- Worker pools don't perturb the tables --------------------------
    // The scheduler shards its job map and steals work across per-worker
    // deques, so with workers the same traffic executes in a genuinely
    // different interleaving — and the virtual-clock tables must not
    // care. This runs in the release CI smoke, so a scheduler change
    // that lets wall-clock interleaving leak into the deterministic
    // telemetry fails the build.
    let one = serve(&Runtime::builder().workers(1).build(), &cfg).expect("serve workers=1");
    let four = serve(&Runtime::builder().workers(4).build(), &cfg).expect("serve workers=4");
    assert_eq!(
        one.to_string(),
        four.to_string(),
        "a 4-worker pool must reproduce the 1-worker tables bit for bit"
    );
    assert_eq!(one.to_string(), on_runtime.to_string());
    let slo_four = serve(&Runtime::builder().workers(4).build(), &slo_cfg).expect("SLO workers=4");
    assert_eq!(on_slo.to_string(), slo_four.to_string());
    println!("worker pools (1 vs 4) reproduce the pool-less tables bit-for-bit ✓");

    // --- Deterministic tracing ------------------------------------------
    // The fix-obs recorder rides along on the same run: turning it on
    // must not move the deterministic tables, its serve-layer summary is
    // itself a pure function of (config, seed), and the full trace
    // exports as Chrome trace-event JSON. This runs in the release CI
    // smoke, so instrumentation that perturbs serving — or an export
    // that stops parsing — fails the build.
    fix::obs::recorder().clear();
    fix::obs::set_tracing(true);
    let traced = serve(&Runtime::builder().build(), &cfg).expect("traced serve");
    fix::obs::set_tracing(false);
    let trace = fix::obs::recorder().drain();
    assert_eq!(
        on_runtime.to_string(),
        traced.to_string(),
        "tracing must not perturb the serving tables"
    );
    let summary = trace.summary();
    assert_eq!(summary.dropped(), 0, "recorder must hold the whole run");
    let json = trace.to_chrome_json();
    let events = fix::obs::validate_chrome_trace(&json).expect("Chrome trace must parse");
    assert!(events > 0, "Chrome trace must be non-empty");
    println!(
        "tracing on: tables unchanged, {events} events exported as valid Chrome trace JSON ✓\n"
    );
    println!("{summary}");
    println!("{}", traced.decomposition_table());
}

/// The same tenants as `config`, re-classed: interactive is
/// latency-tier with a deadline, analytics is batch-tier, webapp stays
/// normal.
fn slo_config(base: &ServeConfig) -> ServeConfig {
    let mut cfg = base.clone();
    cfg.tenants[0].slo = SloClass::latency(25_000);
    cfg.tenants[1].slo = SloClass::batch();
    cfg
}
