//! Pay-for-results billing (paper §6): why I/O externalization changes
//! the economics of serverless.
//!
//! Today a function is billed for every millisecond it occupies a
//! machine slice — including time spent idling on network I/O the
//! *platform* chose to schedule badly, or stalled on a neighbor
//! thrashing the shared cache. Fix's model makes a different contract
//! possible: an upfront price computable from the invocation
//! description, plus a runtime price over counters that are the
//! invocation's own fault.
//!
//! Run with: `cargo run --example pay_for_results`

use fix_billing::{noisy_neighbor, scheduling_incentive, Money, PriceSheet};
use fix_workloads::wordcount::Fig8aParams;

fn ratio(a: Money, b: Money) -> f64 {
    a.as_dollars_f64() / b.as_dollars_f64().max(f64::MIN_POSITIVE)
}

fn main() {
    let price = PriceSheet::default();

    // --- Experiment 1: the noisy neighbor. -----------------------------
    println!("== Noisy neighbor: identical work, shared L3 ==\n");
    let nn = noisy_neighbor(&price);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}  {:>14} {:>14}",
        "tenancy",
        "instructions",
        "L2 misses",
        "L3 misses",
        "wall ms",
        "effort bill",
        "results bill"
    );
    for (label, perf, bills) in [
        ("dedicated", nn.isolated, &nn.isolated_bills),
        ("noisy", nn.contended, &nn.contended_bills),
    ] {
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>10}  {:>14} {:>14}",
            label,
            perf.instructions,
            perf.l2_misses,
            perf.l3_misses,
            perf.wall_us / 1000,
            bills.0.total().to_string(),
            bills.1.total().to_string(),
        );
    }
    println!(
        "\npay-for-effort bill inflates {:.2}x under contention; \
         pay-for-results is invariant\n",
        ratio(nn.contended_bills.0.total(), nn.isolated_bills.0.total())
    );

    // Itemized invoice, to show what the customer can audit.
    println!(
        "itemized pay-for-results invoice (noisy run):\n{}\n",
        nn.contended_bills.1
    );

    // --- Experiment 2: the scheduling incentive (Fig. 8a re-billed). ---
    println!("== Scheduling incentive: Fig 8a workload, two platforms ==\n");
    let params = Fig8aParams::default();
    let out = scheduling_incentive(&price, &params);
    println!(
        "{:<28} {:>12} {:>14} {:>14}",
        "platform", "makespan", "effort bill", "results bill"
    );
    println!(
        "{:<28} {:>9.3} s {:>14} {:>14}",
        "Fix (late binding)",
        out.late.makespan_secs(),
        out.effort_bills.0.to_string(),
        out.results_bills.0.to_string(),
    );
    println!(
        "{:<28} {:>9.3} s {:>14} {:>14}",
        "status quo (internal I/O)",
        out.early.makespan_secs(),
        out.effort_bills.1.to_string(),
        out.results_bills.1.to_string(),
    );
    println!(
        "\nunder pay-for-effort, the badly-scheduled platform charges {:.1}x \
         more for the same results;",
        ratio(out.effort_bills.1, out.effort_bills.0)
    );
    println!(
        "under pay-for-results, scheduling quality is the provider's problem — as it should be."
    );
}
