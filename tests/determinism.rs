//! Determinism and memoization-coherence integration tests: the
//! properties that make Fix's "pay for results" model sound.

use fix::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// Two independent runtimes computing the same program produce
/// bit-identical result handles (content addressing is global truth).
#[test]
fn independent_runtimes_agree() {
    let program = |rt: &Runtime| -> Handle {
        let step = rt.register_native(
            "mix",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().unwrap();
                let b = ctx.arg_blob(1)?.as_u64().unwrap();
                ctx.host
                    .create_blob((a.rotate_left(7) ^ b).to_le_bytes().to_vec())
            }),
        );
        let mut acc = rt.put_blob(Blob::from_u64(1));
        for i in 0..20u64 {
            let t = rt
                .apply(limits(), step, &[acc, rt.put_blob(Blob::from_u64(i))])
                .unwrap();
            acc = rt.eval(t).unwrap();
        }
        acc
    };
    let a = program(&Runtime::builder().build());
    let b = program(&Runtime::builder().workers(4).build());
    assert_eq!(a, b);
}

/// The simulated cluster is deterministic end to end.
#[test]
fn cluster_simulation_is_reproducible() {
    use fix::workloads::wordcount::{fig8b_graph, Fig8bParams};
    let params = Fig8bParams {
        n_shards: 60,
        ..Fig8bParams::default()
    };
    let graph = fig8b_graph(&params);
    let setup = fix::cluster::ClusterSetup::workers_only(
        10,
        fix::netsim::NodeSpec::default(),
        fix::netsim::NetConfig::default(),
    );
    let cfg = fix::cluster::FixConfig {
        placement: fix::cluster::Placement::Random,
        seed: 99,
        ..fix::cluster::FixConfig::default()
    };
    let a = fix::cluster::run_fix(&setup, &graph, &cfg);
    let b = fix::cluster::run_fix(&setup, &graph, &cfg);
    assert_eq!(a.makespan_us, b.makespan_us);
    assert_eq!(a.bytes_moved, b.bytes_moved);
    assert_eq!(a.cpu.waiting_core_us, b.cpu.waiting_core_us);
}

/// VM guests are deterministic across runtimes, including fuel use.
#[test]
fn vm_guests_deterministic_across_runtimes() {
    let src = r#"
        func apply args=0 locals=2
          const 0
          const 2
          tree.get
          const 0
          blob.read_u64
          local.set 0
        loop:
          local.get 0
          eqz
          jump_if out
          local.get 1
          const 3
          mul
          const 1
          add
          local.set 1
          local.get 0
          const 1
          sub
          local.set 0
          jump loop
        out:
          local.get 1
          blob.create_u64
          ret_handle
        end
    "#;
    let run_once = || {
        let rt = Runtime::builder().build();
        let m = rt.install_vm_module(src).unwrap();
        let t = rt
            .apply(limits(), m, &[rt.put_blob(Blob::from_u64(37))])
            .unwrap();
        let out = rt.eval(t).unwrap();
        (
            out,
            rt.engine()
                .stats
                .fuel_used
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    };
    let (r1, f1) = run_once();
    let (r2, f2) = run_once();
    assert_eq!(r1, r2);
    assert_eq!(f1, f2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Memoization coherence: evaluating any pipeline twice returns the
    /// identical handle and runs zero additional procedures.
    #[test]
    fn eval_twice_is_coherent(inputs in proptest::collection::vec(any::<u64>(), 1..8)) {
        let rt = Runtime::builder().build();
        let sum = rt.register_native(
            "sum-all",
            Arc::new(|ctx| {
                let tree = ctx.input_tree()?;
                let mut total = 0u64;
                for slot in tree.entries().iter().skip(2) {
                    total = total.wrapping_add(
                        ctx.host.load_blob(*slot)?.as_u64().unwrap_or(0),
                    );
                }
                ctx.host.create_blob(total.to_le_bytes().to_vec())
            }),
        );
        let args: Vec<Handle> = inputs.iter().map(|&v| rt.put_blob(Blob::from_u64(v))).collect();
        let thunk = rt.apply(limits(), sum, &args).unwrap();
        let first = rt.eval(thunk).unwrap();
        let runs_before = rt.engine().stats.procedures_run
            .load(std::sync::atomic::Ordering::Relaxed);
        let second = rt.eval(thunk).unwrap();
        let runs_after = rt.engine().stats.procedures_run
            .load(std::sync::atomic::Ordering::Relaxed);
        prop_assert_eq!(first, second);
        prop_assert_eq!(runs_before, runs_after);
        prop_assert_eq!(
            rt.get_u64(first).unwrap(),
            inputs.iter().copied().fold(0u64, u64::wrapping_add)
        );
    }

    /// Selection agrees with direct indexing for arbitrary trees.
    #[test]
    fn selection_matches_direct_access(
        blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..16),
        pick in any::<proptest::sample::Index>(),
    ) {
        let rt = Runtime::builder().build();
        let handles: Vec<Handle> =
            blobs.iter().map(|b| rt.put_blob(Blob::from_slice(b))).collect();
        let tree = rt.put_tree(Tree::from_handles(handles.clone()));
        let i = pick.index(handles.len());
        let sel = rt.select(tree, i as u64).unwrap();
        prop_assert_eq!(rt.eval(sel).unwrap(), handles[i]);
    }

    /// Wordcount over arbitrary shard counts matches the oracle.
    #[test]
    fn wordcount_matches_oracle(n_shards in 1usize..10, seed in any::<u64>()) {
        use fix::workloads::corpus::{count_nonoverlapping, generate_shard};
        use fix::workloads::wordcount::{run_wordcount_fix, store_shards};
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, seed, n_shards, 4096);
        let got = run_wordcount_fix(&rt, &shards, b"of").unwrap();
        let expect: u64 = (0..n_shards)
            .map(|i| count_nonoverlapping(&generate_shard(seed, i as u64, 4096), b"of"))
            .sum();
        prop_assert_eq!(got, expect);
    }
}
