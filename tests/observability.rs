//! Observability integration tests: the `fix-obs` recorder and metrics
//! registry wired through the real stack.
//!
//! The deterministic-tracing contract under test: serve-layer lifecycle
//! events ride the virtual clock, so for a fixed seed the trace summary
//! is byte-identical across runs, worker counts, and submitting
//! backends — while scheduler/durable/offload diagnostics are free to
//! differ. The metrics contract: registry snapshots taken through
//! `Runtime::metrics()` agree exactly with the legacy accessors,
//! because both read the same live cells.

use fix::dispatch::{dispatch, DispatchConfig, NodeStorage, RoutingPolicy};
use fix::durable::{DurableOptions, DurableStore, FsyncPolicy};
use fix::obs::{self, TraceSummary, TracingMode};
use fix::prelude::*;
use fix::serve::{serve, ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
use std::sync::{Arc, Mutex};

/// The recorder and tracing toggle are process-global; tests in this
/// binary run concurrently, so every test that records serializes here.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// A small fixed-seed two-tenant workload (short horizon: these run in
/// debug CI).
fn cfg() -> ServeConfig {
    ServeConfig {
        seed: 2718,
        duration_us: 20_000,
        drivers: 2,
        batch: 16,
        queue_capacity: 48,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec::uniform_mix(
                "adds",
                2,
                ArrivalProcess::Poisson { rate_rps: 4000.0 },
                RequestKind::Add,
            ),
            TenantSpec::uniform_mix(
                "fibs",
                1,
                ArrivalProcess::Poisson { rate_rps: 1500.0 },
                RequestKind::Fib { max_n: 10 },
            ),
        ],
    }
}

/// One traced serve run against `api`, returning the rendered report
/// and the deterministic trace summary.
fn traced<A>(api: &A) -> (String, String)
where
    A: fix::core::api::SubmitApi + fix::core::api::InvocationApi + Send + Sync,
{
    obs::recorder().clear();
    obs::set_tracing(true);
    let report = serve(api, &cfg()).expect("traced serve run");
    obs::set_tracing(false);
    let trace = obs::recorder().drain();
    let summary = TraceSummary::of(&trace);
    assert_eq!(summary.dropped(), 0, "recorder must hold the whole run");
    (report.to_string(), summary.to_string())
}

/// Same seed → byte-identical deterministic summary on the inline
/// runtime, a 4-worker runtime, and a `BlockingOffload`-lifted cluster
/// client — and none of them perturb the untraced serving tables.
#[test]
fn trace_summary_is_backend_independent() {
    let _g = TRACE_LOCK.lock().unwrap();
    let plain = serve(&Runtime::builder().build(), &cfg())
        .expect("untraced serve run")
        .to_string();

    let (inline_report, inline_summary) = traced(&Runtime::builder().build());
    let (workers_report, workers_summary) = traced(&Runtime::builder().workers(4).build());
    let cc = Arc::new(ClusterClient::builder().build().expect("cluster client"));
    let off = BlockingOffload::with_threads(cc, cfg().drivers);
    let (cluster_report, cluster_summary) = traced(&off);

    for report in [&inline_report, &workers_report, &cluster_report] {
        assert_eq!(*report, plain, "tracing must not perturb the serve tables");
    }
    assert_eq!(inline_summary, workers_summary);
    assert_eq!(inline_summary, cluster_summary);
    // Re-running reproduces the summary byte for byte.
    let (_, again) = traced(&Runtime::builder().build());
    assert_eq!(inline_summary, again);
}

/// The traced run's Chrome export parses, is non-empty, and carries
/// wall-clock diagnostics (scheduler events) alongside the
/// deterministic serve stream.
#[test]
fn chrome_export_is_valid_and_layered() {
    let _g = TRACE_LOCK.lock().unwrap();
    obs::recorder().clear();
    obs::set_tracing(true);
    serve(&Runtime::builder().workers(2).build(), &cfg()).expect("traced serve run");
    obs::set_tracing(false);
    let trace = obs::recorder().drain();
    let serve_events = trace.iter().filter(|e| e.kind.deterministic()).count();
    let sched_events = trace
        .iter()
        .filter(|e| e.kind.layer() == obs::Layer::Scheduler)
        .count();
    assert!(serve_events > 0, "serve lifecycle must be traced");
    assert!(sched_events > 0, "scheduler diagnostics must be traced");
    let json = trace.to_chrome_json();
    let n = obs::validate_chrome_trace(&json).expect("Chrome trace must parse");
    assert_eq!(n, trace.len(), "every event exports exactly once");
}

/// `Runtime::metrics()` and the legacy accessors read the same live
/// cells, so they can never disagree; the durable tier's metrics merge
/// in under their `durable.*` names.
#[test]
fn metrics_snapshot_agrees_with_legacy_accessors() {
    let dir = tempfile::tempdir().unwrap();
    let durable = DurableStore::open(
        dir.path(),
        DurableOptions {
            fsync: FsyncPolicy::Always,
            ..DurableOptions::default()
        },
    )
    .unwrap();
    let rt = Runtime::builder().durable(durable).workers(2).build();
    // Enough chained work (results past the literal bound, so they hit
    // the log) to move every counter under test.
    let grow = rt.register_native(
        "obs/grow",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            let mut out = (x + 1).to_le_bytes().to_vec();
            out.resize(64, 0xAB);
            ctx.host.create_blob(out)
        }),
    );
    let mut acc = rt.put_blob(Blob::from_u64(0));
    for _ in 0..32 {
        let t = rt
            .apply(ResourceLimits::default_limits(), grow, &[acc])
            .unwrap();
        let full = rt.eval(t).unwrap();
        acc = rt.put_blob(Blob::from_u64(u64::from_le_bytes(
            rt.get_blob(full).unwrap().as_slice()[..8]
                .try_into()
                .unwrap(),
        )));
    }
    rt.durable().unwrap().flush().unwrap();

    let snap = rt.metrics();
    assert_eq!(snap.counters["scheduler.work_steals"], rt.work_steals());
    assert_eq!(
        snap.gauges["scheduler.queued_jobs"],
        rt.queued_jobs() as i64
    );
    assert_eq!(
        snap.gauges["scheduler.submission_watchers"],
        rt.submission_watchers() as i64
    );
    assert_eq!(snap.counters["engine.procedures_run"], rt.procedures_run());
    let stats = rt.durable().unwrap().stats();
    assert_eq!(
        snap.counters["durable.appended_frames"],
        stats.appended_frames
    );
    assert_eq!(snap.counters["durable.fsyncs"], stats.fsyncs);
    assert!(snap.counters["durable.appended_frames"] > 0);
    assert!(snap.counters["durable.fsyncs"] > 0);
    assert!(snap.histograms.contains_key("durable.fsync_us"));
}

/// Dispatcher-tier events ride the virtual clock like the serve
/// lifecycle: every admitted request leaves a `dispatch.route` record,
/// node failure leaves kill/restart records, and the per-node
/// queue-depth gauges land in the global registry — all of it
/// deterministic (byte-identical summaries across runs).
#[test]
fn dispatcher_events_and_gauges_are_deterministic() {
    let _g = TRACE_LOCK.lock().unwrap();
    let dcfg = DispatchConfig {
        base: ServeConfig {
            seed: 31,
            duration_us: 20_000,
            drivers: 1,
            batch: 8,
            queue_capacity: 48,
            batch_overhead_us: 5,
            inflight: 2,
            tenants: vec![TenantSpec::uniform_mix(
                "fibs",
                1,
                ArrivalProcess::Poisson { rate_rps: 3000.0 },
                RequestKind::Fib { max_n: 6 },
            )],
        },
        nodes: 3,
        policy: RoutingPolicy::Affinity,
        spill_margin: 8,
        storage: NodeStorage::Memory,
        fault: None,
    };
    let run = || {
        obs::recorder().clear();
        obs::set_tracing(true);
        let outcome = dispatch(&dcfg).expect("traced dispatch run");
        obs::set_tracing(false);
        let trace = obs::recorder().drain();
        let summary = TraceSummary::of(&trace);
        assert_eq!(summary.dropped(), 0, "recorder must hold the whole run");
        (outcome, trace, summary.to_string())
    };
    let (outcome, trace, summary) = run();
    let routes = trace
        .iter()
        .filter(|e| e.kind == obs::EventKind::Route)
        .count() as u64;
    let admitted: u64 = outcome.report.tenants.iter().map(|t| t.admitted).sum();
    assert_eq!(routes, admitted, "every admitted request is routed once");
    assert!(summary.contains("dispatch.route"));
    assert!(
        !summary.contains("t1 ") && !summary.contains("t2 "),
        "node indices must not mint phantom tenant rows"
    );
    let global = obs::global().snapshot();
    for n in 0..3 {
        assert!(
            global
                .gauges
                .contains_key(&format!("dispatch.node{n}.queue_depth")),
            "node {n} gauge must be registered globally"
        );
    }
    let (_, _, again) = run();
    assert_eq!(summary, again, "dispatcher tracing must be deterministic");
}

/// Node failure leaves exactly one kill and one restart record, each
/// carrying the node index on the virtual clock.
#[test]
fn node_failure_is_traced() {
    let _g = TRACE_LOCK.lock().unwrap();
    let dir = tempfile::tempdir().unwrap();
    let dcfg = DispatchConfig {
        base: ServeConfig {
            seed: 8,
            duration_us: 20_000,
            drivers: 1,
            batch: 8,
            queue_capacity: 64,
            batch_overhead_us: 5,
            inflight: 1,
            tenants: vec![TenantSpec::uniform_mix(
                "bursty",
                1,
                ArrivalProcess::Bursts {
                    period_us: 9_900,
                    burst: 32,
                },
                RequestKind::SebsHtml { users: 3 },
            )],
        },
        nodes: 2,
        policy: RoutingPolicy::Affinity,
        spill_margin: 8,
        storage: NodeStorage::Durable(dir.path().to_path_buf()),
        fault: Some(fix::dispatch::FaultPlan {
            node: 0,
            kill_at_us: 10_000,
            restart_at_us: 14_000,
            restart: fix::dispatch::RestartKind::Warm,
        }),
    };
    obs::recorder().clear();
    obs::set_tracing(true);
    let outcome = dispatch(&dcfg).expect("traced faulted dispatch run");
    obs::set_tracing(false);
    let trace = obs::recorder().drain();
    let kills: Vec<_> = trace
        .iter()
        .filter(|e| e.kind == obs::EventKind::NodeKill)
        .collect();
    let restarts: Vec<_> = trace
        .iter()
        .filter(|e| e.kind == obs::EventKind::NodeRestart)
        .collect();
    assert_eq!(kills.len(), 1);
    assert_eq!((kills[0].a, kills[0].virt_us), (0, 10_000));
    assert_eq!(restarts.len(), 1);
    assert_eq!((restarts[0].a, restarts[0].virt_us), (0, 14_000));
    assert_eq!(restarts[0].b, 1, "warm restart is flagged");
    outcome.assert_accounting_closure();
}

/// `TracingMode::Sampled(n)` shrinks the captured volume roughly n×
/// while counting (never silently dropping) the sampled-out events; the
/// untraced serve tables are unperturbed.
#[test]
fn sampled_tracing_counts_what_it_skips() {
    let _g = TRACE_LOCK.lock().unwrap();
    let plain = serve(&Runtime::builder().build(), &cfg())
        .expect("untraced serve run")
        .to_string();

    obs::recorder().clear();
    obs::set_tracing_mode(TracingMode::Full);
    serve(&Runtime::builder().build(), &cfg()).expect("fully traced run");
    obs::set_tracing_mode(TracingMode::Off);
    let full = obs::recorder().drain();

    obs::recorder().clear();
    obs::set_tracing_mode(TracingMode::Sampled(8));
    let sampled_report = serve(&Runtime::builder().build(), &cfg()).expect("sampled run");
    obs::set_tracing_mode(TracingMode::Off);
    let sampled = obs::recorder().drain();

    assert_eq!(
        sampled_report.to_string(),
        plain,
        "sampling must not perturb the serve tables"
    );
    assert!(
        sampled.len() < full.len() / 4,
        "8× sampling must shrink the trace"
    );
    assert!(sampled.sampled_out > 0, "skips must be counted, not lost");

    // The exact stride contract, pinned on a single thread: over any
    // window of 80 consecutive per-thread ticks at stride 8, exactly 10
    // events are captured and 70 are counted as sampled out.
    obs::recorder().clear();
    obs::set_tracing_mode(TracingMode::Sampled(8));
    for i in 0..80u64 {
        obs::emit(obs::EventKind::ServeAdmit, i, i, 0, 0);
    }
    obs::set_tracing_mode(TracingMode::Off);
    let strided = obs::recorder().drain();
    assert_eq!(strided.len(), 10);
    assert_eq!(strided.sampled_out, 70);
    assert_eq!(obs::tracing_mode(), TracingMode::Off);
}

/// The serving layer's per-tenant latency decomposition closes exactly:
/// every served request contributes one sample to each of queue-wait,
/// service, and fill, and the global registry carries the per-tenant
/// histograms and queue-depth gauges.
#[test]
fn decomposition_and_global_registry_close() {
    let report = serve(&Runtime::builder().build(), &cfg()).expect("serve run");
    for t in &report.tenants {
        let served = t.latency.count();
        assert_eq!(t.queue_wait.count(), served);
        assert_eq!(t.service.count(), served);
        assert_eq!(t.fill.count(), served);
    }
    let table = report.decomposition_table();
    assert!(table.contains("latency decomposition"));
    assert!(table.contains("adds"));
    let global = obs::global().snapshot();
    assert!(global.histograms["serve.adds.latency_us"].count() > 0);
    assert!(global.gauges.contains_key("serve.adds.queue_depth"));
}
