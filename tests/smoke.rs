//! Smoke test guarding the quickstart path documented in `src/lib.rs`:
//! build a `Runtime`, register a native codelet, and round-trip a blob
//! through `apply`/`eval`. If this breaks, the front-page example is
//! broken for every new user, whatever the deeper suites say.

use fix::prelude::*;
use std::sync::Arc;

#[test]
fn quickstart_round_trip() {
    let rt = Runtime::builder().build();
    let double = rt.register_native(
        "double",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            ctx.host.create_blob((2 * x).to_le_bytes().to_vec())
        }),
    );
    let thunk = rt
        .apply(
            ResourceLimits::default_limits(),
            double,
            &[rt.put_blob(Blob::from_u64(21))],
        )
        .unwrap();
    assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), 42);
}

#[test]
fn blob_round_trips_through_the_store() {
    let rt = Runtime::builder().build();
    let payload: Vec<u8> = (0u8..=255).collect();
    let h = rt.put_blob(Blob::from_vec(payload.clone()));
    assert_eq!(rt.get_blob(h).unwrap().as_slice(), payload.as_slice());
    // Content addressing: the same bytes name the same handle.
    assert_eq!(rt.put_blob(Blob::from_vec(payload)), h);
}

#[test]
fn eval_is_memoized_across_calls() {
    let rt = Runtime::builder().build();
    let inc = rt.register_native(
        "inc",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            ctx.host.create_blob((x + 1).to_le_bytes().to_vec())
        }),
    );
    let thunk = rt
        .apply(
            ResourceLimits::default_limits(),
            inc,
            &[rt.put_blob(Blob::from_u64(1))],
        )
        .unwrap();
    let first = rt.eval(thunk).unwrap();
    let runs_after_first = rt
        .engine()
        .stats
        .procedures_run
        .load(std::sync::atomic::Ordering::Relaxed);
    let second = rt.eval(thunk).unwrap();
    let runs_after_second = rt
        .engine()
        .stats
        .procedures_run
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(first, second, "determinism: same thunk, same handle");
    assert_eq!(
        runs_after_first, runs_after_second,
        "second eval must be a pure relation-cache hit"
    );
}
