//! Concurrency stress for submission-first evaluation: N producer
//! threads submitting batches while M waiter threads resolve them over
//! one shared `Runtime`, with no worker pool — every scrap of progress
//! comes from waiters driving the scheduler through `wait`/`wait_any`.
//!
//! What this pins down:
//!
//! * **no lost wakeups** — the test completing at all means every
//!   ticket resolved even though submissions, completions, and waits
//!   interleave freely across seven threads;
//! * **accounting closure** — every submitted request is resolved
//!   exactly once, with the right value, and the runtime executed
//!   exactly one procedure per distinct request;
//! * **no leaked bookkeeping** — the scheduler's watcher table is empty
//!   once the books close;
//! * **cancellation under fire** — a canceller thread revoking a share
//!   of the in-flight tickets must neither hang the waiters nor break
//!   the books: every surviving request still resolves exactly once,
//!   and no watcher or orphaned queued job outlives the run;
//! * **work stealing** — tokens land in the submitting thread's deque
//!   slot, so every other thread that makes progress on them crossed a
//!   deque boundary: the steal tests pin that cross-slot claiming keeps
//!   the same exactly-once books, that a submitting thread's exit never
//!   strands its queued work (the stall check must see other slots),
//!   and that a latency batch overtakes a busy worker via stealing.

use fix::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Mutex};

const PRODUCERS: usize = 4;
const WAITERS: usize = 3;
const BATCHES_PER_PRODUCER: usize = 30;
const BATCH: u64 = 8;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

#[test]
fn producers_and_waiters_share_one_runtime() {
    let rt = Arc::new(Runtime::builder().build());
    let add = rt.register_native(
        "stress/add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );

    // Producers ship (expected results, ticket) pairs; waiters resolve.
    let (tx, rx) = mpsc::channel::<(Vec<u64>, BatchTicket)>();
    let rx = Arc::new(Mutex::new(rx));
    let verified = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            let rt = Arc::clone(&rt);
            scope.spawn(move || {
                for k in 0..BATCHES_PER_PRODUCER {
                    // Globally unique first argument per request, so
                    // every thunk is distinct and runs exactly once.
                    let base = (p as u64) * 1_000_000 + (k as u64) * BATCH;
                    let thunks: Vec<Handle> = (0..BATCH)
                        .map(|j| {
                            rt.apply(
                                limits(),
                                add,
                                &[
                                    rt.put_blob(Blob::from_u64(base + j)),
                                    rt.put_blob(Blob::from_u64(17)),
                                ],
                            )
                            .unwrap()
                        })
                        .collect();
                    let expected: Vec<u64> = (0..BATCH).map(|j| base + j + 17).collect();
                    // Submission must not block: the producer never
                    // drives the scheduler itself.
                    tx.send((expected, rt.submit_many(&thunks)))
                        .expect("waiters outlive producers");
                }
            });
        }
        drop(tx); // Waiters observe disconnect once producers finish.

        for w in 0..WAITERS {
            let rx = Arc::clone(&rx);
            let rt = Arc::clone(&rt);
            let verified = &verified;
            scope.spawn(move || {
                // Each waiter multiplexes a small window of tickets;
                // odd waiters resolve sequentially with plain wait() to
                // mix both resolution styles against one scheduler.
                let use_wait_any = w % 2 == 0;
                let mut expected: Vec<Vec<u64>> = Vec::new();
                let mut tickets: Vec<BatchTicket> = Vec::new();
                loop {
                    // Refill the window without blocking.
                    while tickets.len() < 4 {
                        match rx.lock().unwrap().try_recv() {
                            Ok((exp, ticket)) => {
                                expected.push(exp);
                                tickets.push(ticket);
                            }
                            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                        }
                    }
                    if tickets.is_empty() {
                        // Nothing in hand: block for more or finish.
                        match rx.lock().unwrap().recv() {
                            Ok((exp, ticket)) => {
                                expected.push(exp);
                                tickets.push(ticket);
                            }
                            Err(_) => return, // Drained and disconnected.
                        }
                    }
                    let (exp, results) = if use_wait_any {
                        let i = rt
                            .wait_any(&mut tickets)
                            .expect("unclaimed tickets are pending");
                        let results = tickets[i]
                            .take_results()
                            .expect("wait_any returns a completed, unclaimed ticket");
                        tickets.swap_remove(i);
                        (expected.swap_remove(i), results)
                    } else {
                        let ticket = tickets.pop().expect("window is non-empty");
                        (expected.pop().expect("paired"), ticket.wait())
                    };
                    assert_eq!(results.len(), exp.len());
                    for (r, want) in results.iter().zip(&exp) {
                        let h = *r.as_ref().expect("stress request succeeds");
                        assert_eq!(rt.get_u64(h).unwrap(), *want);
                    }
                    verified.fetch_add(exp.len() as u64, Ordering::SeqCst);
                }
            });
        }
    });

    let total = (PRODUCERS * BATCHES_PER_PRODUCER) as u64 * BATCH;
    assert_eq!(
        verified.load(Ordering::SeqCst),
        total,
        "every submitted request must be resolved exactly once"
    );
    assert_eq!(
        rt.procedures_run(),
        total,
        "every distinct request ran exactly once (accounting closure)"
    );
    assert_eq!(
        rt.submission_watchers(),
        0,
        "resolved tickets must leave no watchers behind"
    );
}

/// The same books must close when a real worker pool races the waiters
/// for queue items (completions can now happen between a waiter's poll
/// and its park — the lost-wakeup window this test exists to slam).
#[test]
fn stress_survives_a_worker_pool() {
    let rt = Arc::new(Runtime::builder().workers(2).build());
    let add = rt.register_native(
        "stress/pool-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );
    let resolved = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for p in 0..3u64 {
            let rt = Arc::clone(&rt);
            let resolved = &resolved;
            scope.spawn(move || {
                let mut tickets: Vec<BatchTicket> = (0..20u64)
                    .map(|k| {
                        let thunks: Vec<Handle> = (0..BATCH)
                            .map(|j| {
                                rt.apply(
                                    limits(),
                                    add,
                                    &[
                                        rt.put_blob(Blob::from_u64(p * 10_000 + k * BATCH + j)),
                                        rt.put_blob(Blob::from_u64(1)),
                                    ],
                                )
                                .unwrap()
                            })
                            .collect();
                        rt.submit_many(&thunks)
                    })
                    .collect();
                while let Some(i) = rt.wait_any(&mut tickets) {
                    for r in tickets[i].take_results().expect("completed") {
                        r.expect("pool stress request succeeds");
                        resolved.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(resolved.load(Ordering::SeqCst), 3 * 20 * BATCH);
    assert_eq!(rt.submission_watchers(), 0);
}

/// A canceller thread races the waiters: a deterministic share of the
/// tickets is cancelled mid-flight while the rest are verified. The
/// accounting must still close — every surviving request resolves
/// exactly once with the right value, procedures never run more than
/// once per distinct request, and nothing (watchers or queued jobs)
/// leaks.
#[test]
fn canceller_thread_cannot_break_accounting() {
    let rt = Arc::new(Runtime::builder().build());
    let add = rt.register_native(
        "stress/cancel-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );

    // Producers tag every third batch for cancellation; the canceller
    // drains those, the waiters the rest.
    let (live_tx, live_rx) = mpsc::channel::<(Vec<u64>, BatchTicket)>();
    let (doom_tx, doom_rx) = mpsc::channel::<BatchTicket>();
    let live_rx = Arc::new(Mutex::new(live_rx));
    let verified = AtomicU64::new(0);
    let doomed_count = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let live_tx = live_tx.clone();
            let doom_tx = doom_tx.clone();
            let rt = Arc::clone(&rt);
            let doomed_count = &doomed_count;
            scope.spawn(move || {
                for k in 0..BATCHES_PER_PRODUCER {
                    let base = 2_000_000 + (p as u64) * 1_000_000 + (k as u64) * BATCH;
                    let thunks: Vec<Handle> = (0..BATCH)
                        .map(|j| {
                            rt.apply(
                                limits(),
                                add,
                                &[
                                    rt.put_blob(Blob::from_u64(base + j)),
                                    rt.put_blob(Blob::from_u64(23)),
                                ],
                            )
                            .unwrap()
                        })
                        .collect();
                    let ticket = rt.submit_many(&thunks);
                    if k % 3 == 0 {
                        doomed_count.fetch_add(BATCH, Ordering::SeqCst);
                        doom_tx.send(ticket).expect("canceller outlives producers");
                    } else {
                        let expected: Vec<u64> = (0..BATCH).map(|j| base + j + 23).collect();
                        live_tx
                            .send((expected, ticket))
                            .expect("waiters outlive producers");
                    }
                }
            });
        }
        drop(live_tx);
        drop(doom_tx);

        // The canceller: revokes tickets as fast as they arrive.
        scope.spawn(move || {
            while let Ok(ticket) = doom_rx.recv() {
                ticket.cancel();
            }
        });

        for _ in 0..WAITERS {
            let live_rx = Arc::clone(&live_rx);
            let rt = Arc::clone(&rt);
            let verified = &verified;
            scope.spawn(move || loop {
                let next = live_rx.lock().unwrap().recv();
                let Ok((expected, ticket)) = next else {
                    return; // Drained and disconnected.
                };
                let results = ticket.wait();
                assert_eq!(results.len(), expected.len());
                for (r, want) in results.iter().zip(&expected) {
                    let h = *r.as_ref().expect("surviving request succeeds");
                    assert_eq!(rt.get_u64(h).unwrap(), *want);
                }
                verified.fetch_add(expected.len() as u64, Ordering::SeqCst);
            });
        }
    });

    let total = (PRODUCERS * BATCHES_PER_PRODUCER) as u64 * BATCH;
    let doomed = doomed_count.load(Ordering::SeqCst);
    assert_eq!(
        verified.load(Ordering::SeqCst),
        total - doomed,
        "every surviving request must be resolved exactly once"
    );
    // Distinct thunks run at most once; every verified one ran. The
    // cancelled remainder ran only if a waiter dequeued it before its
    // cancel landed — never more than once either way.
    let ran = rt.procedures_run();
    assert!(
        ran >= total - doomed && ran <= total,
        "procedures_run {ran} outside [{}, {total}]",
        total - doomed
    );
    assert_eq!(rt.submission_watchers(), 0, "no watcher survives the run");
    assert_eq!(rt.queued_jobs(), 0, "no orphaned queued jobs survive");
}

/// The canceller stress again, now with a 4-worker pool stealing from
/// the producers' deque slots while cancels land. Producers never drive
/// the scheduler, so *every* job that runs was claimed across a slot
/// boundary — by a pool worker or a waiter — and the books must close
/// exactly as they do single-sloted: surviving requests resolve once
/// with the right value, nothing runs twice, nothing leaks.
#[test]
fn worker_pool_steals_survive_concurrent_cancel() {
    const POOL_BATCHES: usize = 20;
    let rt = Arc::new(Runtime::builder().workers(4).build());
    let add = rt.register_native(
        "stress/steal-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );

    let (live_tx, live_rx) = mpsc::channel::<(Vec<u64>, BatchTicket)>();
    let (doom_tx, doom_rx) = mpsc::channel::<BatchTicket>();
    let live_rx = Arc::new(Mutex::new(live_rx));
    let verified = AtomicU64::new(0);
    let doomed_count = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let live_tx = live_tx.clone();
            let doom_tx = doom_tx.clone();
            let rt = Arc::clone(&rt);
            let doomed_count = &doomed_count;
            scope.spawn(move || {
                for k in 0..POOL_BATCHES {
                    let base = 4_000_000 + (p as u64) * 1_000_000 + (k as u64) * BATCH;
                    let thunks: Vec<Handle> = (0..BATCH)
                        .map(|j| {
                            rt.apply(
                                limits(),
                                add,
                                &[
                                    rt.put_blob(Blob::from_u64(base + j)),
                                    rt.put_blob(Blob::from_u64(31)),
                                ],
                            )
                            .unwrap()
                        })
                        .collect();
                    let ticket = rt.submit_many(&thunks);
                    if k % 3 == 0 {
                        doomed_count.fetch_add(BATCH, Ordering::SeqCst);
                        doom_tx.send(ticket).expect("canceller outlives producers");
                    } else {
                        let expected: Vec<u64> = (0..BATCH).map(|j| base + j + 31).collect();
                        live_tx
                            .send((expected, ticket))
                            .expect("waiters outlive producers");
                    }
                }
            });
        }
        drop(live_tx);
        drop(doom_tx);

        scope.spawn(move || {
            while let Ok(ticket) = doom_rx.recv() {
                ticket.cancel();
            }
        });

        for _ in 0..WAITERS {
            let live_rx = Arc::clone(&live_rx);
            let rt = Arc::clone(&rt);
            let verified = &verified;
            scope.spawn(move || loop {
                let next = live_rx.lock().unwrap().recv();
                let Ok((expected, ticket)) = next else {
                    return;
                };
                let results = ticket.wait();
                assert_eq!(results.len(), expected.len());
                for (r, want) in results.iter().zip(&expected) {
                    let h = *r.as_ref().expect("surviving request succeeds");
                    assert_eq!(rt.get_u64(h).unwrap(), *want);
                }
                verified.fetch_add(expected.len() as u64, Ordering::SeqCst);
            });
        }
    });

    let total = (PRODUCERS * POOL_BATCHES) as u64 * BATCH;
    let doomed = doomed_count.load(Ordering::SeqCst);
    assert_eq!(
        verified.load(Ordering::SeqCst),
        total - doomed,
        "every surviving request must be resolved exactly once"
    );
    let ran = rt.procedures_run();
    assert!(
        ran >= total - doomed && ran <= total,
        "procedures_run {ran} outside [{}, {total}]",
        total - doomed
    );
    assert!(
        rt.work_steals() > 0,
        "producer-submitted work can only run via cross-slot steals"
    );
    assert_eq!(rt.submission_watchers(), 0, "no watcher survives the run");
    assert_eq!(rt.queued_jobs(), 0, "no orphaned queued jobs survive");
}

/// A producer thread submits a batch and *exits* without driving the
/// scheduler; the main thread (a different deque slot) must then steal
/// the work out of the dead thread's slot rather than misreport an
/// "evaluation stalled" trap — the stall check has to count tokens
/// parked in *other* slots' deques, not just the claimant's own.
#[test]
fn exited_submitters_work_is_stolen_not_stalled() {
    let rt = Runtime::builder().build();
    let add = rt.register_native(
        "stress/orphan-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );

    let (tx, rx) = mpsc::channel::<(Vec<u64>, BatchTicket)>();
    std::thread::scope(|scope| {
        let rt = &rt;
        scope.spawn(move || {
            let thunks: Vec<Handle> = (0..BATCH)
                .map(|j| {
                    rt.apply(
                        limits(),
                        add,
                        &[
                            rt.put_blob(Blob::from_u64(6_000_000 + j)),
                            rt.put_blob(Blob::from_u64(7)),
                        ],
                    )
                    .unwrap()
                })
                .collect();
            let expected: Vec<u64> = (0..BATCH).map(|j| 6_000_000 + j + 7).collect();
            tx.send((expected, rt.submit_many(&thunks))).unwrap();
        });
    });
    // The producer is gone; its tokens sit in its (now orphaned) slot.
    let (expected, ticket) = rx.recv().unwrap();
    let results = ticket.wait();
    for (r, want) in results.iter().zip(&expected) {
        let h = *r.as_ref().expect("orphaned request still succeeds");
        assert_eq!(rt.get_u64(h).unwrap(), *want);
    }
    assert!(
        rt.work_steals() >= 1,
        "the waiter sits in a different slot, so progress requires steals"
    );
    assert_eq!(rt.submission_watchers(), 0);
    assert_eq!(rt.queued_jobs(), 0);
}

/// The starvation pin: with a 2-worker pool, one worker is wedged on a
/// long batch-tier job (a codelet blocked on a channel). A latency-tier
/// batch submitted from an external thread must still complete — some
/// other claimant steals it past the busy worker — and only then is the
/// wedged job released.
#[test]
fn latency_batch_overtakes_a_busy_worker_via_stealing() {
    let rt = Arc::new(Runtime::builder().workers(2).build());
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let started_tx = Mutex::new(started_tx);
    let gate_rx = Mutex::new(gate_rx);
    let blocker = rt.register_native(
        "stress/blocker",
        Arc::new(move |ctx| {
            started_tx.lock().unwrap().send(()).ok();
            // Hold the worker until the test releases it (or drops the
            // channel on a failure path — either unblocks us).
            let _ = gate_rx.lock().unwrap().recv();
            ctx.host.create_blob(0u64.to_le_bytes().to_vec())
        }),
    );
    let add = rt.register_native(
        "stress/starve-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );

    // Wedge one worker on a batch-tier job and wait until it is
    // actually executing (the main thread never drives the scheduler
    // here, so only a pool worker can have claimed it — via a steal
    // from this thread's slot).
    let blocker_thunk = rt
        .apply(limits(), blocker, &[rt.put_blob(Blob::from_u64(0))])
        .unwrap();
    let blocker_ticket = rt.submit_with(
        &[blocker_thunk],
        SubmitOptions::default().with_priority(Priority::Batch),
    );
    started_rx.recv().expect("a worker claims the blocker");

    // A latency batch submitted from a fresh thread, which exits
    // immediately: completion requires stealing past the wedged worker.
    let (tx, rx) = mpsc::channel::<(Vec<u64>, BatchTicket)>();
    std::thread::scope(|scope| {
        let rt = Arc::clone(&rt);
        scope.spawn(move || {
            let thunks: Vec<Handle> = (0..BATCH)
                .map(|j| {
                    rt.apply(
                        limits(),
                        add,
                        &[
                            rt.put_blob(Blob::from_u64(8_000_000 + j)),
                            rt.put_blob(Blob::from_u64(11)),
                        ],
                    )
                    .unwrap()
                })
                .collect();
            let expected: Vec<u64> = (0..BATCH).map(|j| 8_000_000 + j + 11).collect();
            let ticket = rt.submit_with(
                &thunks,
                SubmitOptions::default().with_priority(Priority::Latency),
            );
            tx.send((expected, ticket)).unwrap();
        });
    });
    let (expected, ticket) = rx.recv().unwrap();
    let results = ticket.wait();
    for (r, want) in results.iter().zip(&expected) {
        let h = *r
            .as_ref()
            .expect("latency request completes despite the wedge");
        assert_eq!(rt.get_u64(h).unwrap(), *want);
    }
    assert!(
        rt.work_steals() > 0,
        "nothing here runs in its submitter's slot — steals must have happened"
    );

    // Only now release the wedged worker and close its books too.
    gate_tx
        .send(())
        .expect("blocker is still parked on the gate");
    for r in blocker_ticket.wait() {
        r.expect("blocker completes once released");
    }
    assert_eq!(rt.submission_watchers(), 0);
    assert_eq!(rt.queued_jobs(), 0);
}

/// Priority inheritance: re-submitting an already-queued job at a
/// higher tier must re-token it at that tier, so the later
/// latency-class submission overtakes batch work queued ahead of it —
/// instead of inheriting the stale batch position.
#[test]
fn resubmission_at_higher_tier_jumps_the_queue() {
    let rt = Runtime::builder().build();
    let add = rt.register_native(
        "stress/tier-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );
    let mk = |a: u64| {
        rt.apply(
            limits(),
            add,
            &[
                rt.put_blob(Blob::from_u64(a)),
                rt.put_blob(Blob::from_u64(5)),
            ],
        )
        .unwrap()
    };
    let shared = mk(9_000_000);
    let filler_a = mk(9_000_001);
    let filler_b = mk(9_000_002);

    // Queue [shared, filler_a, filler_b] at batch tier, then re-submit
    // `shared` alone at latency tier. All tokens sit in this thread's
    // own slot, where dispatch is tier-major LIFO: without inheritance
    // the latency wait would first chew through both fillers (batch
    // LIFO order) before reaching `shared`.
    let batch_ticket = rt.submit_with(
        &[shared, filler_a, filler_b],
        SubmitOptions::default().with_priority(Priority::Batch),
    );
    let latency_ticket = rt.submit_with(
        &[shared],
        SubmitOptions::default().with_priority(Priority::Latency),
    );

    for r in latency_ticket.wait() {
        let h = *r.as_ref().expect("latency resubmission succeeds");
        assert_eq!(rt.get_u64(h).unwrap(), 9_000_005);
    }
    assert_eq!(
        rt.procedures_run(),
        1,
        "the re-tokened job must run before the batch fillers queued ahead of it"
    );

    // The batch ticket still resolves every slot, and the shared job
    // ran exactly once for both tickets.
    for r in batch_ticket.wait() {
        r.expect("batch slots all resolve");
    }
    assert_eq!(
        rt.procedures_run(),
        3,
        "fillers ran once each, shared never re-ran"
    );
    assert_eq!(rt.submission_watchers(), 0);
    assert_eq!(rt.queued_jobs(), 0);
}
