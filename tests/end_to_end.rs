//! Cross-crate integration tests: full Fix programs through the public
//! API, spanning the VM, runtime, storage, Flatware, and workloads.

use fix::prelude::*;
use std::sync::Arc;

/// The paper's Fig. 3 workload as sandboxed FixVM guests, end to end:
/// fib creates recursive thunks and tail-calls into add. The guest
/// sources are the shared fixtures from `fix_workloads::guests`.
#[test]
fn vm_fibonacci_with_memoized_recursion() {
    let rt = Runtime::builder().build();
    let fib = fix::workloads::guests::install_fib(&rt).expect("assemble fib");
    let add = fix::workloads::guests::install_add(&rt).expect("assemble add");

    for (n, expect) in [(0u64, 0u64), (1, 1), (2, 1), (10, 55), (20, 6765)] {
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                fib,
                &[add, rt.put_blob(Blob::from_u64(n))],
            )
            .unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), expect, "fib({n})");
    }
    // Exponential call tree, linear executions: memoization at work.
    let runs = rt
        .engine()
        .stats
        .procedures_run
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(runs < 50, "expected ~2·20 runs, got {runs}");
}

/// The if-procedure of the paper's Fig. 2: control flow via returned
/// thunks; the untaken branch is never evaluated (or even loaded).
#[test]
fn lazy_branches_run_only_when_taken() {
    let rt = Runtime::builder().build();
    let boom = rt.register_native(
        "boom",
        Arc::new(|_ctx| -> Result<Handle> { Err(Error::Trap("must never run".into())) }),
    );
    let constant = rt.register_native(
        "constant",
        Arc::new(|ctx| ctx.host.create_blob(1u64.to_le_bytes().to_vec())),
    );
    let pick = rt.register_native(
        "if",
        Arc::new(|ctx| {
            let pred = ctx.arg_blob(0)?.as_u64().unwrap_or(0) != 0;
            if pred {
                ctx.arg(1)
            } else {
                ctx.arg(2)
            }
        }),
    );
    let limits = ResourceLimits::default_limits();
    let good = rt.apply(limits, constant, &[]).unwrap();
    let bad = rt.apply(limits, boom, &[]).unwrap();

    // predicate true -> the boom branch is returned-but-lazy, never run.
    let branch = rt
        .apply(limits, pick, &[rt.put_blob(Blob::from_u64(1)), good, bad])
        .unwrap();
    let out = rt.eval(branch).unwrap();
    assert_eq!(rt.get_u64(out).unwrap(), 1);

    // predicate false -> evaluating the result does run boom.
    let branch2 = rt
        .apply(limits, pick, &[rt.put_blob(Blob::from_u64(0)), good, bad])
        .unwrap();
    let err = rt.eval(branch2).unwrap_err();
    assert!(err.to_string().contains("must never run"), "{err}");
}

/// Mixed native + VM pipeline: a VM guest's output feeds a native codelet
/// through a strict encode.
#[test]
fn vm_and_native_interoperate() {
    let rt = Runtime::builder().build();
    let vm_triple = rt
        .install_vm_module(
            r#"
            func apply args=0 locals=0
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              const 3
              mul
              blob.create_u64
              ret_handle
            end
            "#,
        )
        .unwrap();
    let native_inc = rt.register_native(
        "inc",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            ctx.host.create_blob((x + 1).to_le_bytes().to_vec())
        }),
    );
    let limits = ResourceLimits::default_limits();
    let inner = rt
        .apply(limits, vm_triple, &[rt.put_blob(Blob::from_u64(7))])
        .unwrap();
    let outer = rt
        .apply(limits, native_inc, &[inner.strict().unwrap()])
        .unwrap();
    assert_eq!(rt.get_u64(rt.eval(outer).unwrap()).unwrap(), 22);
}

/// Flatware + workloads together: compress files that were themselves
/// produced by a Fix compile job.
#[test]
fn pipeline_across_subsystems() {
    use fix::workloads::archive::extract_archive;
    use fix::workloads::compile::{compile_unit, generate_source};

    let rt = Runtime::builder().build();
    // "Compile" three units and put the object files in a filesystem.
    let mut fs = flatware::FsBuilder::new();
    for i in 0..3 {
        let obj = compile_unit(&generate_source(5, i, 2)).unwrap();
        fs.add_file(
            &format!("bucket/unit{i}.o"),
            obj.to_blob().as_slice().to_vec(),
        )
        .unwrap();
    }
    fs.add_file(
        "templates/template.html",
        fix::workloads::sebs::DYNAMIC_HTML_TEMPLATE
            .as_bytes()
            .to_vec(),
    )
    .unwrap();
    let root = fs.build(rt.store());

    let comp = fix::workloads::sebs::register_compression(&rt);
    let (code, out) = flatware::run_program(&rt, comp, &["compression", "bucket"], root).unwrap();
    assert_eq!(code, 0);
    let files = extract_archive(&Blob::from_slice(out.as_slice())).unwrap();
    assert_eq!(files.len(), 3);
    assert!(files.iter().all(|(n, _)| n.ends_with(".o")));
}

/// Garbage collection respects liveness across an evaluated program.
#[test]
fn gc_after_evaluation_keeps_results_reachable() {
    let rt = Runtime::builder().build();
    let cat = rt.register_native(
        "concat",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?;
            let b = ctx.arg_blob(1)?;
            let mut v = a.as_slice().to_vec();
            v.extend_from_slice(b.as_slice());
            ctx.host.create_blob(v)
        }),
    );
    let a = rt.put_blob(Blob::from_vec(vec![1u8; 100]));
    let b = rt.put_blob(Blob::from_vec(vec![2u8; 100]));
    let garbage = rt.put_blob(Blob::from_vec(vec![3u8; 100]));
    let thunk = rt
        .apply(ResourceLimits::default_limits(), cat, &[a, b])
        .unwrap();
    let result = rt.eval(thunk).unwrap();

    let collected = rt.gc(&[result]);
    assert!(collected > 0, "the unused blob should be collected");
    assert!(rt.get_blob(result).is_ok(), "result survives GC");
    assert!(rt.get_blob(garbage).is_err(), "garbage does not");
    assert_eq!(rt.get_blob(result).unwrap().len(), 200);
}

/// The whole public surface is Send-friendly: evaluation from multiple
/// client threads sharing one runtime.
#[test]
fn concurrent_clients_share_a_runtime() {
    let rt = Arc::new(Runtime::builder().workers(4).build());
    let square = rt.register_native(
        "square",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            ctx.host.create_blob((x * x).to_le_bytes().to_vec())
        }),
    );
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let x = t * 1000 + i;
                let thunk = rt
                    .apply(
                        ResourceLimits::default_limits(),
                        square,
                        &[rt.put_blob(Blob::from_u64(x))],
                    )
                    .unwrap();
                let out = rt.eval(thunk).unwrap();
                assert_eq!(rt.get_u64(out).unwrap(), x * x);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// The paper's §4.2.1 delegation mechanism, for real: node A packages a
/// computation as a parcel (dependencies ship with the invocation — no
/// extra round trips), node B imports, evaluates, and ships the result
/// back. Two genuinely separate runtimes; the only channel is bytes.
#[test]
fn two_real_nodes_delegate_via_parcels() {
    use fix_core::wire::Parcel;

    let register_revsort = |rt: &Runtime| {
        rt.register_native(
            "revsort",
            Arc::new(|ctx| {
                let mut data = ctx.arg_blob(0)?.as_slice().to_vec();
                data.sort_unstable();
                data.reverse();
                ctx.host.create_blob(data)
            }),
        )
    };

    // Node A: build the computation. The procedure is named by a
    // content-addressed marker, so both nodes agree on the handle.
    let node_a = Runtime::builder().build();
    let proc_a = register_revsort(&node_a);
    let input = node_a.put_blob(Blob::from_vec((0u8..200).rev().collect()));
    let thunk = node_a
        .apply(ResourceLimits::default_limits(), proc_a, &[input])
        .unwrap();

    // Ship it: one parcel carries the definition tree and every byte of
    // the minimum repository.
    let wire_bytes = node_a.store().export(thunk).unwrap().to_bytes();

    // Node B: a different machine as far as the code is concerned.
    let node_b = Runtime::builder().build();
    register_revsort(&node_b); // B has the code for this function.
    let root = node_b
        .store()
        .import(Parcel::from_bytes(&wire_bytes).unwrap());
    let result = node_b.eval(root).unwrap();

    // Ship the result back; node A reads it without ever running revsort.
    let back = node_b.store().export(result).unwrap().to_bytes();
    let result_at_a = node_a.store().import(Parcel::from_bytes(&back).unwrap());
    let blob = node_a.get_blob(result_at_a).unwrap();
    let mut expect: Vec<u8> = (0u8..200).collect();
    expect.reverse();
    assert_eq!(blob.as_slice(), expect.as_slice());
    assert_eq!(
        node_a
            .engine()
            .stats
            .procedures_run
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "node A never executed anything"
    );
}

/// Delegation of sandboxed code: the FixVM module travels inside the
/// parcel, so the remote node needs no registration at all — black-box
/// code as data (the paper's design goal 1).
#[test]
fn vm_code_travels_with_the_parcel() {
    use fix_core::wire::Parcel;

    let node_a = Runtime::builder().build();
    let module = node_a
        .install_vm_module(
            r#"
            func apply args=0 locals=0
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              const 7
              mul
              blob.create_u64
              ret_handle
            end
            "#,
        )
        .unwrap();
    let thunk = node_a
        .apply(
            ResourceLimits::default_limits(),
            module,
            &[node_a.put_blob(Blob::from_u64(6))],
        )
        .unwrap();
    let bytes = node_a.store().export(thunk).unwrap().to_bytes();

    // Node B: completely fresh — no registry entries, no modules.
    let node_b = Runtime::builder().build();
    let root = node_b.store().import(Parcel::from_bytes(&bytes).unwrap());
    let out = node_b.eval(root).unwrap();
    assert_eq!(node_b.get_u64(out).unwrap(), 42);
}
