//! Property tests for the §6 extension systems: invariants that must
//! hold for *any* workload shape, not just the hand-picked ones.

use fix::prelude::*;
use fix_attest::{Attestation, ProviderId};
use fix_billing::{bill_effort, bill_results, InvocationUsage, Money, PriceSheet};
use proptest::prelude::*;
use std::sync::Arc;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// A runtime with a keyed transform codelet: out = f(in, salt), 64-byte
/// outputs so everything is evictable.
fn transform_runtime() -> (Runtime, Handle) {
    let rt = Runtime::builder().with_provenance().build();
    let f = rt.register_native(
        "transform",
        Arc::new(|ctx| {
            let data = ctx.arg_blob(0)?;
            let salt = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
            let mut out = vec![0u8; 64];
            for (i, b) in data.as_slice().iter().enumerate() {
                out[i % 64] = out[i % 64].wrapping_add(b.wrapping_mul(salt as u8 | 1));
            }
            // Make distinct salts distinguishable.
            out[63] ^= salt as u8;
            // Never the identity — an identity stage's output *is* its
            // input (content addressing), which would make it its own
            // recipe support and legitimately unevictable.
            out[62] ^= 0x5A;
            ctx.host.create_blob(out)
        }),
    );
    (rt, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any chain of transforms survives eviction + rematerialization
    /// with byte-identical results, whichever prefix is pinned.
    #[test]
    fn eviction_roundtrip_on_random_chains(
        salts in proptest::collection::vec(any::<u64>(), 1..6),
        pin_results in any::<bool>(),
    ) {
        let (rt, f) = transform_runtime();
        let seed = rt.put_blob(Blob::from_vec(vec![0xAB; 64]));
        let mut cur = seed;
        let mut outputs = Vec::new();
        for &salt in &salts {
            let t = rt.apply(limits(), f, &[cur, rt.put_blob(Blob::from_u64(salt))]).unwrap();
            cur = rt.eval(t).unwrap();
            outputs.push(cur);
        }
        let originals: Vec<Blob> =
            outputs.iter().map(|&h| rt.get_blob(h).unwrap()).collect();

        let pins: Vec<Handle> = if pin_results { vec![cur] } else { vec![] };
        let outcome = rt.evict_recomputable(&pins).unwrap();
        let expected_victims = salts.len() - usize::from(pin_results);
        prop_assert_eq!(outcome.plan.victims.len(), expected_victims);

        // Every stage rematerializes to its original bytes.
        for (&h, original) in outputs.iter().zip(&originals) {
            rt.materialize(h).unwrap();
            prop_assert_eq!(&rt.get_blob(h).unwrap(), original);
        }
    }

    /// The eviction plan's depth bound is an upper bound on what
    /// materialize actually does.
    #[test]
    fn planned_depth_bounds_actual_cascade(chain_len in 1usize..6) {
        let (rt, f) = transform_runtime();
        let mut cur = rt.put_blob(Blob::from_vec(vec![0x11; 64]));
        for salt in 0..chain_len as u64 {
            let t = rt.apply(limits(), f, &[cur, rt.put_blob(Blob::from_u64(salt))]).unwrap();
            cur = rt.eval(t).unwrap();
        }
        let outcome = rt.evict_recomputable(&[]).unwrap();
        let planned = outcome.plan.max_depth();
        let report = rt.materialize(cur).unwrap();
        prop_assert!(report.max_depth <= planned,
            "materialized depth {} > planned {}", report.max_depth, planned);
        prop_assert_eq!(report.objects_materialized, chain_len);
    }

    /// Attestations verify exactly for the signing key and content.
    #[test]
    fn attestation_authentication(
        key in any::<[u8; 32]>(),
        other_key in any::<[u8; 32]>(),
        name in "[a-zA-Z0-9]{1,12}",
        payload in proptest::collection::vec(any::<u8>(), 31..64),
    ) {
        let blob = Blob::from_slice(&payload);
        let def = Tree::from_handles(vec![blob.handle()]);
        let thunk = def.handle().application().unwrap();
        let att = Attestation::sign(thunk, blob.handle(), ProviderId(name), &key);
        prop_assert!(att.verify(&key));
        if other_key != key {
            prop_assert!(!att.verify(&other_key));
        }
    }

    /// Pay-for-results is invariant in wall time and L3 misses, and
    /// monotone in every billed counter.
    #[test]
    fn results_billing_invariants(
        input in any::<u32>(),
        ram in any::<u32>(),
        instructions in any::<u32>(),
        l1 in any::<u32>(),
        l2 in any::<u32>(),
        wall_a in any::<u32>(),
        wall_b in any::<u32>(),
        l3_a in any::<u32>(),
        l3_b in any::<u32>(),
    ) {
        let price = PriceSheet::default();
        let mk = |wall: u32, l3: u32| InvocationUsage {
            input_bytes: input as u64,
            ram_reserved_bytes: ram as u64,
            instructions: instructions as u64,
            l1_misses: l1 as u64,
            l2_misses: l2 as u64,
            l3_misses: l3 as u64,
            wall_us: wall as u64,
            deadline_slack_us: 0,
        };
        prop_assert_eq!(
            bill_results(&mk(wall_a, l3_a), &price).total(),
            bill_results(&mk(wall_b, l3_b), &price).total()
        );
        // Monotonicity: doubling a billed counter never lowers the bill.
        let base = bill_results(&mk(0, 0), &price).total();
        let mut more = mk(0, 0);
        more.instructions = more.instructions.saturating_mul(2);
        more.l1_misses = more.l1_misses.saturating_mul(2);
        prop_assert!(bill_results(&more, &price).total() >= base);
    }

    /// Pay-for-effort is exactly linear in wall time.
    #[test]
    fn effort_billing_is_linear_in_wall_time(
        ram_gib in 1u64..64,
        wall_ms in 1u64..100_000,
    ) {
        let price = PriceSheet::default();
        let usage = InvocationUsage {
            ram_reserved_bytes: ram_gib << 30,
            wall_us: wall_ms * 1000,
            ..InvocationUsage::default()
        };
        let mut doubled = usage;
        doubled.wall_us *= 2;
        let one = bill_effort(&usage, &price).total();
        let two = bill_effort(&doubled, &price).total();
        prop_assert_eq!(two, one + one);
        prop_assert!(one > Money::ZERO);
    }
}
