//! Integration tests asserting the *shapes* of the paper's evaluation:
//! who wins, by roughly what factor, and where the crossovers fall.
//! These are the repository's executable version of EXPERIMENTS.md.

use fix::baselines::{profiles, run_baseline, CostModel};
use fix::cluster::{run_fix, Binding, ClusterSetup, FixConfig, Placement};
use fix::netsim::{NetConfig, NodeId, NodeSpec, MS};
use fix::workloads::wordcount::{fig8a_graph, fig8b_graph, Fig8aParams, Fig8bParams};

/// §1 summary table 2 / Fig. 8b: Fixpoint avoids CPU starvation.
#[test]
fn summary_table_cpu_starvation() {
    let params = Fig8bParams {
        n_shards: 150,
        ..Fig8bParams::default()
    };
    let graph = fig8b_graph(&params);
    let workers: Vec<NodeId> = (0..10).map(NodeId).collect();
    let net = NetConfig::default().with_bandwidth_bps(300_000_000);
    let setup = ClusterSetup {
        specs: vec![NodeSpec::default(); 12],
        net: net.clone(),
        workers: workers.clone(),
        client: None,
    };

    let fix = run_fix(&setup, &graph, &FixConfig::default());
    let internal = run_fix(
        &ClusterSetup {
            specs: vec![
                NodeSpec {
                    cores: 128,
                    ram_bytes: 128 << 30,
                };
                12
            ],
            net,
            workers: workers.clone(),
            client: None,
        },
        &graph,
        &FixConfig {
            placement: Placement::Random,
            binding: Binding::Early,
            ..FixConfig::default()
        },
    );
    let ow = run_baseline(
        &setup,
        &graph,
        &profiles::openwhisk(&workers, &CostModel::default()),
    );

    // Paper: Fix 3.25 s / 37% waiting; internal 33.8 s / 92%; OW 63.9 s / 92%.
    assert!(fix.makespan_us < internal.makespan_us / 3);
    assert!(fix.makespan_us < ow.makespan_us / 4);
    assert!(fix.cpu.waiting_percent() < 75.0);
    assert!(internal.cpu.waiting_percent() > 85.0);
    assert!(ow.cpu.waiting_percent() > 85.0);
}

/// Fig. 8a headline: late binding buys close to an order of magnitude.
#[test]
fn late_binding_order_of_magnitude() {
    let params = Fig8aParams::default();
    let graph = fig8a_graph(&params);
    let storage = params.storage;
    let mk = |cores| ClusterSetup {
        specs: vec![
            NodeSpec {
                cores,
                ram_bytes: 64 << 30,
            },
            NodeSpec::default(),
        ],
        net: NetConfig::default().with_extra_latency(storage, 150 * MS),
        workers: vec![NodeId(0)],
        client: None,
    };
    let fix = run_fix(&mk(32), &graph, &FixConfig::default());
    let internal = run_fix(
        &mk(200),
        &graph,
        &FixConfig {
            binding: Binding::Early,
            ..FixConfig::default()
        },
    );
    let speedup = internal.makespan_us as f64 / fix.makespan_us as f64;
    // Paper: 8.7×.
    assert!((4.0..20.0).contains(&speedup), "speedup {speedup:.1}");
    // Throughput shape: thousands vs hundreds of tasks/s.
    assert!(fix.throughput() > 2_000.0, "{}", fix.throughput());
    assert!(internal.throughput() < 1_000.0, "{}", internal.throughput());
}

/// Fig. 7b headline: chain composition costs per system.
#[test]
fn chain_composition_costs() {
    let fig = fix_bench::fig7b::run(500);
    let fix = &fig.rows[0];
    let pher = &fig.rows[1];
    let ray = &fig.rows[2];
    // Nearby: Fix single-digit ms (paper 5 ms), Pheromone tens of ms
    // (paper 17.6), Ray high hundreds (paper 821).
    assert!(fix.nearby_us < 10_000);
    assert!((5_000..60_000).contains(&pher.nearby_us));
    assert!(ray.nearby_us > 400_000);
    // Remote: Fix ≈ RTT + ε (paper 25.7 ms); Ray ≈ 500 RTTs (paper 11.7 s).
    assert!((21_000..40_000).contains(&fix.remote_us));
    assert!((8_000_000..16_000_000).contains(&ray.remote_us));
}

/// Fig. 9 headline factors at arity 2^6 (paper: blocking 22.3×, CPS 49.9×).
#[test]
fn bptree_slowdowns_at_fine_granularity() {
    let fig = fix_bench::fig9::run(4096, &[4]);
    let row = fig.model.iter().find(|r| r.log2_arity == 6).unwrap();
    let blocking = row.ray_blocking_us as f64 / row.fix_us as f64;
    let cps = row.ray_cps_us as f64 / row.fix_us as f64;
    assert!(
        (8.0..60.0).contains(&blocking),
        "blocking slowdown {blocking:.1}"
    );
    assert!(cps > blocking, "CPS must be the worst at fine granularity");
    // And the real runtime agrees structurally: one invocation per level.
    let real = &fig.real[0];
    assert_eq!(real.invocations_per_lookup, real.depth as u64);
}

/// Fig. 10 headline: Fixpoint beats Ray+MinIO beats OpenWhisk.
#[test]
fn compile_job_ordering() {
    let fig = fix_bench::fig10::run(400);
    assert!(fig.rows[0].secs < fig.rows[1].secs);
    assert!(fig.rows[1].secs < fig.rows[2].secs);
    // Fixpoint ships each source once; the baselines re-fetch headers per
    // compile, so they move far more data (the paper's visibility story).
    assert!(fig.rows[1].bytes_moved > 10 * fig.rows[0].bytes_moved.max(1));
}
