//! Integration tests for the paper-§6 extension systems: computational
//! garbage collection, pay-for-results billing, and the attested
//! compute marketplace — exercised together, across crates.

use fix::prelude::*;
use fix_attest::{Behavior, CheckPolicy, InsurancePolicy, Marketplace, Provider};
use fix_billing::{bill_effort, bill_results, meter_eval, Money, PriceSheet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// Registers a histogram + merge pipeline and evaluates it over shards,
/// returning the final (non-literal) result handle.
fn histogram_pipeline(rt: &Runtime, n_shards: usize) -> Handle {
    let histogram = rt.register_native(
        "histogram",
        Arc::new(|ctx| {
            let shard = ctx.arg_blob(0)?;
            let mut counts = [0u64; 256];
            for &b in shard.as_slice() {
                counts[b as usize] += 1;
            }
            ctx.host
                .create_blob(counts.iter().flat_map(|c| c.to_le_bytes()).collect())
        }),
    );
    let merge = rt.register_native(
        "merge-histograms",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?;
            let b = ctx.arg_blob(1)?;
            let sum: Vec<u8> = a
                .as_slice()
                .chunks_exact(8)
                .zip(b.as_slice().chunks_exact(8))
                .flat_map(|(x, y)| {
                    (u64::from_le_bytes(x.try_into().unwrap())
                        + u64::from_le_bytes(y.try_into().unwrap()))
                    .to_le_bytes()
                })
                .collect();
            ctx.host.create_blob(sum)
        }),
    );
    let shards = fix_workloads::wordcount::store_shards(rt, 7, n_shards, 16 << 10);
    let mut layer: Vec<Handle> = shards
        .iter()
        .map(|&s| {
            rt.eval(rt.apply(limits(), histogram, &[s]).unwrap())
                .unwrap()
        })
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                rt.eval(rt.apply(limits(), merge, &[pair[0], pair[1]]).unwrap())
                    .unwrap()
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

#[test]
fn evicted_pipeline_recomputes_byte_identical_results() {
    let rt = Runtime::builder().with_provenance().build();
    let total = histogram_pipeline(&rt, 8);
    let original = rt.get_blob(total).unwrap();

    let outcome = rt.evict_recomputable(&[]).unwrap();
    // 8 histograms + 7 merges, all 2 KiB.
    assert_eq!(outcome.plan.victims.len(), 15);
    assert_eq!(outcome.bytes_reclaimed, 15 * 2048);
    assert!(rt.get_blob(total).is_err(), "bytes must really be gone");

    let report = rt.materialize(total).unwrap();
    assert_eq!(report.objects_materialized, 15);
    assert_eq!(rt.get_blob(total).unwrap(), original);
}

#[test]
fn partial_eviction_with_pins_limits_recompute_cascade() {
    let rt = Runtime::builder().with_provenance().build();
    let total = histogram_pipeline(&rt, 8);

    // Pin the final result: only intermediates are evicted.
    let outcome = rt.evict_recomputable(&[total]).unwrap();
    assert_eq!(outcome.plan.victims.len(), 14);
    assert!(rt.store().contains(total));

    // Reading the pinned result costs nothing.
    let report = rt.materialize(total).unwrap();
    assert_eq!(report.objects_materialized, 0);
}

#[test]
fn eviction_is_idempotent_and_safe_to_repeat() {
    let rt = Runtime::builder().with_provenance().build();
    let total = histogram_pipeline(&rt, 4);
    let first = rt.evict_recomputable(&[]).unwrap();
    assert!(first.bytes_reclaimed > 0);
    // Nothing recomputable remains resident: a second pass is a no-op.
    let second = rt.evict_recomputable(&[]).unwrap();
    assert_eq!(second.bytes_reclaimed, 0);
    // And the data still comes back.
    rt.materialize(total).unwrap();
    assert!(rt.store().contains(total));
}

#[test]
fn billing_disagrees_across_models_for_io_bound_work() {
    // An I/O-heavy invocation (per Fig. 8a): big footprint, tiny
    // compute. Effort billing charges the occupancy; results billing
    // charges mostly the upfront data/RAM terms.
    let usage = fix_billing::InvocationUsage {
        input_bytes: 1 << 30,
        ram_reserved_bytes: 1 << 30,
        instructions: 600_000, // 100 µs of real work.
        l1_misses: 3_000,
        l2_misses: 600,
        l3_misses: 200,
        wall_us: 150_100, // Held through a 150 ms fetch.
        deadline_slack_us: 0,
    };
    let price = PriceSheet::default();
    let effort = bill_effort(&usage, &price).total();
    let results = bill_results(&usage, &price).total();

    // If the platform had fetched before binding (Fix), occupancy
    // drops to the compute time and the effort bill collapses…
    let mut fixed = usage;
    fixed.wall_us = 100;
    let effort_fixed = bill_effort(&fixed, &price).total();
    assert!(effort > effort_fixed.scaled(1000, 1));
    // …while the results bill does not move at all.
    assert_eq!(results, bill_results(&fixed, &price).total());
}

#[test]
fn metered_real_evaluation_produces_consistent_invoices() {
    let rt = Runtime::builder().build();
    let count_down = rt
        .install_vm_module(
            r#"
            func apply args=0 locals=1
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              local.set 0
            loop:
              local.get 0
              eqz
              jump_if done
              local.get 0
              const 1
              sub
              local.set 0
              jump loop
            done:
              const 0
              blob.create_u64
              ret_handle
            end
            "#,
        )
        .unwrap();
    let thunk = rt
        .apply(
            ResourceLimits::new(1 << 20, 1 << 24),
            count_down,
            &[rt.put_blob(Blob::from_u64(10_000))],
        )
        .unwrap();
    let (out, usage) = meter_eval(&rt, thunk).unwrap();
    assert_eq!(rt.get_u64(out).unwrap(), 0);
    // The loop burns fuel proportional to its trip count.
    assert!(usage.instructions >= 10_000, "fuel: {}", usage.instructions);
    let price = PriceSheet::default();
    assert!(bill_results(&usage, &price).total() > Money::ZERO);
}

#[test]
fn marketplace_settles_disputes_over_a_real_job() {
    // Providers answering a pipeline job; the cheap one lies every time.
    let customer = Runtime::builder().build();
    let square = customer
        .install_vm_module(
            r#"
            func apply args=0 locals=0
              const 64
              mem.grow
              drop
              const 0
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              dup
              mul
              mem.store64
              const 0
              const 48
              blob.create
              ret_handle
            end
            "#,
        )
        .unwrap();
    let thunk = customer
        .apply(
            limits(),
            square,
            &[customer.put_blob(Blob::from_u64(1_000_003))],
        )
        .unwrap();
    let job = customer.store().export(thunk).unwrap().to_bytes();

    let mut market = Marketplace::new(
        vec![
            Provider::new("Cheap", Money::from_micros(5), Behavior::WrongEvery(1)),
            Provider::new("Fair", Money::from_micros(40), Behavior::Honest),
            Provider::new("Dear", Money::from_micros(80), Behavior::Honest),
        ],
        InsurancePolicy::default(),
    );
    let out = market.submit(&job, CheckPolicy::Replicate(2)).unwrap();
    assert!(out.disputed);
    assert_eq!(out.claims.len(), 1);

    let got = market.fetch(&out, &customer).unwrap();
    let blob = customer.get_blob(got).unwrap();
    assert_eq!(
        u64::from_le_bytes(blob.as_slice()[..8].try_into().unwrap()),
        1_000_003u64 * 1_000_003
    );
}

#[test]
fn provenance_recording_does_not_change_results() {
    // The same pipeline with and without the ledger produces identical
    // handles (recording is pure observation).
    let plain = Runtime::builder().build();
    let traced = Runtime::builder().with_provenance().build();
    let a = histogram_pipeline(&plain, 4);
    let b = histogram_pipeline(&traced, 4);
    assert_eq!(a, b);
    assert_eq!(plain.get_blob(a).unwrap(), traced.get_blob(b).unwrap());
    assert!(traced.provenance().unwrap().len() >= 7);
    assert!(plain.provenance().is_none());
}

#[test]
fn recompute_fails_cleanly_when_procedure_is_gone() {
    // A recipe is only as good as the code it names: ship the evicted
    // store to a runtime that never registered the procedure and the
    // cold read must fail with UnknownProcedure — not hang or corrupt.
    let rt = Runtime::builder().with_provenance().build();
    let double = rt.register_native(
        "ephemeral/double",
        Arc::new(|ctx| {
            let v = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let mut out = vec![0u8; 64];
            out[..8].copy_from_slice(&(v * 2).to_le_bytes());
            ctx.host.create_blob(out)
        }),
    );
    let out = rt
        .eval(
            rt.apply(limits(), double, &[rt.put_blob(Blob::from_u64(4))])
                .unwrap(),
        )
        .unwrap();
    rt.evict_recomputable(&[]).unwrap();

    // Simulate provider restart without the codelet: re-register the
    // name with a failing stub is not possible (same handle would run);
    // instead, rebuild the runtime and import everything except the
    // procedure's implementation.
    let cold = Runtime::builder().with_provenance().build();
    for h in rt.store().inventory() {
        let node = rt.store().get(h).unwrap();
        cold.store().put(node);
    }
    // Copy the ledger's knowledge by re-recording the recipe.
    let recipe = rt.provenance().unwrap().recipe_for(out).unwrap();
    cold.provenance().unwrap().record(out, recipe);
    let err = cold.materialize(out).unwrap_err();
    assert!(
        err.to_string().contains("procedure") || err.to_string().contains("not found"),
        "unexpected error: {err}"
    );
}

#[test]
fn marketplace_tie_is_an_error_not_a_coin_flip() {
    // Two providers, both dishonest in different ways: no majority.
    let customer = Runtime::builder().build();
    let neg = customer
        .install_vm_module(
            r#"
            func apply args=0 locals=0
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              const 0
              sub
              blob.create_u64
              ret_handle
            end
            "#,
        )
        .unwrap();
    let thunk = customer
        .apply(limits(), neg, &[customer.put_blob(Blob::from_u64(3))])
        .unwrap();
    let job = customer.store().export(thunk).unwrap().to_bytes();
    let mut market = Marketplace::new(
        vec![
            Provider::new("LiarA", Money::from_micros(1), Behavior::WrongEvery(1)),
            Provider::new("LiarB", Money::from_micros(2), Behavior::WrongEvery(1)),
        ],
        InsurancePolicy::default(),
    );
    let err = market.submit(&job, CheckPolicy::Replicate(2)).unwrap_err();
    assert!(err.to_string().contains("tie"), "{err}");
}

#[test]
fn recompute_counts_procedures_not_cache_hits() {
    let rt = Runtime::builder().with_provenance().build();
    let total = histogram_pipeline(&rt, 4);
    let runs_before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
    rt.evict_recomputable(&[]).unwrap();
    rt.materialize(total).unwrap();
    let reran = rt.engine().stats.procedures_run.load(Ordering::Relaxed) - runs_before;
    // 4 histograms + 3 merges re-ran; nothing else.
    assert_eq!(reran, 7);
}
