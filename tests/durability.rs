//! Durable-runtime integration: the persistence tier through the full
//! `fixpoint::Runtime` stack — gc routing, eviction vs. the log, and
//! memoized work surviving a restart with zero recomputation.

use fix::durable::{DurableOptions, DurableStore, FsyncPolicy};
use fix::prelude::*;
use std::sync::Arc;

fn options() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        ..DurableOptions::default()
    }
}

fn register_double(rt: &Runtime) -> Handle {
    rt.register_native(
        "durability/double",
        Arc::new(|ctx| {
            let x = ctx.arg_blob(0)?.as_u64().unwrap();
            // A result comfortably past the literal bound, so it is
            // stored (and must be persisted) for real.
            let mut out = (2 * x).to_le_bytes().to_vec();
            out.resize(64, 0xD0);
            ctx.host.create_blob(out)
        }),
    )
}

#[test]
fn memoized_work_survives_a_restart_through_the_runtime() {
    let dir = tempfile::tempdir().unwrap();
    let result_cold;
    {
        let durable = DurableStore::open(dir.path(), options()).unwrap();
        let rt = Runtime::builder().durable(durable).build();
        let double = register_double(&rt);
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                double,
                &[rt.put_blob(Blob::from_u64(21))],
            )
            .unwrap();
        result_cold = rt.eval(thunk).unwrap();
        assert_eq!(rt.procedures_run(), 1);
        rt.durable().unwrap().flush().unwrap();
    }
    // Restart: same request, zero procedures, bit-identical result,
    // bytes faulted from disk on first read.
    let durable = DurableStore::open(dir.path(), options()).unwrap();
    let rt = Runtime::builder().durable(durable).build();
    let double = register_double(&rt);
    let thunk = rt
        .apply(
            ResourceLimits::default_limits(),
            double,
            &[rt.put_blob(Blob::from_u64(21))],
        )
        .unwrap();
    let result_warm = rt.eval(thunk).unwrap();
    assert_eq!(result_warm, result_cold);
    assert_eq!(rt.procedures_run(), 0, "replayed, not recomputed");
    let blob = rt.get_blob(result_warm).unwrap();
    assert_eq!(&blob.as_slice()[..8], &42u64.to_le_bytes());
    assert!(rt.durable().unwrap().stats().faults >= 1);
}

#[test]
fn runtime_gc_routes_through_the_durable_index() {
    let dir = tempfile::tempdir().unwrap();
    let durable = DurableStore::open(dir.path(), options()).unwrap();
    let rt = Runtime::builder().durable(durable).build();
    let live = rt.put_blob(Blob::from_vec(vec![1u8; 80]));
    let dead = rt.put_blob(Blob::from_vec(vec![2u8; 80]));
    rt.durable().unwrap().flush().unwrap();

    let collected = rt.gc(&[live]);
    assert!(collected >= 1);
    assert!(rt.get_blob(live).is_ok());
    // Without index routing, the collected object would silently refault
    // from the log with stale bytes. Through Runtime::gc it stays dead.
    assert!(rt.get_blob(dead).is_err(), "no resurrection from the log");
    assert!(!rt.contains(dead));
}

#[test]
fn eviction_round_trips_keep_total_bytes_consistent_through_the_runtime() {
    let dir = tempfile::tempdir().unwrap();
    let durable = DurableStore::open(dir.path(), options()).unwrap();
    let rt = Runtime::builder().durable(durable).build();
    let handles: Vec<Handle> = (0u8..5)
        .map(|i| rt.put_blob(Blob::from_vec(vec![i; 200])))
        .collect();
    rt.durable().unwrap().flush().unwrap();
    let store = rt.durable().unwrap().store().clone();
    assert_eq!(store.total_bytes(), 1000);

    // Evict persisted objects (the spill path), then read everything
    // back: each read refaults from the log and the byte accounting
    // returns to exactly where it started.
    for h in &handles[..3] {
        assert_eq!(store.evict(*h), Some(200));
    }
    assert_eq!(store.total_bytes(), 400);
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(rt.get_blob(*h).unwrap().as_slice(), &[i as u8; 200][..]);
    }
    assert_eq!(store.total_bytes(), 1000, "evict → refault is byte-neutral");
    assert_eq!(store.object_count(), 5);
}
