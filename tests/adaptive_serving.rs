//! Backend-conformance suite for the adaptive control plane.
//!
//! One hostile scenario — flash-crowd open-loop tenant, closed-loop
//! client population, SNF streaming pipeline, admission pricing on, the
//! autoscaler live — run through `fix_adapt::adaptive_serve` on every
//! submission-capable backend of the One Fix API (the same roster as
//! `api_conformance.rs`): the single-node runtime inline and with
//! 2- and 4-worker pools, and the `BlockingOffload` lift of the plain
//! blocking backends (runtime, cluster client, and the OpenWhisk-profile
//! baseline evaluator).
//!
//! Two properties, on every backend:
//!
//! * **accounting closure** — per tenant,
//!   `offered = admitted + dropped + rejected` and
//!   `admitted = ok + errors + expired + cancelled`: every arrival is
//!   accounted for exactly once, including the work the controller
//!   priced out;
//! * **bit-identical tables** — the full rendered report (rejection
//!   column and scaling timeline included) agrees across all backends,
//!   because every control-plane decision runs on the virtual clock and
//!   every thunk is content-addressed.

use fix::prelude::*;
use fix_adapt::{
    adaptive_serve, AdaptConfig, AdaptTenant, AdmissionPolicy, ClosedLoopSpec, ScalerConfig,
    SnfSpec,
};
use fix_serve::{ArrivalProcess, RequestKind, ServeReport, SloClass, TenantSpec};
use std::sync::Arc;

/// The engine's hostile shape, scaled for a cross-backend suite: the
/// crowd spikes 10x for 40 ms mid-run, the portal population keeps its
/// own feedback loop, and the SNF pipeline must come through unshed.
fn hostile_cfg() -> AdaptConfig {
    AdaptConfig {
        seed: 2026,
        duration_us: 150_000,
        batch: 8,
        queue_capacity: 128,
        batch_overhead_us: 5,
        inflight: 2,
        admission: Some(AdmissionPolicy::default()),
        scaler: ScalerConfig {
            min_drivers: 2,
            max_drivers: 6,
            control_interval_us: 2_000,
            up_backlog_us: 400,
            down_backlog_us: 60,
            hold_ticks: 2,
        },
        tenants: vec![
            AdaptTenant::Open(
                TenantSpec::uniform_mix(
                    "crowd",
                    1,
                    ArrivalProcess::FlashCrowd {
                        base_rps: 2_000.0,
                        spike_at_us: 40_000,
                        spike_len_us: 40_000,
                        spike_rps: 20_000.0,
                    },
                    RequestKind::Fib { max_n: 256 },
                )
                .with_slo(SloClass::latency(3_000)),
            ),
            AdaptTenant::Closed(ClosedLoopSpec {
                name: "portal".into(),
                weight: 1,
                clients: 8,
                think_mean_us: 2_000.0,
                mix: vec![(RequestKind::SebsHtml { users: 4 }, 1)],
                slo: SloClass::latency(8_000),
            }),
            AdaptTenant::Snf(SnfSpec {
                name: "snf".into(),
                weight: 1,
                flows: 4,
                batch_period_us: 2_000,
                slo: SloClass::default(),
            }),
        ],
    }
}

fn run_on<A: SubmitApi + InvocationApi + Send + Sync>(rt: &A) -> ServeReport {
    adaptive_serve(rt, &hostile_cfg())
        .expect("adaptive run")
        .serve
}

#[test]
fn accounting_closes_identically_on_every_submitting_backend() {
    let off_rt = BlockingOffload::with_threads(Arc::new(Runtime::builder().build()), 4);
    let off_cc = BlockingOffload::with_threads(
        Arc::new(ClusterClient::builder().build().expect("cluster client")),
        4,
    );
    let off_bl = BlockingOffload::with_threads(
        Arc::new(
            fix_baselines::BaselineEvaluator::builder()
                .profile(fix_baselines::profiles::openwhisk(
                    &(0..4).map(fix_netsim::NodeId).collect::<Vec<_>>(),
                    &fix_baselines::CostModel::default(),
                ))
                .build()
                .expect("baseline evaluator"),
        ),
        4,
    );
    let reports: Vec<(&str, ServeReport)> = vec![
        ("Runtime", run_on(&Runtime::builder().build())),
        (
            "Runtime(workers=2)",
            run_on(&Runtime::builder().workers(2).build()),
        ),
        (
            "Runtime(workers=4)",
            run_on(&Runtime::builder().workers(4).build()),
        ),
        ("BlockingOffload<Runtime>", run_on(&off_rt)),
        ("BlockingOffload<ClusterClient>", run_on(&off_cc)),
        ("BlockingOffload<BaselineEvaluator>", run_on(&off_bl)),
    ];

    for (name, report) in &reports {
        // Closure: every arrival lands in exactly one disposition
        // column, and every admitted request resolves exactly once.
        for t in &report.tenants {
            assert_eq!(
                t.offered,
                t.admitted + t.dropped + t.rejected,
                "{name}: tenant '{}' leaks arrivals",
                t.name
            );
            assert_eq!(
                t.admitted,
                t.ok + t.errors + t.expired + t.cancelled,
                "{name}: tenant '{}' leaks admitted requests",
                t.name
            );
            assert_eq!(t.errors, 0, "{name}: '{}' minted an invalid thunk", t.name);
        }
        // The scenario really exercised the controller on this backend.
        assert!(report.total_rejected() > 0, "{name}: no rejections");
        assert!(
            report.scaling.iter().any(|s| s.to > s.from)
                && report.scaling.iter().any(|s| s.to < s.from),
            "{name}: trivial scaling timeline"
        );
        let snf = &report.tenants[2];
        assert_eq!(snf.offered, snf.ok, "{name}: the SNF pipeline was shed");
    }

    // Cross-backend identity: one rendered report, six backends.
    let (first_name, first) = &reports[0];
    for (name, report) in &reports[1..] {
        assert_eq!(
            first.to_string(),
            report.to_string(),
            "backend '{name}' renders a different table than '{first_name}'"
        );
    }
}
