//! Backend-conformance suite for the One Fix API.
//!
//! One set of semantics assertions — memoization, determinism, laziness,
//! error equivalence, batching — written once against the
//! `fix_core::api` traits and executed against every backend: the
//! single-node `fixpoint::Runtime` and the netsim-backed
//! `fix_cluster::ClusterClient`. Because handles are content addressed,
//! conforming backends must agree *bit for bit*, so each check also
//! returns its result handles and the harness compares them across
//! backends.

use fix::prelude::*;
use fix_cluster::ClusterClient;
use fix_workloads::guests;
use std::sync::Arc;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// Runs `check` on every backend and asserts the returned handles are
/// identical across them.
fn on_every_backend<F>(check: F)
where
    F: Fn(&dyn BackendUnderTest) -> Vec<Handle>,
{
    let runtime = Runtime::builder().build();
    let cluster = ClusterClient::builder().build().expect("cluster client");
    let backends: Vec<(&str, &dyn BackendUnderTest)> =
        vec![("Runtime", &runtime), ("ClusterClient", &cluster)];
    let mut results: Vec<(&str, Vec<Handle>)> = Vec::new();
    for (name, backend) in backends {
        results.push((name, check(backend)));
    }
    let (first_name, first) = &results[0];
    for (name, handles) in &results[1..] {
        assert_eq!(
            first, handles,
            "backend '{name}' disagrees with '{first_name}'"
        );
    }
}

/// The object-safe face of the trait family, so one closure can drive
/// heterogeneous backends. (Generic user code uses the traits directly;
/// this erasure is a harness convenience only.)
trait BackendUnderTest: ObjectApi + InvocationApi + Evaluator {}
impl<T: ObjectApi + InvocationApi + Evaluator> BackendUnderTest for T {}

/// The submission-capable face: every backend that implements the full
/// One Fix API *including* `SubmitApi` — natively (`Runtime`, with and
/// without a worker pool) or through the `BlockingOffload` adapter
/// (which is how the plain blocking backends stay conformant).
trait SubmittingBackend: BackendUnderTest + SubmitApi {}
impl<T: BackendUnderTest + SubmitApi> SubmittingBackend for T {}

/// Runs `check` on every submission-capable backend and asserts the
/// returned handles are identical across them.
fn on_every_submitting_backend<F>(check: F)
where
    F: Fn(&dyn SubmittingBackend) -> Vec<Handle>,
{
    let inline = Runtime::builder().build();
    let pooled = Runtime::builder().workers(2).build();
    // A wider pool than cores on most CI boxes: exercises the sharded
    // job map and cross-deque stealing under genuine oversubscription.
    let pooled4 = Runtime::builder().workers(4).build();
    let off_rt = BlockingOffload::new(Runtime::builder().build());
    let off_cc = BlockingOffload::new(ClusterClient::builder().build().expect("cluster client"));
    let off_bl = BlockingOffload::new(
        fix_baselines::BaselineEvaluator::builder()
            .profile(fix_baselines::profiles::openwhisk(
                &(0..4).map(fix_netsim::NodeId).collect::<Vec<_>>(),
                &fix_baselines::CostModel::default(),
            ))
            .build()
            .expect("baseline evaluator"),
    );
    let backends: Vec<(&str, &dyn SubmittingBackend)> = vec![
        ("Runtime", &inline),
        ("Runtime(workers=2)", &pooled),
        ("Runtime(workers=4)", &pooled4),
        ("BlockingOffload<Runtime>", &off_rt),
        ("BlockingOffload<ClusterClient>", &off_cc),
        ("BlockingOffload<BaselineEvaluator>", &off_bl),
    ];
    let mut results: Vec<(&str, Vec<Handle>)> = Vec::new();
    for (name, backend) in backends {
        results.push((name, check(backend)));
    }
    let (first_name, first) = &results[0];
    for (name, handles) in &results[1..] {
        assert_eq!(
            first, handles,
            "backend '{name}' disagrees with '{first_name}'"
        );
    }
}

fn register_add(rt: &dyn BackendUnderTest) -> Handle {
    rt.register_native(
        "conf/add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    )
}

#[test]
fn arithmetic_and_data_round_trips_agree() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let a = rt.put_blob(Blob::from_u64(30));
        let b = rt.put_blob(Blob::from_u64(12));
        let thunk = rt.apply(limits(), add, &[a, b]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 42);
        assert!(rt.contains(out));
        // Tree round trip through the trait surface.
        let tree = rt.put_tree(Tree::from_handles(vec![a, out]));
        assert_eq!(rt.get_tree(tree).unwrap().entries(), &[a, out]);
        vec![add, thunk, out, tree]
    });
}

#[test]
fn memoization_runs_each_procedure_once() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let thunk = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(1)),
                    rt.put_blob(Blob::from_u64(2)),
                ],
            )
            .unwrap();
        let first = rt.eval(thunk).unwrap();
        let runs = rt.procedures_run();
        assert_eq!(runs, 1, "one apply, one execution");
        let second = rt.eval(thunk).unwrap();
        assert_eq!(first, second, "evaluation must be deterministic");
        assert_eq!(
            rt.procedures_run(),
            runs,
            "the repeat request must be a pure cache hit"
        );
        vec![first]
    });
}

#[test]
fn laziness_skips_untaken_branches() {
    on_every_backend(|rt| {
        let boom = rt.register_native(
            "conf/boom",
            Arc::new(|_ctx| -> Result<Handle> { Err(Error::Trap("must never run".into())) }),
        );
        let constant = rt.register_native(
            "conf/one",
            Arc::new(|ctx| ctx.host.create_blob(1u64.to_le_bytes().to_vec())),
        );
        let pick = rt.register_native(
            "conf/if",
            Arc::new(|ctx| {
                let pred = ctx.arg_blob(0)?.as_u64().unwrap_or(0) != 0;
                if pred {
                    ctx.arg(1)
                } else {
                    ctx.arg(2)
                }
            }),
        );
        let good = rt.apply(limits(), constant, &[]).unwrap();
        let bad = rt.apply(limits(), boom, &[]).unwrap();
        let branch = rt
            .apply(limits(), pick, &[rt.put_blob(Blob::from_u64(1)), good, bad])
            .unwrap();
        let out = rt.eval(branch).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 1);
        vec![out]
    });
}

#[test]
fn errors_are_equivalent_across_backends() {
    on_every_backend(|rt| {
        // Unknown procedure.
        let junk = rt.put_blob(Blob::from_vec(vec![0xAB; 64]));
        let thunk = rt.apply(limits(), junk, &[]).unwrap();
        assert!(matches!(
            rt.eval(thunk),
            Err(Error::UnknownProcedure(h)) if h == junk
        ));

        // Out-of-bounds selection, with identical coordinates reported.
        let tree = rt.put_tree(Tree::from_handles(vec![junk]));
        let sel = rt.select(tree, 5).unwrap();
        match rt.eval(sel) {
            Err(Error::BadSelection {
                begin, end, len, ..
            }) => {
                assert_eq!((begin, end, len), (5, 6, 1));
            }
            other => panic!("expected BadSelection, got {other:?}"),
        }

        // Guest faults propagate as Traps with the guest's message.
        let boom = rt.register_native(
            "conf/boom2",
            Arc::new(|_ctx| -> Result<Handle> { Err(Error::Trap("boom".into())) }),
        );
        let bad = rt.apply(limits(), boom, &[]).unwrap();
        assert!(matches!(rt.eval(bad), Err(Error::Trap(m)) if m == "boom"));
        vec![thunk, sel, bad]
    });
}

#[test]
fn eval_many_matches_a_loop_of_evals() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let thunks: Vec<Handle> = (0..16u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(100)),
                    ],
                )
                .unwrap()
            })
            .collect();
        // Mix in an already-evaluated value and (after the batch) verify
        // positional correspondence.
        let mut batch = thunks.clone();
        batch.push(rt.put_blob(Blob::from_u64(7)));
        let many: Vec<Handle> = rt
            .eval_many(&batch)
            .into_iter()
            .map(|r| r.expect("batch member succeeds"))
            .collect();
        let looped: Vec<Handle> = batch.iter().map(|&h| rt.eval(h).unwrap()).collect();
        assert_eq!(many, looped, "batched and single dispatch must agree");
        for (i, h) in many[..16].iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), i as u64 + 100);
        }
        assert_eq!(rt.get_u64(many[16]).unwrap(), 7);
        many
    });
}

#[test]
fn eval_many_reports_per_request_failures() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let good = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(1)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap();
        let junk = rt.put_blob(Blob::from_vec(vec![0xCD; 40]));
        let bad = rt.apply(limits(), junk, &[]).unwrap();
        let results = rt.eval_many(&[good, bad]);
        let ok = results[0].as_ref().expect("good request succeeds");
        assert_eq!(rt.get_u64(*ok).unwrap(), 2);
        assert!(
            matches!(results[1], Err(Error::UnknownProcedure(_))),
            "bad request fails alone: {:?}",
            results[1]
        );
        vec![*ok]
    });
}

#[test]
fn eval_many_mixed_outcomes_stay_positional() {
    // One batch holding every outcome class — ok, guest trap, and a
    // not-found dangling reference — must return per-slot results in
    // submission order, with no cross-contamination: the failures of
    // slots 1 and 2 must not disturb slots 0 and 3.
    on_every_backend(|rt| {
        let add = register_add(rt);
        let ok = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(20)),
                    rt.put_blob(Blob::from_u64(22)),
                ],
            )
            .unwrap();
        let boom = rt.register_native(
            "conf/mixed-boom",
            Arc::new(|_ctx| -> Result<Handle> { Err(Error::Trap("mixed".into())) }),
        );
        let trap = rt.apply(limits(), boom, &[]).unwrap();
        // A selection whose target tree was never stored: the handle is
        // valid (content addressed) but the object is absent.
        let missing = Tree::from_handles(vec![rt.put_blob(Blob::from_u64(9))]).handle();
        let not_found = rt.select(missing, 0).unwrap();
        let tail_ok = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(2)),
                    rt.put_blob(Blob::from_u64(3)),
                ],
            )
            .unwrap();

        let results = rt.eval_many(&[ok, trap, not_found, tail_ok]);
        assert_eq!(results.len(), 4);
        let first = *results[0].as_ref().expect("slot 0 succeeds");
        assert_eq!(rt.get_u64(first).unwrap(), 42);
        assert!(
            matches!(&results[1], Err(Error::Trap(m)) if m == "mixed"),
            "slot 1 must trap: {:?}",
            results[1]
        );
        assert!(
            matches!(results[2], Err(Error::NotFound(h)) if h == missing),
            "slot 2 must be not-found: {:?}",
            results[2]
        );
        let last = *results[3].as_ref().expect("slot 3 succeeds");
        assert_eq!(rt.get_u64(last).unwrap(), 5);
        // The failures must also match a loop of single evals.
        assert!(matches!(rt.eval(trap), Err(Error::Trap(_))));
        assert!(matches!(rt.eval(not_found), Err(Error::NotFound(_))));
        vec![first, last]
    });
}

#[test]
fn sandboxed_guests_agree() {
    on_every_backend(|rt| {
        let fib = guests::install_fib(&rt).unwrap();
        let add = guests::install_add(&rt).unwrap();
        let thunk = rt
            .apply(limits(), fib, &[add, rt.put_blob(Blob::from_u64(12))])
            .unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 144);
        vec![fib, add, out]
    });
}

#[test]
fn strict_evaluation_deep_forces() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let inner = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(2)),
                    rt.put_blob(Blob::from_u64(3)),
                ],
            )
            .unwrap();
        let wrap = rt.register_native(
            "conf/wrap",
            Arc::new(move |ctx| ctx.host.create_tree(vec![inner])),
        );
        let outer = rt.apply(limits(), wrap, &[]).unwrap();
        let forced = rt.eval_strict(outer).unwrap();
        let tree = rt.get_tree(forced).unwrap();
        let entry = tree.get(0).unwrap();
        assert!(entry.is_accessible(), "strict eval promotes everything");
        assert_eq!(rt.get_u64(entry).unwrap(), 5);
        vec![forced, entry]
    });
}

#[test]
fn footprints_agree() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let big = rt.put_blob(Blob::from_vec(vec![9u8; 4096]));
        let thunk = rt
            .apply(limits(), add, &[big, rt.put_blob(Blob::from_u64(1))])
            .unwrap();
        let fp = rt.footprint(thunk).unwrap();
        assert!(fp.is_complete());
        assert!(fp.objects.contains(&big));
        assert!(fp.total_bytes >= 4096);
        // The footprint's object list is part of the shared semantics.
        let mut objs = fp.objects.clone();
        objs.sort_by_key(|h| *h.raw());
        objs
    });
}

/// Batch footprints dedup across requests: data shared by two thunks is
/// listed (and counted) once, and the batch equals the merged singles.
#[test]
fn batch_footprints_dedup_shared_data() {
    on_every_backend(|rt| {
        let add = register_add(rt);
        let shared = rt.put_blob(Blob::from_vec(vec![3u8; 2048]));
        let a = rt
            .apply(limits(), add, &[shared, rt.put_blob(Blob::from_u64(1))])
            .unwrap();
        let b = rt
            .apply(limits(), add, &[shared, rt.put_blob(Blob::from_u64(2))])
            .unwrap();
        let batch = rt.footprint_many(&[a, b]).unwrap();
        assert!(batch.is_complete());
        assert_eq!(
            batch.objects.iter().filter(|h| **h == shared).count(),
            1,
            "shared data must appear once in the batch footprint"
        );
        // Batch == merged singles (order-insensitively).
        let mut merged = rt.footprint(a).unwrap();
        merged.merge(&rt.footprint(b).unwrap());
        assert_eq!(batch.total_bytes, merged.total_bytes);
        let sorted = |mut v: Vec<Handle>| {
            v.sort_by_key(|h| *h.raw());
            v
        };
        let batch_objs = sorted(batch.objects.clone());
        assert_eq!(batch_objs, sorted(merged.objects));
        // Sub-additive: strictly less than the sum of the parts.
        let (fa, fb) = (rt.footprint(a).unwrap(), rt.footprint(b).unwrap());
        assert!(batch.total_bytes < fa.total_bytes + fb.total_bytes);
        assert!(batch.objects.len() < fa.objects.len() + fb.objects.len());
        batch_objs
    });
}

/// The whole real map-reduce workload, generically, with identical
/// counts — the "a workload written once becomes a benchmark row for
/// every backend" property.
#[test]
fn wordcount_workload_agrees() {
    use fix_workloads::wordcount::{run_wordcount_fix, store_shards};
    on_every_backend(|rt| {
        let shards = store_shards(&rt, 11, 8, 16 << 10);
        let total = run_wordcount_fix(&rt, &shards, b"of").unwrap();
        assert!(total > 0);
        vec![rt.put_blob(Blob::from_u64(total))]
    });
}

// ----------------------------------------------------------------------
// Submission-first conformance (SubmitApi).
// ----------------------------------------------------------------------

/// `submit_many(h).wait()` must agree positionally with `eval_many(h)`
/// (and thus with a loop of single `eval`s), including value handles
/// that never touch a scheduler.
#[test]
fn submission_agrees_with_eval_many() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let mut batch: Vec<Handle> = (0..16u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(200)),
                    ],
                )
                .unwrap()
            })
            .collect();
        batch.push(rt.put_blob(Blob::from_u64(9))); // A ready value slot.
        let ticket = rt.submit_many(&batch);
        assert_eq!(ticket.len(), batch.len());
        let submitted: Vec<Handle> = rt
            .wait_batch(ticket)
            .into_iter()
            .map(|r| r.expect("batch member succeeds"))
            .collect();
        let blocked: Vec<Handle> = rt
            .eval_many(&batch)
            .into_iter()
            .map(|r| r.expect("batch member succeeds"))
            .collect();
        assert_eq!(submitted, blocked, "submission must agree with blocking");
        for (i, h) in submitted[..16].iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), i as u64 + 200);
        }
        assert_eq!(rt.get_u64(submitted[16]).unwrap(), 9);
        submitted
    });
}

/// A submitted batch holding every outcome class — ok, guest trap, and
/// a not-found dangling reference — resolves positionally, with no
/// cross-contamination between slots.
#[test]
fn submission_mixed_outcomes_stay_positional() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let ok = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(20)),
                    rt.put_blob(Blob::from_u64(22)),
                ],
            )
            .unwrap();
        let boom = rt.register_native(
            "conf/submit-boom",
            Arc::new(|_ctx| -> Result<Handle> { Err(Error::Trap("submitted".into())) }),
        );
        let trap = rt.apply(limits(), boom, &[]).unwrap();
        let missing = Tree::from_handles(vec![rt.put_blob(Blob::from_u64(3))]).handle();
        let not_found = rt.select(missing, 0).unwrap();
        let tail_ok = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(4)),
                    rt.put_blob(Blob::from_u64(5)),
                ],
            )
            .unwrap();

        let results = rt.wait_batch(rt.submit_many(&[ok, trap, not_found, tail_ok]));
        assert_eq!(results.len(), 4);
        let first = *results[0].as_ref().expect("slot 0 succeeds");
        assert_eq!(rt.get_u64(first).unwrap(), 42);
        assert!(
            matches!(&results[1], Err(Error::Trap(m)) if m == "submitted"),
            "slot 1 must trap: {:?}",
            results[1]
        );
        assert!(
            matches!(results[2], Err(Error::NotFound(h)) if h == missing),
            "slot 2 must be not-found: {:?}",
            results[2]
        );
        let last = *results[3].as_ref().expect("slot 3 succeeds");
        assert_eq!(rt.get_u64(last).unwrap(), 9);
        vec![first, last]
    });
}

/// Dropping a ticket mid-flight must neither hang the backend nor leak:
/// later requests (including re-submissions of the *same* thunks) run
/// to completion as if the dropped ticket never existed.
#[test]
fn dropped_ticket_neither_hangs_nor_leaks() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let batch: Vec<Handle> = (0..8u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(50)),
                    ],
                )
                .unwrap()
            })
            .collect();
        drop(rt.submit_many(&batch)); // Abandoned mid-flight.
        drop(rt.submit(batch[0])); // Single tickets detach too.

        // The backend still serves unrelated work...
        let other = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(1)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap();
        assert_eq!(rt.get_u64(rt.eval(other).unwrap()).unwrap(), 2);

        // ...and re-submitting the abandoned thunks resolves them fully.
        let results: Vec<Handle> = rt
            .wait_batch(rt.submit_many(&batch))
            .into_iter()
            .map(|r| r.expect("resubmitted member succeeds"))
            .collect();
        for (i, h) in results.iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), i as u64 + 50);
        }
        results
    });
}

/// `wait_any` resolves a set of overlapped batches completely, in
/// whatever order they finish, and then reports exhaustion.
#[test]
fn wait_any_drains_overlapped_batches() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let mint = |base: u64| -> Vec<Handle> {
            (0..4u64)
                .map(|i| {
                    rt.apply(
                        limits(),
                        add,
                        &[
                            rt.put_blob(Blob::from_u64(base + i)),
                            rt.put_blob(Blob::from_u64(7)),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        };
        let bases = [0u64, 1000, 2000];
        let mut tickets: Vec<BatchTicket> =
            bases.iter().map(|&b| rt.submit_many(&mint(b))).collect();
        let mut resolved: Vec<Option<Vec<Handle>>> = vec![None; bases.len()];
        while let Some(i) = rt.wait_any(&mut tickets) {
            let results = tickets[i]
                .take_results()
                .expect("wait_any returned a completed, unclaimed ticket");
            assert!(resolved[i].is_none(), "each batch resolves exactly once");
            resolved[i] = Some(
                results
                    .into_iter()
                    .map(|r| r.expect("batch member succeeds"))
                    .collect(),
            );
        }
        let mut out = Vec::new();
        for (slot, base) in resolved.iter().zip(bases) {
            let handles = slot.as_ref().expect("every batch resolved");
            for (i, h) in handles.iter().enumerate() {
                assert_eq!(rt.get_u64(*h).unwrap(), base + i as u64 + 7);
            }
            out.extend_from_slice(handles);
        }
        out
    });
}

/// Strict submitted batches must agree positionally with a loop of
/// `eval_strict` — the whole eval→force chain watched as one slot, on
/// every submitting backend (including value handles, whose nested
/// thunks strictness must still force).
#[test]
fn strict_submission_agrees_with_eval_strict() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let inner = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(2)),
                    rt.put_blob(Blob::from_u64(3)),
                ],
            )
            .unwrap();
        let wrap = rt.register_native(
            "conf/strict-wrap",
            Arc::new(move |ctx| ctx.host.create_tree(vec![inner])),
        );
        // A thunk whose WHNF still hides a nested thunk, a plain value
        // tree holding a thunk, and an ordinary flat computation.
        let nested = rt.apply(limits(), wrap, &[]).unwrap();
        let value_tree = rt.put_tree(Tree::from_handles(vec![inner]));
        let flat = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(40)),
                    rt.put_blob(Blob::from_u64(2)),
                ],
            )
            .unwrap();
        let batch = [nested, value_tree, flat];

        let submitted: Vec<Handle> = rt
            .wait_batch(rt.submit_with(&batch, SubmitOptions::strict()))
            .into_iter()
            .map(|r| r.expect("strict batch member succeeds"))
            .collect();
        let strict_loop: Vec<Handle> = batch.iter().map(|&h| rt.eval_strict(h).unwrap()).collect();
        assert_eq!(
            submitted, strict_loop,
            "strict submission must agree with eval_strict"
        );
        // Deep-forcing really happened: the nested entry is accessible.
        let tree = rt.get_tree(submitted[0]).unwrap();
        let entry = tree.get(0).unwrap();
        assert!(entry.is_accessible(), "strict submission deep-forces");
        assert_eq!(rt.get_u64(entry).unwrap(), 5);
        submitted
    });
}

/// Cancel before execution: a batch cancelled on a backend that has not
/// started it runs nothing, and the same thunks resubmit cleanly.
#[test]
fn cancel_before_execution_withdraws_cleanly() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let batch: Vec<Handle> = (0..8u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(70)),
                    ],
                )
                .unwrap()
            })
            .collect();
        rt.submit_many(&batch).cancel();

        // The backend still serves unrelated work, and the cancelled
        // thunks resubmit and resolve as if the cancel never happened.
        let results: Vec<Handle> = rt
            .wait_batch(rt.submit_many(&batch))
            .into_iter()
            .map(|r| r.expect("resubmitted member succeeds"))
            .collect();
        for (i, h) in results.iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), i as u64 + 70);
        }
        results
    });
}

/// Cancel while executing: cancelling mid-flight must hang nothing —
/// a concurrent waiter on a *different* ticket sharing the backend
/// still resolves, and the backend stays serviceable.
#[test]
fn cancel_while_executing_never_hangs_a_concurrent_waiter() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let mint = |base: u64, n: u64| -> Vec<Handle> {
            (0..n)
                .map(|i| {
                    rt.apply(
                        limits(),
                        add,
                        &[
                            rt.put_blob(Blob::from_u64(base + i)),
                            rt.put_blob(Blob::from_u64(5)),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        };
        let doomed = rt.submit_many(&mint(10_000, 32));
        let survivor_batch = mint(20_000, 8);
        let survivor = rt.submit_many(&survivor_batch);
        doomed.cancel(); // Possibly before, possibly mid-execution.
        let results: Vec<Handle> = rt
            .wait_batch(survivor)
            .into_iter()
            .map(|r| r.expect("survivor member succeeds"))
            .collect();
        for (i, h) in results.iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), 20_000 + i as u64 + 5);
        }
        results
    });
}

/// Cancel after completion: a ticket whose batch already resolved can
/// still be cancelled (the results are simply discarded), and the
/// memoized results remain available to everyone else.
#[test]
fn cancel_after_completion_discards_results_only() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let batch: Vec<Handle> = (0..4u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(30)),
                    ],
                )
                .unwrap()
            })
            .collect();
        // Resolve the batch fully (wait_any drives backends whose
        // progress comes from the waiting thread), then cancel.
        let mut tickets = vec![rt.submit_many(&batch)];
        assert_eq!(rt.wait_any(&mut tickets), Some(0));
        let ticket = tickets.pop().expect("one ticket");
        ticket.cancel(); // After completion: a no-op beyond discarding.

        // Everything is memoized; a fresh request is a pure cache hit.
        let before = rt.procedures_run();
        let results: Vec<Handle> = rt
            .eval_many(&batch)
            .into_iter()
            .map(|r| r.expect("memoized member succeeds"))
            .collect();
        assert_eq!(rt.procedures_run(), before, "no re-execution");
        results
    });
}

/// Deadline-expiry batches: once the backend's virtual clock passes a
/// batch's deadline, every still-queued slot fails with
/// `DeadlineExceeded` instead of executing — on every backend.
#[test]
fn deadline_expired_batches_fail_without_executing() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let batch: Vec<Handle> = (0..6u64)
            .map(|i| {
                rt.apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(90)),
                    ],
                )
                .unwrap()
            })
            .collect();
        assert_eq!(rt.virtual_now(), 0, "clocks start at zero");
        rt.advance_virtual_clock(10_000);
        let before = rt.procedures_run();
        let ticket = rt.submit_with(&batch, SubmitOptions::default().with_deadline(5_000));
        let results = rt.wait_batch(ticket);
        assert_eq!(results.len(), batch.len());
        for r in &results {
            assert!(
                matches!(r, Err(Error::DeadlineExceeded { deadline_us: 5_000 })),
                "expired slot must fail with DeadlineExceeded: {r:?}"
            );
        }
        assert_eq!(rt.procedures_run(), before, "expired work must not execute");

        // An unexpired deadline (and priority classes) leave semantics
        // untouched: the same batch, submitted with headroom, resolves.
        let opts = SubmitOptions::default()
            .with_deadline(rt.virtual_now() + 1_000_000)
            .with_priority(Priority::Latency);
        let ok: Vec<Handle> = rt
            .wait_batch(rt.submit_with(&batch, opts))
            .into_iter()
            .map(|r| r.expect("unexpired member succeeds"))
            .collect();
        for (i, h) in ok.iter().enumerate() {
            assert_eq!(rt.get_u64(*h).unwrap(), i as u64 + 90);
        }
        ok
    });
}

/// A batch submitted *after* its deadline already passed fails whole —
/// uniformly on every backend, even for slots whose results are
/// already memoized (no backend may answer a dead-on-arrival request).
#[test]
fn deadline_on_arrival_beats_memoization_uniformly() {
    on_every_submitting_backend(|rt| {
        let add = register_add(rt);
        let thunk = rt
            .apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(8)),
                    rt.put_blob(Blob::from_u64(9)),
                ],
            )
            .unwrap();
        assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), 17); // Memoized.
        rt.advance_virtual_clock(100);
        let results =
            rt.wait_batch(rt.submit_with(&[thunk], SubmitOptions::default().with_deadline(50)));
        assert!(
            matches!(results[0], Err(Error::DeadlineExceeded { deadline_us: 50 })),
            "a memoized slot must not resurrect a dead-on-arrival batch: {:?}",
            results[0]
        );
        // The memo itself is untouched: an in-time request still hits it.
        let ok = rt.wait_batch(
            rt.submit_with(&[thunk], SubmitOptions::default().with_deadline(1_000_000)),
        );
        vec![*ok[0].as_ref().expect("in-time request resolves")]
    });
}

/// Cancelling a ticket whose job is mid-step must leave the running
/// execution alone: the job completes exactly once, and a concurrent
/// resubmission rides the in-flight execution instead of starting a
/// second one.
#[test]
fn cancel_during_execution_keeps_exactly_once_semantics() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Mutex};

    let rt = Arc::new(Runtime::builder().workers(1).build());
    let runs = Arc::new(AtomicU64::new(0));
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let started_tx = Mutex::new(started_tx);
    let release_rx = Mutex::new(release_rx);
    let slow = {
        let runs = Arc::clone(&runs);
        rt.register_native(
            "conf/slow-block",
            Arc::new(move |ctx| {
                runs.fetch_add(1, Ordering::SeqCst);
                let _ = started_tx.lock().unwrap().send(());
                let _ = release_rx.lock().unwrap().recv();
                ctx.host.create_blob(7u64.to_le_bytes().to_vec())
            }),
        )
    };
    let thunk = rt.apply(limits(), slow, &[]).unwrap();

    let doomed = rt.submit_many(&[thunk]);
    started_rx
        .recv()
        .expect("the worker began stepping the job");
    doomed.cancel(); // Mid-step: must not withdraw the running job.
    let survivor = rt.submit_many(&[thunk]);
    // Unblock enough times for a (buggy) duplicate execution too.
    release_tx.send(()).unwrap();
    let _ = release_tx.send(());
    let results = rt.wait_batch(survivor);
    assert_eq!(rt.get_u64(*results[0].as_ref().unwrap()).unwrap(), 7);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "the mid-step job must run exactly once despite the cancel"
    );
    assert_eq!(rt.submission_watchers(), 0);
}

/// Cancel-then-resubmit at a different priority: the revival gets a
/// fresh queue token at the new tier while the stale token still
/// floats, and the live-token claim keeps every job exactly-once.
#[test]
fn cancelled_then_resubmitted_batches_run_exactly_once() {
    let rt = Runtime::builder().build();
    let add = register_add(&rt);
    let batch: Vec<Handle> = (0..8u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(3_000 + i)),
                    rt.put_blob(Blob::from_u64(4)),
                ],
            )
            .unwrap()
        })
        .collect();
    rt.submit_with(
        &batch,
        SubmitOptions::default().with_priority(Priority::Batch),
    )
    .cancel();
    let results = rt.wait_batch(rt.submit_with(
        &batch,
        SubmitOptions::default().with_priority(Priority::Latency),
    ));
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            rt.get_u64(*r.as_ref().unwrap()).unwrap(),
            3_000 + i as u64 + 4
        );
    }
    assert_eq!(
        rt.procedures_run(),
        batch.len() as u64,
        "duplicate queue tokens must not duplicate executions"
    );
    assert_eq!(rt.submission_watchers(), 0);
    assert_eq!(rt.queued_jobs(), 0);
}

/// The *lazy* expiry path: a batch submitted in time whose deadline
/// passes while it sits queued is expired at dequeue — watcher slots
/// fail, the waiter wakes, and the withdrawn jobs leave nothing behind.
/// (Distinct from dead-on-arrival submission, which never enqueues.)
#[test]
fn deadline_passing_while_queued_expires_at_dequeue() {
    // Pool-less runtime: nothing drives the queue between submit and
    // wait, so the batch is deterministically still queued when the
    // clock passes its deadline.
    let rt = Runtime::builder().build();
    let add = register_add(&rt);
    let batch: Vec<Handle> = (0..4u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(7_000 + i)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        })
        .collect();
    let before = rt.procedures_run();
    let ticket = rt.submit_with(&batch, SubmitOptions::default().with_deadline(500));
    assert_eq!(rt.queued_jobs(), batch.len(), "submitted in time: queued");
    rt.advance_virtual_clock(1_000); // Deadline passes while queued.
    for r in rt.wait_batch(ticket) {
        assert!(
            matches!(r, Err(Error::DeadlineExceeded { deadline_us: 500 })),
            "queued-past-deadline slot must expire at dequeue: {r:?}"
        );
    }
    assert_eq!(rt.procedures_run(), before, "expired work never executes");
    assert_eq!(rt.submission_watchers(), 0);
    assert_eq!(rt.queued_jobs(), 0, "expired jobs are withdrawn");
}

/// The same lazy expiry on the offload pool: a deadlined batch stuck
/// behind a busy worker expires before dispatch once the clock passes.
#[test]
fn offload_expires_batches_queued_past_their_deadline() {
    use std::sync::{mpsc, Mutex};

    let off = BlockingOffload::new(Runtime::builder().build());
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Mutex::new(release_rx);
    let blocker_proc = off.register_native(
        "conf/offload-blocker",
        Arc::new(move |ctx| {
            let _ = release_rx.lock().unwrap().recv();
            ctx.host.create_blob(1u64.to_le_bytes().to_vec())
        }),
    );
    let add = register_add(&off);
    let blocker = off.apply(limits(), blocker_proc, &[]).unwrap();
    let deadlined = off
        .apply(
            limits(),
            add,
            &[
                off.put_blob(Blob::from_u64(1)),
                off.put_blob(Blob::from_u64(2)),
            ],
        )
        .unwrap();

    // Occupy the single submission thread, then queue the deadlined
    // batch behind it — it is deterministically still pool-queued when
    // the clock advances.
    let busy = off.submit_many(&[blocker]);
    let doomed = off.submit_with(&[deadlined], SubmitOptions::default().with_deadline(500));
    off.advance_virtual_clock(1_000);
    release_tx.send(()).unwrap();
    let results = off.wait_batch(doomed);
    assert!(
        matches!(
            results[0],
            Err(Error::DeadlineExceeded { deadline_us: 500 })
        ),
        "pool-queued-past-deadline batch must expire before dispatch: {:?}",
        results[0]
    );
    for r in off.wait_batch(busy) {
        r.expect("the blocking batch still resolves");
    }
}

/// Runtime-specific: detaching is eager — the scheduler's watcher table
/// empties the moment a ticket resolves or drops, so long-lived nodes
/// cannot accumulate per-ticket bookkeeping.
#[test]
fn runtime_tickets_leave_no_watchers_behind() {
    let rt = Runtime::builder().build();
    let add = register_add(&rt);
    let batch: Vec<Handle> = (0..6u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(i)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        })
        .collect();

    // Nothing drives a pool-less runtime between submit and wait, so
    // the watchers are observably registered...
    let ticket = rt.submit_many(&batch);
    assert_eq!(rt.submission_watchers(), batch.len());
    // ...and fully drained once the ticket resolves.
    for r in rt.wait_batch(ticket) {
        r.expect("batch member succeeds");
    }
    assert_eq!(rt.submission_watchers(), 0);

    // A dropped ticket deregisters eagerly, even though its jobs are
    // still queued (nothing has driven them yet).
    let fresh: Vec<Handle> = (100..104u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(i)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        })
        .collect();
    let abandoned = rt.submit_many(&fresh);
    assert_eq!(rt.submission_watchers(), fresh.len());
    drop(abandoned);
    assert_eq!(rt.submission_watchers(), 0, "dropped tickets must not leak");

    // The dropped ticket's unshared queued jobs were withdrawn with the
    // watchers: nothing orphaned stays in the run queue...
    assert_eq!(rt.queued_jobs(), 0, "dropped tickets must not orphan jobs");
    // ...and a fresh request for the same thunk simply re-enqueues it.
    assert_eq!(rt.get_u64(rt.eval(fresh[0]).unwrap()).unwrap(), 101);
}

/// The acceptance bar for true cancellation: a cancelled 256-request
/// batch on a busy runtime leaves zero watchers, zero orphaned queued
/// jobs, runs none of the cancelled-only procedures, and never hangs a
/// concurrent waiter.
#[test]
fn cancelling_a_large_queued_batch_withdraws_everything() {
    let rt = Arc::new(Runtime::builder().build());
    let add = register_add(&*rt);

    // A concurrent waiter holds its own (overlapping-free) work so the
    // runtime is genuinely busy while the cancel lands.
    let waiter_batch: Vec<Handle> = (0..64u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(500_000 + i)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        })
        .collect();

    // 256 distinct requests nothing else shares.
    let doomed_batch: Vec<Handle> = (0..256u64)
        .map(|i| {
            rt.apply(
                limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(900_000 + i)),
                    rt.put_blob(Blob::from_u64(2)),
                ],
            )
            .unwrap()
        })
        .collect();

    let doomed = rt.submit_with(
        &doomed_batch,
        SubmitOptions::default().with_priority(Priority::Batch),
    );
    assert_eq!(rt.submission_watchers(), 256);
    assert_eq!(rt.queued_jobs(), 256);

    let waiter = {
        let rt = Arc::clone(&rt);
        let batch = waiter_batch.clone();
        std::thread::spawn(move || {
            let results = rt.wait_batch(rt.submit_many(&batch));
            results
                .into_iter()
                .map(|r| r.expect("waiter request succeeds"))
                .collect::<Vec<_>>()
        })
    };

    // Cancel while the concurrent waiter races the queue; no procedure
    // of the cancelled-only batch may run (the waiter thread only ever
    // dequeues runnable, wanted jobs — the withdrawn 256 are skipped).
    doomed.cancel();
    let resolved = waiter.join().expect("concurrent waiter must not hang");
    assert_eq!(resolved.len(), waiter_batch.len());

    assert_eq!(rt.submission_watchers(), 0, "no watcher survives cancel");
    assert_eq!(rt.queued_jobs(), 0, "no orphaned queued jobs after cancel");
    // Only the waiter's 64 procedures ran: the cancelled 256 never did.
    assert_eq!(
        rt.procedures_run(),
        waiter_batch.len() as u64,
        "cancelled-only procedures must not execute"
    );
}

/// ClusterClient-specific conformance: the simulated substrate must not
/// change observable semantics, only produce telemetry.
#[test]
fn cluster_client_telemetry_is_pure_observation() {
    let cc = ClusterClient::builder().build().unwrap();
    let add = register_add(&cc);
    let thunk = cc
        .apply(
            limits(),
            add,
            &[
                cc.put_blob(Blob::from_u64(5)),
                cc.put_blob(Blob::from_u64(6)),
            ],
        )
        .unwrap();
    assert!(cc.reports().is_empty(), "construction ships nothing");
    cc.eval(thunk).unwrap();
    assert_eq!(cc.reports().len(), 1);
    assert_eq!(cc.last_report().unwrap().tasks_run, 1);
    cc.eval(thunk).unwrap();
    assert_eq!(
        cc.reports().len(),
        1,
        "memoized request must not ship a cluster run"
    );
}
