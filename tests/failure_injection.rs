//! Failure-injection integration tests: missing data, guest faults,
//! resource exhaustion, and capability violations must all surface as
//! clean errors (never hangs, panics, or wrong answers).

use fix::prelude::*;
use std::sync::Arc;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// Evaluating against data that was never stored reports NotFound with
/// the precise missing handle.
#[test]
fn missing_input_data_is_reported() {
    let rt = Runtime::builder().build();
    let ghost = Blob::from_vec(vec![9u8; 500]).handle(); // Never stored.
    let first = rt.register_native("first", Arc::new(|ctx| ctx.arg(0)));
    let thunk = rt.apply(limits(), first, &[ghost]).unwrap();
    // Footprint analysis catches it before launch.
    let err = rt.footprint(thunk).unwrap_err();
    assert!(matches!(err, Error::NotFound(h) if h == ghost), "{err}");
}

/// A guest that tries to read Ref data gets a capability fault; the
/// computation fails without poisoning unrelated evaluations.
#[test]
fn capability_violation_is_isolated() {
    let rt = Runtime::builder().build();
    let secret = rt.put_blob(Blob::from_vec(vec![1u8; 256]));
    let snoop = rt.register_native(
        "snoop",
        Arc::new(|ctx| {
            let r = ctx.arg(0)?;
            let data = ctx.host.load_blob(r)?; // Refs are not loadable.
            ctx.host.create_blob(data.as_slice().to_vec())
        }),
    );
    let bad = rt
        .apply(limits(), snoop, &[secret.as_ref_handle()])
        .unwrap();
    let err = rt.eval(bad).unwrap_err();
    assert!(matches!(err, Error::Inaccessible(_)), "{err}");

    // The same runtime keeps working for honest programs.
    let ok = rt.apply(limits(), snoop, &[secret]).unwrap();
    assert_eq!(rt.get_blob(rt.eval(ok).unwrap()).unwrap().len(), 256);
}

/// Fuel exhaustion in one VM guest fails that computation only; a
/// bigger budget succeeds and memoizes independently.
#[test]
fn fuel_exhaustion_is_per_invocation() {
    let rt = Runtime::builder().build();
    let burn = rt
        .install_vm_module(
            r#"
            func apply args=0 locals=1
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              local.set 0
            loop:
              local.get 0
              eqz
              jump_if done
              local.get 0
              const 1
              sub
              local.set 0
              jump loop
            done:
              const 0
              const 2
              tree.get
              ret_handle
            end
            "#,
        )
        .unwrap();
    let n = rt.put_blob(Blob::from_u64(10_000));
    let starved = ResourceLimits::new(1 << 20, 100);
    let thunk = rt.apply(starved, burn, &[n]).unwrap();
    assert!(matches!(
        rt.eval(thunk).unwrap_err(),
        Error::OutOfFuel { limit: 100 }
    ));

    let fed = ResourceLimits::new(1 << 20, 1 << 20);
    let thunk2 = rt.apply(fed, burn, &[n]).unwrap();
    assert!(rt.eval(thunk2).is_ok());
}

/// Malformed application trees (bad limits slot, too few slots) fail
/// with MalformedTree, not panics.
#[test]
fn malformed_invocations_fail_cleanly() {
    let rt = Runtime::builder().build();
    // Tree whose slot 0 is not a limits blob.
    let bogus = rt.put_tree(Tree::from_handles(vec![
        rt.put_blob(Blob::from_slice(b"not-limits")),
        rt.put_blob(Blob::from_slice(b"not-a-proc")),
    ]));
    let err = rt.eval(bogus.application().unwrap()).unwrap_err();
    assert!(matches!(err, Error::MalformedTree { .. }), "{err}");

    // Selection index out of bounds.
    let small = rt.put_tree(Tree::from_handles(vec![rt.put_blob(Blob::from_u64(1))]));
    let sel = rt.select(small, 99).unwrap();
    assert!(matches!(
        rt.eval(sel).unwrap_err(),
        Error::BadSelection { .. }
    ));
}

/// A failure deep inside a dependency graph propagates to every
/// dependent — across both strict and shallow encodes — and the rest of
/// the graph still completes.
#[test]
fn deep_failure_propagation() {
    let rt = Runtime::builder().workers(2).build();
    let bad = rt
        .install_vm_module("func apply args=0 locals=0\n unreachable\nend")
        .unwrap();
    let good = rt.register_native(
        "good",
        Arc::new(|ctx| ctx.host.create_blob(7u64.to_le_bytes().to_vec())),
    );
    let join = rt.register_native(
        "join",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            ctx.host.create_blob(a.to_le_bytes().to_vec())
        }),
    );
    let limits = limits();
    let failing = rt.apply(limits, bad, &[]).unwrap();
    let fine = rt.apply(limits, good, &[]).unwrap();

    // join(strict(bad)) fails; join(strict(good)) succeeds — concurrently.
    let doomed = rt
        .apply(limits, join, &[failing.strict().unwrap()])
        .unwrap();
    let healthy = rt.apply(limits, join, &[fine.strict().unwrap()]).unwrap();
    assert!(rt.eval(doomed).is_err());
    assert_eq!(rt.get_u64(rt.eval(healthy).unwrap()).unwrap(), 7);
    // Shallow encodes of the failing thunk fail too.
    let doomed2 = rt
        .apply(limits, join, &[failing.shallow().unwrap()])
        .unwrap();
    assert!(rt.eval(doomed2).is_err());
}

/// Simulated cluster: a task graph with an unreachable input (object
/// placed nowhere) must panic loudly in the engine's validation, not
/// deadlock. We assert the builder-level contract instead: every needed
/// object must have a source.
#[test]
fn cluster_engine_requires_sourced_objects() {
    use fix::cluster::{JobGraph, ObjectSpec, TaskSpec};
    let graph = JobGraph {
        objects: vec![ObjectSpec {
            size: 100,
            initial_locations: vec![], // Nowhere!
        }],
        tasks: vec![TaskSpec {
            inputs: vec![fix::cluster::ObjectId(0)],
            deps: vec![],
            compute_us: 10,
            cores: 1,
            ram: 0,
            output_size: 8,
            output_hint: None,
            func: 0,
        }],
        outputs: vec![fix::cluster::ObjectId(0)],
    };
    let setup = fix::cluster::ClusterSetup::workers_only(
        2,
        fix::netsim::NodeSpec::default(),
        fix::netsim::NetConfig::default(),
    );
    let result = std::panic::catch_unwind(|| {
        fix::cluster::run_fix(&setup, &graph, &fix::cluster::FixConfig::default())
    });
    assert!(result.is_err(), "unsourced inputs must fail loudly");
}
