//! Dataflow job graphs: the workload description shared by the Fix
//! cluster engine and every baseline engine.
//!
//! A [`JobGraph`] is the simulator-level analog of a Fix computation:
//! content-addressed **objects** (with sizes and initial locations) and
//! **tasks** (pure functions of objects and other tasks' outputs, with
//! explicit CPU/RAM demands — the paper's resource limits — and output
//! sizes, optionally hinted to the scheduler).
//!
//! Workload generators in `fix-workloads` produce graphs; engines differ
//! only in *how* they place, fetch, and bind — which is exactly the
//! paper's comparison.

use fix_netsim::{NodeId, Time};
use std::collections::HashMap;

/// Identifies a data object in a job graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// Identifies a task in a job graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A data object: size plus (for job inputs) where it initially lives.
#[derive(Debug, Clone)]
pub struct ObjectSpec {
    /// Size in bytes (drives transfer costs and RAM footprints).
    pub size: u64,
    /// Nodes that hold the object before the job starts. Task outputs
    /// start empty and materialize where the task ran.
    pub initial_locations: Vec<NodeId>,
}

/// A task: a deterministic procedure with an explicit footprint.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Objects whose *data* must be at the execution node (the minimum
    /// repository, minus dependency outputs).
    pub inputs: Vec<ObjectId>,
    /// Tasks whose outputs this task consumes (strict encodes).
    pub deps: Vec<TaskId>,
    /// Pure compute time once everything is local.
    pub compute_us: Time,
    /// Cores required while running.
    pub cores: u32,
    /// RAM required while running.
    pub ram: u64,
    /// Actual output size in bytes.
    pub output_size: u64,
    /// Output-size hint visible to the scheduler *before* running
    /// (paper §4.2.2); `None` means unhinted.
    pub output_hint: Option<u64>,
    /// Which function this task invokes. The Fix engine ignores this
    /// (codelets are just data); baseline engines use it for per-node
    /// cold starts and binary loads.
    pub func: u32,
}

/// A complete workload: objects, tasks, and the task-output objects.
#[derive(Debug, Clone, Default)]
pub struct JobGraph {
    /// All object specs, indexed by [`ObjectId`].
    pub objects: Vec<ObjectSpec>,
    /// All task specs, indexed by [`TaskId`].
    pub tasks: Vec<TaskSpec>,
    /// The output object of each task (same index as `tasks`).
    pub outputs: Vec<ObjectId>,
}

impl JobGraph {
    /// The object produced by `task`.
    pub fn output_of(&self, task: TaskId) -> ObjectId {
        self.outputs[task.0 as usize]
    }

    /// The spec of `task`.
    pub fn task(&self, task: TaskId) -> &TaskSpec {
        &self.tasks[task.0 as usize]
    }

    /// The spec of `object`.
    pub fn object(&self, object: ObjectId) -> &ObjectSpec {
        &self.objects[object.0 as usize]
    }

    /// Tasks with no dependents (the job's results).
    pub fn sinks(&self) -> Vec<TaskId> {
        let mut has_dependent = vec![false; self.tasks.len()];
        for t in &self.tasks {
            for d in &t.deps {
                has_dependent[d.0 as usize] = true;
            }
        }
        (0..self.tasks.len())
            .filter(|i| !has_dependent[*i])
            .map(|i| TaskId(i as u64))
            .collect()
    }

    /// Validates structural sanity: ids in range, deps acyclic
    /// (topological order exists), no task needs more cores than any
    /// node could have.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tasks.iter().enumerate() {
            for o in &t.inputs {
                if o.0 as usize >= self.objects.len() {
                    return Err(format!("task {i}: input object {} out of range", o.0));
                }
            }
            for d in &t.deps {
                if d.0 as usize >= self.tasks.len() {
                    return Err(format!("task {i}: dep task {} out of range", d.0));
                }
            }
        }
        if self.outputs.len() != self.tasks.len() {
            return Err("outputs/tasks length mismatch".into());
        }
        // Kahn's algorithm for cycle detection.
        let mut indeg = vec![0usize; self.tasks.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            indeg[i] = t.deps.len();
            for d in &t.deps {
                dependents[d.0 as usize].push(i);
            }
        }
        let mut queue: Vec<usize> = (0..self.tasks.len()).filter(|i| indeg[*i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &j in &dependents[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if seen != self.tasks.len() {
            return Err("dependency cycle detected".into());
        }
        Ok(())
    }

    /// Total bytes of all initially-placed input objects.
    pub fn total_input_bytes(&self) -> u64 {
        self.objects
            .iter()
            .filter(|o| !o.initial_locations.is_empty())
            .map(|o| o.size)
            .sum()
    }
}

/// Incrementally builds a [`JobGraph`].
#[derive(Debug, Default)]
pub struct JobGraphBuilder {
    graph: JobGraph,
    /// Dedup of identical input objects by (size, location) label.
    interned: HashMap<(u64, String), ObjectId>,
}

impl JobGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> JobGraphBuilder {
        JobGraphBuilder::default()
    }

    /// Adds an input object resident at `locations`.
    pub fn object_at(&mut self, size: u64, locations: &[NodeId]) -> ObjectId {
        let id = ObjectId(self.graph.objects.len() as u64);
        self.graph.objects.push(ObjectSpec {
            size,
            initial_locations: locations.to_vec(),
        });
        id
    }

    /// Adds (or reuses) a shared input object identified by a label —
    /// models content addressing: the same named datum is one object.
    pub fn shared_object(&mut self, size: u64, label: &str, locations: &[NodeId]) -> ObjectId {
        if let Some(&id) = self.interned.get(&(size, label.to_string())) {
            return id;
        }
        let id = self.object_at(size, locations);
        self.interned.insert((size, label.to_string()), id);
        id
    }

    /// Adds a task, returning its id. The output object is created
    /// automatically with the task's `output_size`.
    pub fn task(&mut self, spec: TaskSpec) -> TaskId {
        let tid = TaskId(self.graph.tasks.len() as u64);
        let out = ObjectId(self.graph.objects.len() as u64);
        self.graph.objects.push(ObjectSpec {
            size: spec.output_size,
            initial_locations: Vec::new(),
        });
        self.graph.tasks.push(spec);
        self.graph.outputs.push(out);
        tid
    }

    /// Finishes the graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph fails validation — builders are programming
    /// errors, not runtime conditions.
    pub fn build(self) -> JobGraph {
        self.graph.validate().expect("valid job graph");
        self.graph
    }
}

/// Convenience constructor for a [`TaskSpec`] with 1 core and small RAM.
pub fn small_task(compute_us: Time, output_size: u64) -> TaskSpec {
    TaskSpec {
        inputs: Vec::new(),
        deps: Vec::new(),
        compute_us,
        cores: 1,
        ram: 64 << 20,
        output_size,
        output_hint: None,
        func: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ids_and_outputs() {
        let mut b = JobGraphBuilder::new();
        let o = b.object_at(100, &[NodeId(0)]);
        let mut spec = small_task(10, 8);
        spec.inputs.push(o);
        let t = b.task(spec);
        let g = b.build();
        assert_eq!(g.tasks.len(), 1);
        assert_eq!(g.objects.len(), 2);
        assert_eq!(g.output_of(t).0, 1);
        assert_eq!(g.object(g.output_of(t)).size, 8);
        assert_eq!(g.sinks(), vec![t]);
    }

    #[test]
    fn shared_objects_are_interned() {
        let mut b = JobGraphBuilder::new();
        let a = b.shared_object(100, "libc", &[NodeId(0)]);
        let c = b.shared_object(100, "libc", &[NodeId(0)]);
        let d = b.shared_object(100, "libm", &[NodeId(0)]);
        assert_eq!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn cycles_are_rejected() {
        // Hand-build a cyclic graph (builder can't make one).
        let g = JobGraph {
            objects: vec![
                ObjectSpec {
                    size: 1,
                    initial_locations: vec![],
                },
                ObjectSpec {
                    size: 1,
                    initial_locations: vec![],
                },
            ],
            tasks: vec![
                TaskSpec {
                    deps: vec![TaskId(1)],
                    ..small_task(1, 1)
                },
                TaskSpec {
                    deps: vec![TaskId(0)],
                    ..small_task(1, 1)
                },
            ],
            outputs: vec![ObjectId(0), ObjectId(1)],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let g = JobGraph {
            objects: vec![],
            tasks: vec![TaskSpec {
                inputs: vec![ObjectId(5)],
                ..small_task(1, 1)
            }],
            outputs: vec![ObjectId(0)],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn sinks_of_reduction_tree() {
        let mut b = JobGraphBuilder::new();
        let leaves: Vec<TaskId> = (0..4).map(|_| b.task(small_task(1, 8))).collect();
        let m1 = b.task(TaskSpec {
            deps: vec![leaves[0], leaves[1]],
            ..small_task(1, 8)
        });
        let m2 = b.task(TaskSpec {
            deps: vec![leaves[2], leaves[3]],
            ..small_task(1, 8)
        });
        let root = b.task(TaskSpec {
            deps: vec![m1, m2],
            ..small_task(1, 8)
        });
        let g = b.build();
        assert_eq!(g.sinks(), vec![root]);
    }
}
