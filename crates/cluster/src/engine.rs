//! The distributed Fixpoint execution engine (paper §4.2.2), as a policy
//! over the simulated cluster.
//!
//! Because I/O is externalized, the engine sees every task's full data
//! footprint *before* launch. That enables the two mechanisms the paper
//! ablates in Figs. 8a/8b:
//!
//! * **dataflow-aware placement** — each task runs on the node that
//!   minimizes data movement, given the engine's view of object
//!   locations (ablation: random placement);
//! * **late binding** — CPU and RAM are claimed only after the minimum
//!   repository is local, so cores never idle waiting on the network
//!   (ablation: "internal" I/O, which claims resources first and fetches
//!   after, like a conventional serverless platform).

use crate::graph::{JobGraph, ObjectId, TaskId};
use crate::report::RunReport;
use fix_netsim::{ClaimId, CoreState, NetConfig, NodeId, NodeSpec, Sim, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Where tasks may be placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Minimize data movement over the location view (Fixpoint).
    Locality,
    /// Uniformly random worker (the "no locality" ablation).
    Random,
}

/// When resources are claimed relative to input fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Claim cores/RAM only once all inputs are local (Fixpoint).
    Late,
    /// Claim first, then fetch while holding resources ("internal" I/O).
    Early,
}

/// Configuration of the Fix cluster engine.
#[derive(Debug, Clone)]
pub struct FixConfig {
    /// Placement policy.
    pub placement: Placement,
    /// Binding policy.
    pub binding: Binding,
    /// Per-invocation platform overhead, charged as System time
    /// (Fixpoint: ~1.5 µs, Fig. 7a).
    pub invocation_overhead_us: Time,
    /// RNG seed (placement ties, random placement).
    pub seed: u64,
}

impl Default for FixConfig {
    fn default() -> Self {
        FixConfig {
            placement: Placement::Locality,
            binding: Binding::Late,
            invocation_overhead_us: 2,
            seed: 42,
        }
    }
}

/// The simulated cluster: node specs, network, and role assignment.
#[derive(Debug, Clone)]
pub struct ClusterSetup {
    /// Hardware of every node (workers, storage, client...).
    pub specs: Vec<NodeSpec>,
    /// Network parameters.
    pub net: NetConfig,
    /// Nodes that execute tasks.
    pub workers: Vec<NodeId>,
    /// If set, the job is submitted from (and results returned to) this
    /// node; its transfer times count toward the makespan.
    pub client: Option<NodeId>,
}

impl ClusterSetup {
    /// A homogeneous cluster of `n` worker nodes (no distinct client).
    pub fn workers_only(n: usize, spec: NodeSpec, net: NetConfig) -> ClusterSetup {
        ClusterSetup {
            specs: vec![spec; n],
            net,
            workers: (0..n).map(NodeId).collect(),
            client: None,
        }
    }

    /// Checks the setup is runnable: at least one worker, and every
    /// worker/client id has a spec. Shared by every client builder so
    /// an inconsistent setup fails with a clean error at construction
    /// instead of an index panic mid-simulation.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers.is_empty() {
            return Err("cluster setup has no worker nodes".into());
        }
        let n = self.specs.len();
        for node in self.workers.iter().chain(self.client.iter()) {
            if node.0 >= n {
                return Err(format!("node {node:?} has no spec (cluster has {n} nodes)"));
            }
        }
        Ok(())
    }
}

struct State {
    graph: JobGraph,
    cfg: FixConfig,
    workers: Vec<NodeId>,
    client: Option<NodeId>,
    /// Engine's view of object locations (paper: advanced passively).
    locations: Vec<Vec<NodeId>>,
    /// Remaining unfinished dependencies per task.
    remaining_deps: Vec<usize>,
    /// Dependent tasks of each task.
    dependents: Vec<Vec<TaskId>>,
    /// Chosen node per task.
    assignment: Vec<Option<NodeId>>,
    /// Remaining in-flight input fetches per task.
    pending_fetches: Vec<usize>,
    /// Per-worker queue of tasks awaiting cores (FIFO).
    runnable: HashMap<NodeId, VecDeque<TaskId>>,
    /// In-flight object transfers, with tasks awaiting each.
    in_flight: HashMap<(ObjectId, NodeId), Vec<TaskId>>,
    /// Tasks assigned to each node that have not yet completed — the
    /// load signal for spreading equal-cost parallel jobs (paper §4.2.2:
    /// "outsource parallel jobs to different nodes").
    assigned_load: HashMap<NodeId, usize>,
    /// Claims held by early-binding tasks during their fetch phase.
    held_claims: Vec<Option<ClaimId>>,
    finished: usize,
    finish_time: Time,
    bytes_moved: u64,
    rng: StdRng,
}

impl State {
    fn object_at(&self, o: ObjectId, n: NodeId) -> bool {
        self.locations[o.0 as usize].contains(&n)
    }

    /// Everything the task needs locally: inputs + dependency outputs.
    fn needed_objects(&self, t: TaskId) -> Vec<ObjectId> {
        let spec = self.graph.task(t);
        let mut v = spec.inputs.clone();
        v.extend(spec.deps.iter().map(|d| self.graph.output_of(*d)));
        v
    }

    fn missing_bytes(&self, t: TaskId, n: NodeId) -> u64 {
        self.needed_objects(t)
            .iter()
            .filter(|o| !self.object_at(**o, n))
            .map(|o| self.graph.object(*o).size)
            .sum()
    }

    /// The placement decision (paper §4.2.2).
    fn choose_node(&mut self, sim: &Sim, t: TaskId) -> NodeId {
        match self.cfg.placement {
            Placement::Random => {
                let i = self.rng.gen_range(0..self.workers.len());
                self.workers[i]
            }
            Placement::Locality => {
                // Cost = bytes that must move to run here; if the app
                // hinted a large output and a downstream consumer has a
                // dominant data location, moving the output there counts
                // too.
                let downstream_pull = self.downstream_attraction(t);
                let mut best: Option<(u128, usize, NodeId)> = None;
                for &n in &self.workers {
                    let mut cost = self.missing_bytes(t, n) as u128;
                    if let (Some(hint), Some((dom_node, _))) =
                        (self.graph.task(t).output_hint, downstream_pull)
                    {
                        if n != dom_node {
                            cost += hint as u128;
                        }
                    }
                    // Tie-break on assigned-but-unfinished work, then on
                    // free cores right now.
                    let _ = sim;
                    let load = self.assigned_load.get(&n).copied().unwrap_or(0);
                    match best {
                        Some((bc, bl, _)) if (cost, load) >= (bc, bl) => {}
                        _ => best = Some((cost, load, n)),
                    }
                }
                best.expect("at least one worker").2
            }
        }
    }

    /// For hinted tasks: the node holding the largest other input of any
    /// dependent (where the output will be consumed).
    fn downstream_attraction(&self, t: TaskId) -> Option<(NodeId, u64)> {
        let mut best: Option<(NodeId, u64)> = None;
        for &d in &self.dependents[t.0 as usize] {
            for o in self.needed_objects(d) {
                if o == self.graph.output_of(t) {
                    continue;
                }
                let size = self.graph.object(o).size;
                if let Some(&n) = self.locations[o.0 as usize].first() {
                    if best.is_none_or(|(_, s)| size > s) {
                        best = Some((n, size));
                    }
                }
            }
        }
        best
    }
}

type Shared = Rc<RefCell<State>>;

/// Runs `graph` on the simulated cluster under the Fix engine and
/// returns the run report.
///
/// # Examples
///
/// ```
/// use fix_cluster::{run_fix, ClusterSetup, FixConfig, JobGraphBuilder, small_task};
/// use fix_netsim::{NodeSpec, NetConfig, NodeId};
///
/// let setup = ClusterSetup::workers_only(2, NodeSpec::default(), NetConfig::default());
/// let mut b = JobGraphBuilder::new();
/// let mut spec = small_task(1_000, 8);
/// let input = b.object_at(1 << 20, &[NodeId(1)]);
/// spec.inputs.push(input);
/// b.task(spec);
/// let report = run_fix(&setup, &b.build(), &FixConfig::default());
/// assert_eq!(report.tasks_run, 1);
/// // Locality placement runs the task where its input lives: no movement.
/// assert_eq!(report.bytes_moved, 0);
/// ```
pub fn run_fix(setup: &ClusterSetup, graph: &JobGraph, cfg: &FixConfig) -> RunReport {
    graph.validate().expect("valid job graph");
    let mut sim = Sim::new(&setup.specs, setup.net.clone());

    let n_tasks = graph.tasks.len();
    let mut dependents = vec![Vec::new(); n_tasks];
    let mut remaining = vec![0usize; n_tasks];
    for (i, t) in graph.tasks.iter().enumerate() {
        remaining[i] = t.deps.len();
        for d in &t.deps {
            dependents[d.0 as usize].push(TaskId(i as u64));
        }
    }
    let locations = graph
        .objects
        .iter()
        .map(|o| o.initial_locations.clone())
        .collect();

    let state: Shared = Rc::new(RefCell::new(State {
        graph: graph.clone(),
        cfg: cfg.clone(),
        workers: setup.workers.clone(),
        client: setup.client,
        locations,
        remaining_deps: remaining,
        dependents,
        assignment: vec![None; n_tasks],
        pending_fetches: vec![0; n_tasks],
        runnable: HashMap::new(),
        in_flight: HashMap::new(),
        assigned_load: HashMap::new(),
        held_claims: vec![None; n_tasks],
        finished: 0,
        finish_time: 0,
        bytes_moved: 0,
        rng: StdRng::seed_from_u64(cfg.seed),
    }));

    // Submit all initially-ready tasks at t=0 (after the client ships the
    // job description, if a client is modeled).
    let ready: Vec<TaskId> = (0..n_tasks)
        .filter(|i| state.borrow().remaining_deps[*i] == 0)
        .map(|i| TaskId(i as u64))
        .collect();
    let st = Rc::clone(&state);
    match setup.client {
        Some(client) => {
            // One message carries the whole dataflow description — Fix
            // ships dependencies with the invocation, no per-step
            // round trips (paper §4.2.1).
            let first_worker = setup.workers[0];
            sim.message(client, first_worker, move |sim| {
                for t in ready {
                    place_task(sim, &st, t);
                }
            });
        }
        None => {
            sim.schedule(0, move |sim| {
                for t in ready {
                    place_task(sim, &st, t);
                }
            });
        }
    }

    sim.run();

    let st = state.borrow();
    assert_eq!(
        st.finished, n_tasks,
        "engine stalled: {}/{} tasks finished",
        st.finished, n_tasks
    );
    RunReport {
        makespan_us: st.finish_time,
        cpu: sim.cpu_report(&setup.workers),
        bytes_moved: st.bytes_moved,
        tasks_run: n_tasks as u64,
    }
}

/// Decides where a ready task runs and starts its fetch/claim sequence.
fn place_task(sim: &mut Sim, state: &Shared, t: TaskId) {
    let (node, binding) = {
        let mut st = state.borrow_mut();
        let node = st.choose_node(sim, t);
        st.assignment[t.0 as usize] = Some(node);
        *st.assigned_load.entry(node).or_insert(0) += 1;
        (node, st.cfg.binding)
    };
    match binding {
        Binding::Late => start_fetches(sim, state, t, node),
        Binding::Early => {
            // Conventional platforms claim the slice first, then the
            // function performs its own I/O while the slice idles.
            enqueue_runnable(sim, state, t, node);
        }
    }
}

/// Issues transfers for every missing input of `t` toward `node`.
fn start_fetches(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let missing: Vec<(ObjectId, NodeId, u64)> = {
        let st = state.borrow();
        st.needed_objects(t)
            .into_iter()
            .filter(|o| !st.object_at(*o, node))
            .map(|o| {
                let src = *st.locations[o.0 as usize]
                    .first()
                    .expect("needed object has a location");
                (o, src, st.graph.object(o).size)
            })
            .collect()
    };
    if missing.is_empty() {
        on_inputs_ready(sim, state, t, node);
        return;
    }
    {
        let mut st = state.borrow_mut();
        st.pending_fetches[t.0 as usize] = 0;
    }
    for (o, src, size) in missing {
        let mut st = state.borrow_mut();
        let key = (o, node);
        if let Some(waiters) = st.in_flight.get_mut(&key) {
            // Someone is already moving this object here; join them.
            waiters.push(t);
            st.pending_fetches[t.0 as usize] += 1;
            continue;
        }
        st.in_flight.insert(key, vec![t]);
        st.pending_fetches[t.0 as usize] += 1;
        st.bytes_moved += size;
        drop(st);
        let s2 = Rc::clone(state);
        sim.transfer(src, node, size, move |sim| {
            object_arrived(sim, &s2, o, node);
        });
    }
    // All inputs may have already been in flight and since arrived.
    let ready = state.borrow().pending_fetches[t.0 as usize] == 0;
    if ready {
        on_inputs_ready(sim, state, t, node);
    }
}

/// A transfer completed: update the location view and wake waiters.
fn object_arrived(sim: &mut Sim, state: &Shared, o: ObjectId, node: NodeId) {
    let waiters = {
        let mut st = state.borrow_mut();
        st.locations[o.0 as usize].push(node);
        st.in_flight.remove(&(o, node)).unwrap_or_default()
    };
    for t in waiters {
        let now_ready = {
            let mut st = state.borrow_mut();
            let p = &mut st.pending_fetches[t.0 as usize];
            *p -= 1;
            *p == 0
        };
        if now_ready {
            on_inputs_ready(sim, state, t, node);
        }
    }
}

/// Late binding: inputs are local, now compete for cores.
fn on_inputs_ready(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let binding = state.borrow().cfg.binding;
    match binding {
        Binding::Late => enqueue_runnable(sim, state, t, node),
        Binding::Early => {
            // The claim is already held (in Waiting state); start compute.
            let claim = state.borrow().held_claims[t.0 as usize].expect("claim held");
            begin_compute(sim, state, t, node, claim);
        }
    }
}

fn enqueue_runnable(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    state
        .borrow_mut()
        .runnable
        .entry(node)
        .or_default()
        .push_back(t);
    pump_node(sim, state, node);
}

/// Grants cores to queued tasks in FIFO order while resources allow.
fn pump_node(sim: &mut Sim, state: &Shared, node: NodeId) {
    loop {
        let (t, cores, ram, binding, overhead) = {
            let st = state.borrow();
            let Some(&t) = st.runnable.get(&node).and_then(|q| q.front()) else {
                return;
            };
            let spec = st.graph.task(t);
            (
                t,
                spec.cores,
                spec.ram,
                st.cfg.binding,
                st.cfg.invocation_overhead_us,
            )
        };
        // Early binding claims in Waiting (it still has I/O to do);
        // late binding claims in System (about to run).
        let initial = match binding {
            Binding::Late => CoreState::System,
            Binding::Early => CoreState::Waiting,
        };
        let Some(claim) = sim.try_claim(node, cores, ram, initial) else {
            return; // Head of queue can't fit; wait for a release.
        };
        state
            .borrow_mut()
            .runnable
            .get_mut(&node)
            .expect("queue exists")
            .pop_front();
        match binding {
            Binding::Late => {
                // System-time overhead, then user compute.
                let s2 = Rc::clone(state);
                sim.schedule(overhead, move |sim| {
                    sim.set_claim_state(claim, CoreState::User);
                    begin_compute_after_overhead(sim, &s2, t, node, claim);
                });
            }
            Binding::Early => {
                // Hold the claim, then fetch inputs ("internal" I/O).
                state.borrow_mut().held_claims[t.0 as usize] = Some(claim);
                start_fetches(sim, state, t, node);
            }
        }
    }
}

/// Early-binding path: inputs arrived while holding the claim.
fn begin_compute(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId, claim: ClaimId) {
    let overhead = state.borrow().cfg.invocation_overhead_us;
    let s2 = Rc::clone(state);
    sim.set_claim_state(claim, CoreState::System);
    sim.schedule(overhead, move |sim| {
        sim.set_claim_state(claim, CoreState::User);
        begin_compute_after_overhead(sim, &s2, t, node, claim);
    });
}

fn begin_compute_after_overhead(
    sim: &mut Sim,
    state: &Shared,
    t: TaskId,
    node: NodeId,
    claim: ClaimId,
) {
    let compute = state.borrow().graph.task(t).compute_us;
    let s2 = Rc::clone(state);
    sim.schedule(compute, move |sim| {
        sim.release(claim);
        sim.count_task(node);
        complete_task(sim, &s2, t, node);
    });
}

/// Records completion, materializes the output, and wakes dependents.
fn complete_task(sim: &mut Sim, state: &Shared, t: TaskId, node: NodeId) {
    let (newly_ready, all_done, client, out, out_size) = {
        let mut st = state.borrow_mut();
        let out = st.graph.output_of(t);
        st.locations[out.0 as usize].push(node);
        st.held_claims[t.0 as usize] = None;
        if let Some(load) = st.assigned_load.get_mut(&node) {
            *load = load.saturating_sub(1);
        }
        st.finished += 1;
        let mut ready = Vec::new();
        for &d in st.dependents[t.0 as usize].clone().iter() {
            let r = &mut st.remaining_deps[d.0 as usize];
            *r -= 1;
            if *r == 0 {
                ready.push(d);
            }
        }
        let all_done = st.finished == st.graph.tasks.len();
        let out_size = st.graph.object(out).size;
        (ready, all_done, st.client, out, out_size)
    };
    for d in newly_ready {
        place_task(sim, state, d);
    }
    if all_done {
        match client {
            Some(client) if client != node => {
                // Ship the final result back to the client.
                let s2 = Rc::clone(state);
                let _ = out;
                sim.transfer(node, client, out_size, move |sim| {
                    s2.borrow_mut().finish_time = sim.now();
                });
            }
            _ => {
                state.borrow_mut().finish_time = sim.now();
            }
        }
    }
    // Freed cores may admit the next queued task.
    pump_node(sim, state, node);
}
