//! [`ClusterClient`]: the distributed engine behind the One Fix API.
//!
//! The paper's transparency argument (and Nexus's, for I/O offload) is
//! that callers should not know which substrate serves them. This module
//! makes that literal: a `ClusterClient` implements the same
//! `fix_core::api` traits as the single-node `fixpoint::Runtime`, so a
//! workload written once against the traits runs unchanged on either —
//! and the conformance suite holds both to identical results.
//!
//! Mechanically the client is a Fix node with the simulated cluster
//! behind it. Construction calls ([`ObjectApi`], [`InvocationApi`])
//! build ordinary Fix objects. Each evaluation request is served twice
//! over, which is exactly the paper's split between *semantics* and
//! *placement*:
//!
//! 1. the request's dataflow — visible up front, because I/O is
//!    externalized — is derived into a [`JobGraph`] and executed by the
//!    Fix engine ([`run_fix`]) over `fix-netsim`, producing a
//!    [`RunReport`] (makespan, bytes moved, CPU states);
//! 2. the actual Fix semantics run on the embedded node, so results are
//!    bit-identical to every other backend.
//!
//! Memoized requests ship no tasks: the location view already holds the
//! result, so the simulated run is skipped — "pay for results" shows up
//! in the reports, not just in the counters.

use crate::engine::{run_fix, ClusterSetup, FixConfig};
use crate::graph::{JobGraphBuilder, ObjectId, TaskId, TaskSpec};
use crate::report::{ReportLog, RunReport};
use fix_core::api::{Evaluator, InvocationApi, NativeFn, ObjectApi};
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::{DataType, Handle, Kind, ThunkKind};
use fix_core::semantics::Footprint;
use fix_netsim::{NetConfig, NodeId, NodeSpec, Time};
use fix_storage::Relation;
use fixpoint::Runtime;
use std::collections::HashMap;

/// Configures a [`ClusterClient`].
pub struct ClusterClientBuilder {
    setup: ClusterSetup,
    cfg: FixConfig,
    task_compute_us: Time,
    provenance: bool,
}

impl Default for ClusterClientBuilder {
    fn default() -> Self {
        ClusterClientBuilder {
            setup: ClusterSetup::workers_only(10, NodeSpec::default(), NetConfig::default()),
            cfg: FixConfig::default(),
            task_compute_us: fix_core::calibration::SERVICE_COSTS.task_compute_us,
            provenance: false,
        }
    }
}

impl ClusterClientBuilder {
    /// The simulated cluster to run on (default: ten homogeneous
    /// workers, no distinct client node).
    pub fn setup(mut self, setup: ClusterSetup) -> Self {
        self.setup = setup;
        self
    }

    /// The engine configuration (placement/binding policy, overheads).
    pub fn config(mut self, cfg: FixConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Modeled compute time per simulated task, in µs. The derivation
    /// has no cost model for guest code, so every task is charged this
    /// flat amount; the default comes from the workspace-wide
    /// calibration table
    /// ([`fix_core::calibration::SERVICE_COSTS`]`.task_compute_us`),
    /// the same table the serving layer's per-kind service model reads,
    /// so the two simulated clocks cannot drift apart.
    pub fn task_compute_us(mut self, us: Time) -> Self {
        self.task_compute_us = us;
        self
    }

    /// Enables provenance recording on the embedded node.
    pub fn with_provenance(mut self) -> Self {
        self.provenance = true;
        self
    }

    /// Builds the client, validating the cluster description.
    pub fn build(self) -> Result<ClusterClient> {
        Ok(ClusterClient {
            core: ClientCore::new("cluster", self.setup, self.task_compute_us, self.provenance)?,
            cfg: self.cfg,
        })
    }
}

/// The shared machinery of a simulating One-Fix-API client: an embedded
/// Fix node for semantics, a simulated cluster description, and the
/// accumulated run reports. [`ClusterClient`] (the Fix engine) and
/// `fix_baselines::BaselineEvaluator` (comparator profiles) are thin
/// wrappers over this, differing only in the function that executes a
/// derived [`JobGraph`](crate::graph::JobGraph) — so their request
/// handling (value shortcuts, strict derivation, telemetry) cannot
/// drift apart.
pub struct ClientCore {
    inner: Runtime,
    setup: ClusterSetup,
    task_compute_us: Time,
    reports: ReportLog,
}

/// How a core executes one derived graph (e.g. `run_fix` with a config,
/// or `run_baseline` with a profile).
pub type GraphRunner<'a> = &'a dyn Fn(&ClusterSetup, &crate::graph::JobGraph) -> RunReport;

impl ClientCore {
    /// Validates `setup` and builds the embedded node.
    pub fn new(
        backend: &'static str,
        setup: ClusterSetup,
        task_compute_us: Time,
        provenance: bool,
    ) -> Result<ClientCore> {
        setup
            .validate()
            .map_err(|message| Error::Backend { backend, message })?;
        let mut rt = Runtime::builder();
        if provenance {
            rt = rt.with_provenance();
        }
        Ok(ClientCore {
            inner: rt.build(),
            setup,
            task_compute_us,
            reports: ReportLog::new(),
        })
    }

    /// The embedded Fix node holding objects and memoized relations.
    pub fn inner(&self) -> &Runtime {
        &self.inner
    }

    /// The simulated cluster description.
    pub fn setup(&self) -> &ClusterSetup {
        &self.setup
    }

    /// Reports of every simulated run so far, in submission order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports.all()
    }

    /// The most recent simulated run, if any.
    pub fn last_report(&self) -> Option<RunReport> {
        self.reports.last()
    }

    /// Total simulated wall-clock spent across all runs, in µs.
    pub fn total_simulated_us(&self) -> Time {
        self.reports.total_makespan_us()
    }

    /// Derives the (not-yet-memoized) dataflow of `roots`, executes it
    /// with `run`, and records the report; `strict` additionally derives
    /// the deep-force phase of value roots. A batch with no runnable
    /// tasks (all values / all memoized) records nothing.
    fn simulate(&self, roots: &[Handle], strict: bool, run: GraphRunner<'_>) {
        let Some(graph) = derive_job_graph(
            &self.inner,
            roots,
            strict,
            &self.setup.workers,
            self.task_compute_us,
        ) else {
            return;
        };
        self.reports.push(run(&self.setup, &graph));
    }

    /// [`Evaluator::eval`] over the core: simulate, then evaluate for
    /// real on the embedded node.
    pub fn eval_with(&self, handle: Handle, run: GraphRunner<'_>) -> Result<Handle> {
        if handle.is_value() {
            return Ok(handle);
        }
        self.simulate(&[handle], false, run);
        self.inner.eval(handle)
    }

    /// [`Evaluator::eval_strict`] over the core. Even a value root can
    /// hold work: deep-forcing runs the thunks and encodes nested inside
    /// its trees, so the strict derivation walks those too.
    pub fn eval_strict_with(&self, handle: Handle, run: GraphRunner<'_>) -> Result<Handle> {
        self.simulate(&[handle], true, run);
        self.inner.eval_strict(handle)
    }

    /// [`Evaluator::eval_many`] over the core: one simulated run serves
    /// the whole batch (the cluster sees the union dataflow and overlaps
    /// everything it can).
    pub fn eval_many_with(&self, handles: &[Handle], run: GraphRunner<'_>) -> Vec<Result<Handle>> {
        self.simulate(handles, false, run);
        self.inner.eval_many(handles)
    }
}

/// A Fix client whose evaluations are served by the simulated
/// distributed engine.
///
/// Implements the whole `fix_core::api` trait family; see the module
/// docs for the execution model and [`ClusterClient::reports`] for the
/// simulated-run telemetry.
///
/// # Examples
///
/// ```
/// use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
/// use fix_core::data::Blob;
/// use fix_core::limits::ResourceLimits;
/// use std::sync::Arc;
///
/// let cc = fix_cluster::ClusterClient::builder().build().unwrap();
/// let add = cc.register_native("add", Arc::new(|ctx| {
///     let a = ctx.arg_blob(0)?.as_u64().unwrap();
///     let b = ctx.arg_blob(1)?.as_u64().unwrap();
///     ctx.host.create_blob((a + b).to_le_bytes().to_vec())
/// }));
/// let thunk = cc.apply(
///     ResourceLimits::default_limits(),
///     add,
///     &[cc.put_blob(Blob::from_u64(1)), cc.put_blob(Blob::from_u64(2))],
/// ).unwrap();
/// let result = cc.eval(thunk).unwrap();
/// assert_eq!(cc.get_u64(result).unwrap(), 3);
/// // The evaluation also produced a simulated cluster run:
/// assert_eq!(cc.last_report().unwrap().tasks_run, 1);
/// ```
pub struct ClusterClient {
    core: ClientCore,
    cfg: FixConfig,
}

impl ClusterClient {
    /// Starts building a client.
    pub fn builder() -> ClusterClientBuilder {
        ClusterClientBuilder::default()
    }

    /// The embedded Fix node that holds this client's objects and
    /// memoized relations.
    pub fn inner(&self) -> &Runtime {
        self.core.inner()
    }

    /// The simulated cluster description.
    pub fn setup(&self) -> &ClusterSetup {
        self.core.setup()
    }

    /// The engine configuration.
    pub fn config(&self) -> &FixConfig {
        &self.cfg
    }

    /// Reports of every simulated run so far, in submission order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.core.reports()
    }

    /// The most recent simulated run, if any.
    pub fn last_report(&self) -> Option<RunReport> {
        self.core.last_report()
    }

    /// Total simulated wall-clock spent across all runs, in µs.
    pub fn total_simulated_us(&self) -> Time {
        self.core.total_simulated_us()
    }

    /// The Fix engine over this client's cluster, as a graph runner.
    fn runner(&self) -> impl Fn(&ClusterSetup, &crate::graph::JobGraph) -> RunReport + '_ {
        |setup, graph| run_fix(setup, graph, &self.cfg)
    }
}

/// Derives the cluster dataflow of `roots` from a node's objects and
/// memoized relations: one task per unevaluated thunk, dependency edges
/// along encodes, input objects for accessible definition data
/// (scattered deterministically over `workers` by content hash). With
/// `strict`, value roots are also deep-walked — the thunks and encodes
/// nested inside their trees become tasks too, modeling the force phase
/// of a strict evaluation.
///
/// Returns `None` when nothing needs to run — every root is a value or
/// fully memoized. Shared by [`ClusterClient`] and the baseline
/// evaluators in `fix-baselines`, so Fix and its comparators are
/// costed over the *same* derived graphs.
pub fn derive_job_graph(
    rt: &Runtime,
    roots: &[Handle],
    strict: bool,
    workers: &[NodeId],
    task_compute_us: Time,
) -> Option<crate::graph::JobGraph> {
    if workers.is_empty() {
        // No placement targets: nothing can run (callers validate their
        // setups up front; this keeps the shared helper panic-free).
        return None;
    }
    let mut d = Deriver {
        rt,
        builder: JobGraphBuilder::new(),
        tasks: HashMap::new(),
        objects: HashMap::new(),
        workers,
        compute_us: task_compute_us,
        task_count: 0,
    };
    for &root in roots {
        // Derivation failures (e.g. a definition tree missing from
        // storage) surface as semantic errors from the real evaluation;
        // the simulation keeps whatever subgraph was derived before the
        // failure, so telemetry for a malformed root is approximate, not
        // absent.
        let _ = d.task_for(root);
        if strict {
            let mut seen = std::collections::HashSet::new();
            let _ = d.force_tasks(root, &mut seen);
        }
    }
    if d.task_count == 0 {
        return None;
    }
    Some(d.builder.build())
}

/// Walks Fix objects into a [`JobGraph`]: one task per unevaluated
/// thunk, dependency edges along strict/shallow encodes, input objects
/// for the accessible data in each definition tree.
struct Deriver<'a> {
    rt: &'a Runtime,
    builder: JobGraphBuilder,
    /// Thunk handle → derived task (content addressing deduplicates
    /// shared sub-computations, mirroring the scheduler's job identity).
    tasks: HashMap<Handle, TaskId>,
    /// Data payload → graph object.
    objects: HashMap<Handle, ObjectId>,
    workers: &'a [NodeId],
    compute_us: Time,
    task_count: usize,
}

impl<'a> Deriver<'a> {
    /// The node a stored object "lives on": scattered deterministically
    /// by content hash, modeling content-addressed placement across the
    /// cluster.
    fn home_node(&self, h: Handle) -> NodeId {
        let scatter = h.digest().map(|d| d[0]).unwrap_or(0);
        self.workers[(scatter as usize) % self.workers.len()]
    }

    /// Bytes that must move to make `h` resident (its transfer size).
    fn transfer_size(h: Handle) -> u64 {
        match h.kind() {
            Kind::Object(DataType::Tree) | Kind::Ref(DataType::Tree) => 32 * h.size(),
            _ => h.size(),
        }
    }

    fn object_for(&mut self, h: Handle) -> Option<ObjectId> {
        if h.is_literal() {
            return None; // Literals ride inside handles; nothing moves.
        }
        let key = match h.kind() {
            Kind::Ref(_) => h.as_object_handle(),
            _ => h,
        };
        if let Some(&o) = self.objects.get(&key) {
            return Some(o);
        }
        let node = self.home_node(key);
        let o = self.builder.object_at(Self::transfer_size(key), &[node]);
        self.objects.insert(key, o);
        Some(o)
    }

    /// Derives the task computing `h`, or `None` when nothing needs to
    /// run (values, and thunks/encodes whose result is already
    /// memoized).
    fn task_for(&mut self, h: Handle) -> Result<Option<TaskId>> {
        match h.kind() {
            Kind::Object(_) | Kind::Ref(_) => Ok(None),
            // An encode's work is evaluating the thunk it wraps; the
            // memo check happens there.
            Kind::Encode(..) => self.task_for(h.encoded_thunk()?),
            Kind::Thunk(kind) => {
                if let Some(&t) = self.tasks.get(&h) {
                    return Ok(Some(t));
                }
                if self.rt.cache().get(Relation::Eval, h).is_some() {
                    return Ok(None); // Already computed: pay for results.
                }
                let def = h.thunk_definition()?;
                let mut spec = TaskSpec {
                    inputs: Vec::new(),
                    deps: Vec::new(),
                    compute_us: self.compute_us,
                    cores: 1,
                    ram: 64 << 20,
                    output_size: 8,
                    output_hint: None,
                    func: def
                        .digest()
                        .map(|d| u32::from_le_bytes(d[..4].try_into().expect("4 bytes")))
                        .unwrap_or(0),
                };
                spec.inputs.extend(self.object_for(def));
                match kind {
                    ThunkKind::Application => {
                        if let Ok(tree) = self.rt.get_tree(def) {
                            for &e in tree.entries() {
                                match e.kind() {
                                    Kind::Encode(..) => {
                                        if let Some(t) = self.task_for(e)? {
                                            spec.deps.push(t);
                                        } else if let Some(r) =
                                            self.rt.cache().get(Relation::Eval, e.encoded_thunk()?)
                                        {
                                            // Memoized dependency: its
                                            // result is data to fetch,
                                            // not work to schedule.
                                            spec.inputs.extend(self.object_for(r));
                                        }
                                    }
                                    // Accessible data is in the minimum
                                    // repository; Refs contribute metadata
                                    // only and bare Thunks are lazy.
                                    Kind::Object(_) => {
                                        spec.inputs.extend(self.object_for(e));
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    ThunkKind::Selection => {
                        if let Ok(tree) = self.rt.get_tree(def) {
                            if let Some(target) = tree.get(0) {
                                match target.kind() {
                                    Kind::Thunk(_) | Kind::Encode(..) => {
                                        if let Some(t) = self.task_for(target)? {
                                            spec.deps.push(t);
                                        } else {
                                            // Memoized dependency: its
                                            // result is data to fetch,
                                            // mirroring the Application
                                            // branch.
                                            let thunk = match target.kind() {
                                                Kind::Encode(..) => target.encoded_thunk()?,
                                                _ => target,
                                            };
                                            if let Some(r) =
                                                self.rt.cache().get(Relation::Eval, thunk)
                                            {
                                                spec.inputs.extend(self.object_for(r));
                                            }
                                        }
                                    }
                                    Kind::Object(_) => {
                                        spec.inputs.extend(self.object_for(target));
                                    }
                                    Kind::Ref(_) => {}
                                }
                            }
                        }
                    }
                    ThunkKind::Identification => {
                        // The definition is the identified datum itself.
                    }
                }
                let t = self.builder.task(spec);
                self.task_count += 1;
                self.tasks.insert(h, t);
                Ok(Some(t))
            }
        }
    }

    /// The force phase of a strict evaluation: walks a value's trees and
    /// derives a task for every nested thunk/encode (deep-forcing runs
    /// them all). Ref promotion moves data but runs no procedure, so it
    /// contributes no task.
    fn force_tasks(
        &mut self,
        h: Handle,
        seen: &mut std::collections::HashSet<Handle>,
    ) -> Result<()> {
        if !seen.insert(h) {
            return Ok(());
        }
        match h.kind() {
            Kind::Thunk(_) | Kind::Encode(..) => {
                self.task_for(h)?;
            }
            Kind::Object(DataType::Tree) => {
                if let Ok(tree) = self.rt.get_tree(h) {
                    for &e in tree.entries() {
                        self.force_tasks(e, seen)?;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// The One Fix API.
// ----------------------------------------------------------------------

impl ObjectApi for ClusterClient {
    fn put_blob(&self, blob: Blob) -> Handle {
        self.inner().put_blob(blob)
    }

    fn put_tree(&self, tree: Tree) -> Handle {
        self.inner().put_tree(tree)
    }

    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.inner().get_blob(handle)
    }

    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.inner().get_tree(handle)
    }

    fn contains(&self, handle: Handle) -> bool {
        self.inner().store().contains(handle)
    }
}

impl InvocationApi for ClusterClient {
    fn register_native(&self, name: &str, f: NativeFn) -> Handle {
        self.inner().register_native(name, f)
    }
}

impl Evaluator for ClusterClient {
    fn eval(&self, handle: Handle) -> Result<Handle> {
        self.core.eval_with(handle, &self.runner())
    }

    fn eval_strict(&self, handle: Handle) -> Result<Handle> {
        self.core.eval_strict_with(handle, &self.runner())
    }

    fn eval_many(&self, handles: &[Handle]) -> Vec<Result<Handle>> {
        self.core.eval_many_with(handles, &self.runner())
    }

    fn footprint(&self, thunk: Handle) -> Result<Footprint> {
        self.inner().footprint(thunk)
    }

    fn footprint_many(&self, thunks: &[Handle]) -> Result<Footprint> {
        self.inner().footprint_many(thunks)
    }

    fn procedures_run(&self) -> u64 {
        self.inner().procedures_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::limits::ResourceLimits;
    use std::sync::Arc;

    fn limits() -> ResourceLimits {
        ResourceLimits::default_limits()
    }

    fn client() -> ClusterClient {
        ClusterClient::builder().build().unwrap()
    }

    fn register_add(cc: &ClusterClient) -> Handle {
        cc.register_native(
            "add",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().unwrap();
                let b = ctx.arg_blob(1)?.as_u64().unwrap();
                ctx.host
                    .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
            }),
        )
    }

    #[test]
    fn builder_rejects_broken_setups() {
        let no_workers = ClusterSetup {
            specs: vec![NodeSpec::default()],
            net: NetConfig::default(),
            workers: vec![],
            client: None,
        };
        let err = ClusterClient::builder().setup(no_workers).build();
        assert!(matches!(err, Err(Error::Backend { .. })));

        let missing_spec = ClusterSetup::workers_only(0, NodeSpec::default(), NetConfig::default());
        let mut missing_spec = missing_spec;
        missing_spec.workers = vec![NodeId(3)];
        assert!(ClusterClient::builder()
            .setup(missing_spec)
            .build()
            .is_err());
    }

    #[test]
    fn evaluates_and_reports() {
        let cc = client();
        let add = register_add(&cc);
        let thunk = cc
            .apply(
                limits(),
                add,
                &[
                    cc.put_blob(Blob::from_u64(30)),
                    cc.put_blob(Blob::from_u64(12)),
                ],
            )
            .unwrap();
        let out = cc.eval(thunk).unwrap();
        assert_eq!(cc.get_u64(out).unwrap(), 42);
        let report = cc.last_report().unwrap();
        assert_eq!(report.tasks_run, 1);
        assert!(report.makespan_us > 0);
    }

    #[test]
    fn memoized_requests_ship_no_tasks() {
        let cc = client();
        let add = register_add(&cc);
        let thunk = cc
            .apply(
                limits(),
                add,
                &[
                    cc.put_blob(Blob::from_u64(1)),
                    cc.put_blob(Blob::from_u64(2)),
                ],
            )
            .unwrap();
        cc.eval(thunk).unwrap();
        let runs_before = cc.reports().len();
        cc.eval(thunk).unwrap();
        assert_eq!(
            cc.reports().len(),
            runs_before,
            "a memoized request must not launch a simulated run"
        );
    }

    #[test]
    fn dependencies_become_graph_edges() {
        let cc = client();
        let add = register_add(&cc);
        let one = cc.put_blob(Blob::from_u64(1));
        let inner = cc
            .apply(limits(), add, &[one, cc.put_blob(Blob::from_u64(2))])
            .unwrap();
        let outer = cc
            .apply(limits(), add, &[inner.strict().unwrap(), one])
            .unwrap();
        let out = cc.eval(outer).unwrap();
        assert_eq!(cc.get_u64(out).unwrap(), 4);
        // Two applications: the inner add and the outer add.
        assert_eq!(cc.last_report().unwrap().tasks_run, 2);
    }

    #[test]
    fn batch_is_one_simulated_run() {
        let cc = client();
        let add = register_add(&cc);
        let thunks: Vec<Handle> = (0..8u64)
            .map(|i| {
                cc.apply(
                    limits(),
                    add,
                    &[
                        cc.put_blob(Blob::from_u64(i)),
                        cc.put_blob(Blob::from_u64(1)),
                    ],
                )
                .unwrap()
            })
            .collect();
        let results = cc.eval_many(&thunks);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(cc.get_u64(*r.as_ref().unwrap()).unwrap(), i as u64 + 1);
        }
        assert_eq!(cc.reports().len(), 1, "one batch, one cluster run");
        assert_eq!(cc.last_report().unwrap().tasks_run, 8);
    }

    #[test]
    fn strict_eval_of_a_value_root_reports_the_force_phase() {
        use fix_core::data::Tree;
        let cc = client();
        let add = register_add(&cc);
        // A *value* tree whose entries are strict encodes of thunks:
        // eval() would return it unchanged, but eval_strict runs both
        // nested adds — and the telemetry must show that work.
        let t1 = cc
            .apply(
                limits(),
                add,
                &[
                    cc.put_blob(Blob::from_u64(1)),
                    cc.put_blob(Blob::from_u64(2)),
                ],
            )
            .unwrap();
        let t2 = cc
            .apply(
                limits(),
                add,
                &[
                    cc.put_blob(Blob::from_u64(3)),
                    cc.put_blob(Blob::from_u64(4)),
                ],
            )
            .unwrap();
        let value_root = cc.put_tree(Tree::from_handles(vec![
            t1.strict().unwrap(),
            t2.strict().unwrap(),
        ]));
        let forced = cc.eval_strict(value_root).unwrap();
        let tree = cc.get_tree(forced).unwrap();
        assert_eq!(cc.get_u64(tree.get(0).unwrap()).unwrap(), 3);
        assert_eq!(cc.get_u64(tree.get(1).unwrap()).unwrap(), 7);
        let report = cc.last_report().expect("force phase must be simulated");
        assert_eq!(report.tasks_run, 2);
    }

    #[test]
    fn agrees_with_the_single_node_runtime() {
        let on_runtime = {
            let rt = Runtime::builder().build();
            let add = rt.register_native(
                "add",
                Arc::new(|ctx| {
                    let a = ctx.arg_blob(0)?.as_u64().unwrap();
                    let b = ctx.arg_blob(1)?.as_u64().unwrap();
                    ctx.host
                        .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
                }),
            );
            let t = rt
                .apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(20)),
                        rt.put_blob(Blob::from_u64(22)),
                    ],
                )
                .unwrap();
            rt.eval(t).unwrap()
        };
        let on_cluster = {
            let cc = client();
            let add = register_add(&cc);
            let t = cc
                .apply(
                    limits(),
                    add,
                    &[
                        cc.put_blob(Blob::from_u64(20)),
                        cc.put_blob(Blob::from_u64(22)),
                    ],
                )
                .unwrap();
            cc.eval(t).unwrap()
        };
        assert_eq!(on_runtime, on_cluster, "content addressing is global truth");
    }

    /// The request-scoped submission path over the cluster: lifted onto
    /// `SubmitApi` by `BlockingOffload`, the client honors strict mode,
    /// priority classes, deadline expiry, and cancellation — while the
    /// simulated substrate keeps recording runs for work it executes.
    #[test]
    fn offloaded_submission_honors_request_options() {
        use fix_core::api::{BlockingOffload, SubmitApi, SubmitOptions};
        use std::sync::Arc;

        let cc = Arc::new(client());
        let off = BlockingOffload::from_arc(Arc::clone(&cc));
        let add = register_add(&cc);
        let mint = |a: u64| {
            off.apply(
                limits(),
                add,
                &[
                    off.put_blob(Blob::from_u64(a)),
                    off.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        };

        // Strict submission agrees with eval_strict (one cluster run).
        let strict = off.wait_batch(off.submit_with(&[mint(41)], SubmitOptions::strict()));
        assert_eq!(
            *strict[0].as_ref().unwrap(),
            off.eval_strict(mint(41)).unwrap()
        );
        let runs_after_strict = cc.reports().len();
        assert!(runs_after_strict > 0, "strict work shipped cluster runs");

        // An expired deadline withdraws the batch before the cluster
        // ever sees it: no new simulated run is recorded.
        off.advance_virtual_clock(1_000);
        let expired = off
            .wait_batch(off.submit_with(&[mint(77)], SubmitOptions::default().with_deadline(500)));
        assert!(matches!(
            expired[0],
            Err(fix_core::Error::DeadlineExceeded { deadline_us: 500 })
        ));
        assert_eq!(
            cc.reports().len(),
            runs_after_strict,
            "dead work ships nothing"
        );

        // Cancel-before-dispatch likewise never reaches the simulator.
        off.submit_many(&[mint(99)]).cancel();
        // (The pool may or may not have started it; give it no chance —
        // the cancel marked the slot, so at worst one run is recorded.)
        let resubmitted = off.wait_batch(off.submit_many(&[mint(99)]));
        assert_eq!(off.get_u64(*resubmitted[0].as_ref().unwrap()).unwrap(), 100);
    }
}
