//! Run reports: what an engine hands back after executing a job graph.

use fix_netsim::{CpuReport, Time};

/// The outcome of one simulated job execution.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// End-to-end duration (submission to last result), in µs.
    pub makespan_us: Time,
    /// CPU-state aggregation over the worker nodes (paper Fig. 8).
    pub cpu: CpuReport,
    /// Total bytes moved over the network.
    pub bytes_moved: u64,
    /// Number of task executions.
    pub tasks_run: u64,
}

impl RunReport {
    /// Makespan in seconds (for table printing).
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_us as f64 / 1e6
    }

    /// Task throughput in tasks/second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.tasks_run as f64 * 1e6 / self.makespan_us as f64
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} s, {} tasks ({:.0} tasks/s), {:.1} MiB moved, CPU waiting {:.0}%",
            self.makespan_secs(),
            self.tasks_run,
            self.throughput(),
            self.bytes_moved as f64 / (1 << 20) as f64,
            self.cpu.waiting_percent()
        )
    }
}
