//! Run reports: what an engine hands back after executing a job graph.

use fix_netsim::{CpuReport, Time};

/// The outcome of one simulated job execution.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// End-to-end duration (submission to last result), in µs.
    pub makespan_us: Time,
    /// CPU-state aggregation over the worker nodes (paper Fig. 8).
    pub cpu: CpuReport,
    /// Total bytes moved over the network.
    pub bytes_moved: u64,
    /// Number of task executions.
    pub tasks_run: u64,
}

impl RunReport {
    /// Makespan in seconds (for table printing).
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_us as f64 / 1e6
    }

    /// Task throughput in tasks/second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.tasks_run as f64 * 1e6 / self.makespan_us as f64
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} s, {} tasks ({:.0} tasks/s), {:.1} MiB moved, CPU waiting {:.0}%",
            self.makespan_secs(),
            self.tasks_run,
            self.throughput(),
            self.bytes_moved as f64 / (1 << 20) as f64,
            self.cpu.waiting_percent()
        )
    }
}

/// Thread-safe accumulator of simulated [`RunReport`]s, in submission
/// order.
///
/// Shared plumbing for the One-Fix-API clients ([`crate::ClusterClient`]
/// and `fix_baselines::BaselineEvaluator`), so their telemetry surfaces
/// cannot drift apart.
#[derive(Default)]
pub struct ReportLog(std::sync::Mutex<Vec<RunReport>>);

impl ReportLog {
    /// Creates an empty log.
    pub fn new() -> ReportLog {
        ReportLog::default()
    }

    /// Appends one run's report.
    pub fn push(&self, report: RunReport) {
        self.0.lock().expect("report log lock").push(report);
    }

    /// Every report so far, in submission order.
    pub fn all(&self) -> Vec<RunReport> {
        self.0.lock().expect("report log lock").clone()
    }

    /// The most recent report, if any.
    pub fn last(&self) -> Option<RunReport> {
        self.0.lock().expect("report log lock").last().copied()
    }

    /// Total simulated wall-clock across all runs, in µs.
    pub fn total_makespan_us(&self) -> Time {
        self.0
            .lock()
            .expect("report log lock")
            .iter()
            .map(|r| r.makespan_us)
            .sum()
    }
}
