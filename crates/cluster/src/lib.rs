//! `fix-cluster`: the distributed Fixpoint execution engine, simulated.
//!
//! Implements the paper's §4.2.2 over the `fix-netsim` substrate: a
//! decentralized, dataflow-aware scheduler in which every invocation's
//! data footprint is known before launch (thanks to I/O externalization),
//! placement minimizes data movement over a passively-advanced location
//! view, and physical resources are bound late — after dependencies have
//! arrived. Both mechanisms can be ablated ([`Placement::Random`],
//! [`Binding::Early`]) to regenerate the comparisons in Figs. 8a and 8b.
//!
//! Workloads are expressed as [`JobGraph`]s (see `fix-workloads` for the
//! paper's workload generators); baseline engines over the *same* graphs
//! and simulator live in `fix-baselines`.
//!
//! Since the One Fix API refactor the engine is also reachable through
//! the backend-agnostic `fix_core::api` traits: [`ClusterClient`]
//! implements `ObjectApi`/`InvocationApi`/`Evaluator`, deriving each
//! request's dataflow into a [`JobGraph`] and executing it with
//! [`run_fix`] — so any generic workload doubles as a cluster benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod density;
mod engine;
mod graph;
mod report;

pub use client::{derive_job_graph, ClientCore, ClusterClient, ClusterClientBuilder, GraphRunner};
pub use density::{
    simulate as simulate_density, simulate_profiles as simulate_density_profiles, Admission,
    AppProfile, DensityParams, DensityReport, Phase,
};
pub use engine::{run_fix, Binding, ClusterSetup, FixConfig, Placement};
pub use graph::{small_task, JobGraph, JobGraphBuilder, ObjectId, ObjectSpec, TaskId, TaskSpec};
pub use report::{ReportLog, RunReport};

#[cfg(test)]
mod tests {
    use super::*;
    use fix_netsim::{NetConfig, NodeId, NodeSpec, MS, SEC};

    fn ten_node_setup() -> ClusterSetup {
        ClusterSetup::workers_only(10, NodeSpec::default(), NetConfig::default())
    }

    /// A map workload: one task per input chunk, chunks scattered.
    fn scattered_map(n_chunks: usize, chunk_size: u64, compute_us: u64) -> JobGraph {
        let mut b = JobGraphBuilder::new();
        for i in 0..n_chunks {
            let node = NodeId(i % 10);
            let o = b.object_at(chunk_size, &[node]);
            let mut t = small_task(compute_us, 8);
            t.inputs.push(o);
            b.task(t);
        }
        b.build()
    }

    #[test]
    fn locality_placement_avoids_all_movement() {
        let setup = ten_node_setup();
        let graph = scattered_map(100, 10 << 20, 5_000);
        let report = run_fix(&setup, &graph, &FixConfig::default());
        assert_eq!(report.bytes_moved, 0, "chunks should be processed in place");
        assert_eq!(report.tasks_run, 100);
    }

    #[test]
    fn random_placement_moves_data_and_is_slower() {
        let setup = ten_node_setup();
        let graph = scattered_map(100, 10 << 20, 5_000);
        let local = run_fix(&setup, &graph, &FixConfig::default());
        let random = run_fix(
            &setup,
            &graph,
            &FixConfig {
                placement: Placement::Random,
                ..FixConfig::default()
            },
        );
        assert!(random.bytes_moved > 0);
        assert!(
            random.makespan_us > local.makespan_us,
            "random {} vs local {}",
            random.makespan_us,
            local.makespan_us
        );
    }

    #[test]
    fn late_binding_avoids_cpu_waiting() {
        // Fig. 8a in miniature: inputs behind a 150 ms storage node.
        let storage = NodeId(1);
        let net = NetConfig::default().with_extra_latency(storage, 150 * MS);
        let setup = ClusterSetup {
            specs: vec![
                NodeSpec {
                    cores: 32,
                    ram_bytes: 64 << 30,
                },
                NodeSpec::default(),
            ],
            net,
            workers: vec![NodeId(0)],
            client: None,
        };
        let mut b = JobGraphBuilder::new();
        for _ in 0..64 {
            let o = b.object_at(64 << 10, &[storage]);
            let mut t = small_task(100, 8);
            t.ram = 1 << 30;
            t.inputs.push(o);
            b.task(t);
        }
        let graph = b.build();

        let late = run_fix(&setup, &graph, &FixConfig::default());
        let early = run_fix(
            &setup,
            &graph,
            &FixConfig {
                binding: Binding::Early,
                ..FixConfig::default()
            },
        );
        // Late binding: fetches overlap, cores only claimed to compute.
        assert!(late.cpu.waiting_core_us < early.cpu.waiting_core_us);
        assert!(
            late.makespan_us < early.makespan_us,
            "late {} vs early {}",
            late.makespan_us,
            early.makespan_us
        );
        // Early binding holds cores during the 150 ms fetch.
        assert!(early.cpu.waiting_core_us >= 32 * 150 * MS);
    }

    #[test]
    fn chain_with_remote_client_pays_one_round_trip() {
        // Fig. 7b: Fix ships the whole 500-step chain in one go.
        let client = NodeId(1);
        let rtt_half = 10_650; // 21.3 ms RTT
        let net = NetConfig::default().with_extra_latency(client, rtt_half);
        let setup = ClusterSetup {
            specs: vec![NodeSpec::default(), NodeSpec::default()],
            net,
            workers: vec![NodeId(0)],
            client: Some(client),
        };
        // The chain description (code + input) ships with the submission
        // message — Fix bundles dependencies with invocations, so there is
        // no separate program fetch.
        let mut b = JobGraphBuilder::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..500 {
            let mut t = small_task(1, 8);
            if let Some(p) = prev {
                t.deps.push(p);
            }
            prev = Some(b.task(t));
        }
        let graph = b.build();
        let report = run_fix(&setup, &graph, &FixConfig::default());
        // ~ 1 RTT (ship + return) + 500 × (overhead + compute).
        let rtt = 2 * (rtt_half + 50);
        assert!(report.makespan_us > rtt);
        assert!(
            report.makespan_us < rtt + 10 * MS,
            "chain took {} µs",
            report.makespan_us
        );
    }

    #[test]
    fn output_hint_attracts_task_to_consumer_data() {
        // Pipeline g(f(x)) where f's output is hinted huge and g also
        // consumes a huge object on node 7: f should run on node 7 so the
        // intermediate never crosses the network.
        let setup = ten_node_setup();
        let mut b = JobGraphBuilder::new();
        let x = b.object_at(1 << 10, &[NodeId(2)]); // f's input: tiny
        let z = b.object_at(8 << 30, &[NodeId(7)]); // g's other input: 8 GiB
        let mut f = small_task(1_000, 4 << 30);
        f.inputs.push(x);
        f.output_hint = Some(4 << 30); // f's output: hinted 4 GiB
        let f_id = b.task(f);
        let mut g = small_task(1_000, 8);
        g.inputs.push(z);
        g.deps.push(f_id);
        b.task(g);
        let graph = b.build();
        let report = run_fix(&setup, &graph, &FixConfig::default());
        // Only x (1 KiB) should move; not the 4 GiB intermediate.
        assert!(
            report.bytes_moved <= 1 << 10,
            "moved {} bytes",
            report.bytes_moved
        );
    }

    #[test]
    fn reduction_tree_completes() {
        // count-string shape: map over chunks, then binary merge.
        let setup = ten_node_setup();
        let mut b = JobGraphBuilder::new();
        let mut layer: Vec<TaskId> = (0..32)
            .map(|i| {
                let o = b.object_at(100 << 20, &[NodeId(i % 10)]);
                let mut t = small_task(20_000, 8);
                t.inputs.push(o);
                b.task(t)
            })
            .collect();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let mut m = small_task(50, 8);
                    m.deps = vec![pair[0], pair[1]];
                    next.push(b.task(m));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let graph = b.build();
        let report = run_fix(&setup, &graph, &FixConfig::default());
        assert_eq!(report.tasks_run, 32 + 31);
        // Merge outputs are 8-byte literals: trivial movement only.
        assert!(report.bytes_moved < 1 << 10);
        assert!(report.makespan_us < SEC);
    }

    #[test]
    fn core_contention_serializes() {
        // 64 one-core tasks of 1 ms each on a single 32-core node: two
        // full waves -> ≈ 2 ms.
        let setup = ClusterSetup::workers_only(1, NodeSpec::default(), NetConfig::default());
        let mut b = JobGraphBuilder::new();
        for _ in 0..64 {
            b.task(small_task(MS, 8));
        }
        let graph = b.build();
        let report = run_fix(&setup, &graph, &FixConfig::default());
        assert!(report.makespan_us >= 2 * MS);
        assert!(report.makespan_us < 3 * MS);
    }

    #[test]
    fn concurrent_fetches_of_one_object_are_deduplicated() {
        let setup = ClusterSetup::workers_only(2, NodeSpec::default(), NetConfig::default());
        let mut b = JobGraphBuilder::new();
        // One 1 GiB object on node 1; many tasks that all need it but must
        // run on node 0 (their other input is a huge pinned object there).
        let shared = b.object_at(1 << 30, &[NodeId(1)]);
        let anchor = b.object_at(16 << 30, &[NodeId(0)]);
        for _ in 0..8 {
            let mut t = small_task(1_000, 8);
            t.inputs.push(shared);
            t.inputs.push(anchor);
            b.task(t);
        }
        let graph = b.build();
        let report = run_fix(&setup, &graph, &FixConfig::default());
        // The shared gigabyte moves once, not eight times.
        assert_eq!(report.bytes_moved, 1 << 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let setup = ten_node_setup();
        let graph = scattered_map(50, 1 << 20, 500);
        let cfg = FixConfig {
            placement: Placement::Random,
            seed: 7,
            ..FixConfig::default()
        };
        let a = run_fix(&setup, &graph, &cfg);
        let b = run_fix(&setup, &graph, &cfg);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.bytes_moved, b.bytes_moved);
    }
}
