//! Ultra-high-density multitenancy (paper §6): packing applications by
//! their *time-varying* memory footprint.
//!
//! Status-quo serverless platforms allocate a fixed slice per function
//! instance: the instance holds its peak RAM for its whole lifetime,
//! because the platform cannot see inside the opaque process. Fix
//! invocations, by contrast, declare the exact footprint of each stage
//! before it runs — so the platform can admit an application knowing
//! the precise RAM-vs-time curve it will follow, and pack the valleys
//! of one tenant into the peaks of another.
//!
//! This module models the difference with an admission-control
//! simulation over a single RAM pool. Applications arrive on a fixed
//! cadence; each follows a phase profile (duration, RAM). Admission
//! either reserves the peak for the whole lifetime
//! ([`Admission::Reservation`]) or reserves each phase's actual need
//! ([`Admission::FootprintAware`]). Both admit greedily in arrival
//! order with full knowledge of the timeline — the comparison isolates
//! exactly one variable: what the platform can *see*.

use std::collections::BTreeMap;

/// One stage of an application's life: how long, and how much RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Duration in µs.
    pub duration_us: u64,
    /// RAM needed during this phase, in bytes.
    pub ram_bytes: u64,
}

/// An application's footprint profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppProfile {
    /// The phases, run back-to-back.
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// Peak RAM across phases.
    pub fn peak(&self) -> u64 {
        self.phases.iter().map(|p| p.ram_bytes).max().unwrap_or(0)
    }

    /// Total lifetime in µs.
    pub fn lifetime_us(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_us).sum()
    }

    /// RAM-time integral in byte-µs (what the app actually uses).
    pub fn ram_time(&self) -> u128 {
        self.phases
            .iter()
            .map(|p| p.duration_us as u128 * p.ram_bytes as u128)
            .sum()
    }

    /// A typical short-lived serverless invocation: small init, an I/O
    /// wait on thin memory, a fat compute burst, a small emit phase.
    /// Peak-to-average ratio ≈ 4, which is what footprint-aware packing
    /// converts into density.
    pub fn bursty_default() -> AppProfile {
        AppProfile {
            phases: vec![
                Phase {
                    duration_us: 10_000,
                    ram_bytes: 32 << 20,
                },
                Phase {
                    duration_us: 50_000,
                    ram_bytes: 8 << 20,
                },
                Phase {
                    duration_us: 20_000,
                    ram_bytes: 512 << 20,
                },
                Phase {
                    duration_us: 5_000,
                    ram_bytes: 64 << 20,
                },
            ],
        }
    }

    /// A deterministic per-tenant variation of [`bursty_default`]:
    /// phase durations scaled ±37 % by a hash of the index.
    ///
    /// Identical profiles on a uniform arrival cadence synchronize
    /// their peaks into convoys, which makes *every* admission model
    /// degenerate to wave-at-a-time behaviour; real tenant mixes are
    /// heterogeneous, and that heterogeneity is exactly what
    /// footprint-aware packing exploits.
    ///
    /// [`bursty_default`]: AppProfile::bursty_default
    pub fn bursty_jittered(index: usize) -> AppProfile {
        let mut profile = AppProfile::bursty_default();
        // SplitMix64-style scramble for a uniform, cheap jitter.
        let mut x = index as u64 ^ 0x9E37_79B9_7F4A_7C15;
        for phase in &mut profile.phases {
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (x >> 27);
            let jitter = 75 + x % 75; // 75..150 % of nominal.
            phase.duration_us = (phase.duration_us * jitter / 100).max(1_000);
        }
        profile
    }
}

/// What the admission controller can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Opaque instance: reserve peak RAM for the whole lifetime.
    Reservation,
    /// Fix: reserve each phase's declared footprint for its duration.
    FootprintAware,
}

/// Parameters of one density run.
#[derive(Debug, Clone)]
pub struct DensityParams {
    /// The node's RAM pool in bytes.
    pub ram_bytes: u64,
    /// Application arrival cadence in µs.
    pub arrival_interval_us: u64,
    /// Number of arriving applications.
    pub n_apps: usize,
    /// The (shared) footprint profile.
    pub profile: AppProfile,
}

impl Default for DensityParams {
    fn default() -> Self {
        DensityParams {
            ram_bytes: 8 << 30,
            arrival_interval_us: 1_000,
            n_apps: 512,
            profile: AppProfile::bursty_default(),
        }
    }
}

/// What a density run produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DensityReport {
    /// Applications admitted.
    pub admitted: usize,
    /// Applications rejected for lack of RAM.
    pub rejected: usize,
    /// Peak concurrently-resident applications.
    pub peak_resident: usize,
    /// Peak reserved RAM observed, in bytes.
    pub peak_reserved_bytes: u64,
    /// RAM actually used by admitted apps (byte-µs).
    pub ram_time_used: u128,
    /// RAM reserved for admitted apps (byte-µs) — the waste indicator.
    pub ram_time_reserved: u128,
}

impl DensityReport {
    /// Used/reserved, in percent: how much of what was set aside did
    /// real work.
    pub fn reservation_efficiency_percent(&self) -> f64 {
        if self.ram_time_reserved == 0 {
            return 100.0;
        }
        100.0 * self.ram_time_used as f64 / self.ram_time_reserved as f64
    }
}

/// The reservation an admission model makes for one app starting at
/// `t0`: a list of `(start, end, bytes)` intervals.
fn reservations(admission: Admission, profile: &AppProfile, t0: u64) -> Vec<(u64, u64, u64)> {
    match admission {
        Admission::Reservation => {
            vec![(t0, t0 + profile.lifetime_us(), profile.peak())]
        }
        Admission::FootprintAware => {
            let mut t = t0;
            profile
                .phases
                .iter()
                .map(|p| {
                    let iv = (t, t + p.duration_us, p.ram_bytes);
                    t += p.duration_us;
                    iv
                })
                .collect()
        }
    }
}

/// Runs the admission simulation over per-app profiles: app `i`
/// arrives at `i × arrival_interval_us`, is admitted if its whole
/// reservation fits under the pool at every instant, and is rejected
/// otherwise.
pub fn simulate_profiles(
    ram_bytes: u64,
    arrival_interval_us: u64,
    profiles: &[AppProfile],
    admission: Admission,
) -> DensityReport {
    // RAM usage timeline as deltas; admitted-apps timeline likewise.
    let mut ram_deltas: BTreeMap<u64, i128> = BTreeMap::new();
    let mut app_deltas: BTreeMap<u64, i64> = BTreeMap::new();
    let mut report = DensityReport {
        admitted: 0,
        rejected: 0,
        peak_resident: 0,
        peak_reserved_bytes: 0,
        ram_time_used: 0,
        ram_time_reserved: 0,
    };

    let fits = |deltas: &BTreeMap<u64, i128>, ivs: &[(u64, u64, u64)], cap: u64| -> bool {
        // Check max occupancy over the affected window by sweeping all
        // deltas up to the window end with the candidate added.
        let end = ivs.iter().map(|iv| iv.1).max().unwrap_or(0);
        let mut tentative = deltas.clone();
        for &(s, e, b) in ivs {
            *tentative.entry(s).or_default() += b as i128;
            *tentative.entry(e).or_default() -= b as i128;
        }
        let mut level: i128 = 0;
        for (&t, &d) in &tentative {
            if t >= end {
                break;
            }
            level += d;
            if level > cap as i128 {
                return false;
            }
        }
        true
    };

    for (i, profile) in profiles.iter().enumerate() {
        let t0 = i as u64 * arrival_interval_us;
        let ivs = reservations(admission, profile, t0);
        if fits(&ram_deltas, &ivs, ram_bytes) {
            for &(s, e, b) in &ivs {
                *ram_deltas.entry(s).or_default() += b as i128;
                *ram_deltas.entry(e).or_default() -= b as i128;
                report.ram_time_reserved += (e - s) as u128 * b as u128;
            }
            *app_deltas.entry(t0).or_default() += 1;
            *app_deltas.entry(t0 + profile.lifetime_us()).or_default() -= 1;
            report.ram_time_used += profile.ram_time();
            report.admitted += 1;
        } else {
            report.rejected += 1;
        }
    }

    let mut level: i128 = 0;
    for &d in ram_deltas.values() {
        level += d;
        report.peak_reserved_bytes = report.peak_reserved_bytes.max(level.max(0) as u64);
    }
    let mut apps: i64 = 0;
    for &d in app_deltas.values() {
        apps += d;
        report.peak_resident = report.peak_resident.max(apps.max(0) as usize);
    }
    report
}

/// [`simulate_profiles`] with one shared profile for every arrival.
pub fn simulate(params: &DensityParams, admission: Admission) -> DensityReport {
    let profiles = vec![params.profile.clone(); params.n_apps];
    simulate_profiles(
        params.ram_bytes,
        params.arrival_interval_us,
        &profiles,
        admission,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_arithmetic() {
        let p = AppProfile::bursty_default();
        assert_eq!(p.peak(), 512 << 20);
        assert_eq!(p.lifetime_us(), 85_000);
        assert!(p.ram_time() < p.peak() as u128 * p.lifetime_us() as u128);
    }

    #[test]
    fn footprint_awareness_packs_denser() {
        let params = DensityParams::default();
        let opaque = simulate(&params, Admission::Reservation);
        let fix = simulate(&params, Admission::FootprintAware);
        assert!(
            fix.admitted > opaque.admitted,
            "fix {} vs opaque {}",
            fix.admitted,
            opaque.admitted
        );
        assert!(fix.peak_resident >= opaque.peak_resident);
        // Footprint-aware reservations waste nothing by construction.
        assert_eq!(fix.ram_time_used, fix.ram_time_reserved);
        assert!(opaque.ram_time_reserved > opaque.ram_time_used);
    }

    #[test]
    fn reservation_efficiency_reflects_peak_to_average() {
        let params = DensityParams::default();
        let opaque = simulate(&params, Admission::Reservation);
        // bursty_default: ram_time/(peak × lifetime) ≈ 27 %.
        let eff = opaque.reservation_efficiency_percent();
        assert!((20.0..40.0).contains(&eff), "efficiency {eff}");
        let fix = simulate(&params, Admission::FootprintAware);
        assert_eq!(fix.reservation_efficiency_percent(), 100.0);
    }

    #[test]
    fn nothing_exceeds_the_pool() {
        for admission in [Admission::Reservation, Admission::FootprintAware] {
            let params = DensityParams {
                ram_bytes: 2 << 30,
                arrival_interval_us: 100,
                n_apps: 300,
                profile: AppProfile::bursty_default(),
            };
            let r = simulate(&params, admission);
            assert!(r.peak_reserved_bytes <= params.ram_bytes);
            assert_eq!(r.admitted + r.rejected, 300);
        }
    }

    #[test]
    fn flat_profiles_make_the_models_equal() {
        // With a constant footprint there is nothing to exploit.
        let params = DensityParams {
            profile: AppProfile {
                phases: vec![Phase {
                    duration_us: 50_000,
                    ram_bytes: 256 << 20,
                }],
            },
            ..DensityParams::default()
        };
        let a = simulate(&params, Admission::Reservation);
        let b = simulate(&params, Admission::FootprintAware);
        assert_eq!(a, b);
    }

    #[test]
    fn infinite_ram_admits_everyone() {
        let params = DensityParams {
            ram_bytes: u64::MAX / 4,
            ..DensityParams::default()
        };
        let r = simulate(&params, Admission::Reservation);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.admitted, params.n_apps);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = AppProfile::bursty_jittered(17);
        let b = AppProfile::bursty_jittered(17);
        assert_eq!(a, b);
        assert_ne!(a, AppProfile::bursty_jittered(18));
        let nominal = AppProfile::bursty_default();
        for (j, n) in a.phases.iter().zip(&nominal.phases) {
            assert_eq!(j.ram_bytes, n.ram_bytes, "jitter touches durations only");
            assert!(j.duration_us >= n.duration_us * 3 / 4);
            assert!(j.duration_us <= n.duration_us * 3 / 2);
        }
    }

    #[test]
    fn heterogeneous_tenants_amplify_the_density_gain() {
        // With identical profiles on a uniform cadence, peaks convoy and
        // both models degrade to wave-at-a-time admission. A realistic
        // mixed-tenant stream is where footprint knowledge pays: the
        // saturated pool should admit well over 2x more applications.
        let profiles: Vec<AppProfile> = (0..512).map(AppProfile::bursty_jittered).collect();
        let opaque = simulate_profiles(8 << 30, 1_000, &profiles, Admission::Reservation);
        let fix = simulate_profiles(8 << 30, 1_000, &profiles, Admission::FootprintAware);
        assert!(
            fix.admitted as f64 >= 2.0 * opaque.admitted as f64,
            "fix {} vs opaque {}",
            fix.admitted,
            opaque.admitted
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_profile() -> impl Strategy<Value = AppProfile> {
        proptest::collection::vec(
            (1u64..200_000, 1u64..(2 << 30)).prop_map(|(duration_us, ram_bytes)| Phase {
                duration_us,
                ram_bytes,
            }),
            1..5,
        )
        .prop_map(|phases| AppProfile { phases })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Admission soundness for arbitrary tenant mixes: the pool is
        /// never oversubscribed, every app is decided exactly once,
        /// footprint reservations waste nothing, and the peak-slice
        /// model reserves at least as much RAM-time per admitted app.
        #[test]
        fn admission_is_sound_for_any_mix(
            profiles in proptest::collection::vec(arb_profile(), 1..40),
            arrival_us in 1u64..50_000,
            pool_gib in 1u64..16,
        ) {
            let pool = pool_gib << 30;
            for admission in [Admission::Reservation, Admission::FootprintAware] {
                let r = simulate_profiles(pool, arrival_us, &profiles, admission);
                prop_assert_eq!(r.admitted + r.rejected, profiles.len());
                prop_assert!(r.peak_reserved_bytes <= pool);
                prop_assert!(r.ram_time_used <= r.ram_time_reserved);
                if admission == Admission::FootprintAware {
                    prop_assert_eq!(r.ram_time_used, r.ram_time_reserved);
                }
                // An app too big for the pool can never be admitted.
                if profiles.iter().all(|p| p.peak() > pool) {
                    prop_assert_eq!(r.admitted, 0);
                }
            }
        }

        /// With a single arriving app that fits, both models admit it
        /// and agree on usage.
        #[test]
        fn single_fitting_app_is_always_admitted(profile in arb_profile()) {
            let pool = profile.peak().max(1);
            for admission in [Admission::Reservation, Admission::FootprintAware] {
                let r = simulate_profiles(pool, 1, std::slice::from_ref(&profile), admission);
                prop_assert_eq!(r.admitted, 1);
                prop_assert_eq!(r.ram_time_used, profile.ram_time());
                prop_assert_eq!(r.peak_resident, 1);
            }
        }
    }
}
