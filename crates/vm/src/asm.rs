//! A small text assembler for FixVM modules.
//!
//! Guest procedures in the examples, tests, and workloads are written in
//! this assembly dialect (the paper writes its guests in C/Rust compiled
//! to Wasm; our equivalent toolchain step is this assembler).
//!
//! Syntax:
//!
//! ```text
//! ;; line comment (also "#")
//! func apply args=0 locals=2     ; first function is the entry point
//!   const 10
//!   local.set 0
//! loop:                          ; labels end with ':'
//!   local.get 0
//!   eqz
//!   jump_if done
//!   local.get 0
//!   const 1
//!   sub
//!   local.set 0
//!   jump loop
//! done:
//!   const 0                      ; handle-table index 0 = the input tree
//!   ret_handle
//! end
//! ```
//!
//! Operands may be decimal, hex (`0x2A`), or a single-quoted byte (`'a'`).
//! `call` takes a function name; jumps take label names.

use crate::isa::Instr;
use crate::module::{Function, Module};
use fix_core::error::{Error, Result};
use std::collections::HashMap;

fn err(line_no: usize, msg: impl Into<String>) -> Error {
    Error::Trap(format!("asm error at line {line_no}: {}", msg.into()))
}

fn parse_num(tok: &str, line_no: usize) -> Result<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| err(line_no, format!("bad hex '{tok}': {e}")))
    } else if tok.len() == 3 && tok.starts_with('\'') && tok.ends_with('\'') {
        Ok(tok.as_bytes()[1] as u64)
    } else {
        tok.parse::<u64>()
            .map_err(|e| err(line_no, format!("bad number '{tok}': {e}")))
    }
}

/// An unresolved instruction: either final, or a jump/call by name.
enum Pending {
    Done(Instr),
    Jump(&'static str, String, usize), // (kind, label, line)
    Call(String, usize),
}

struct FnBuilder {
    name: String,
    nargs: u16,
    nlocals: u16,
    pending: Vec<Pending>,
    labels: HashMap<String, u32>,
}

/// Assembles FixVM source text into a validated [`Module`].
///
/// # Examples
///
/// ```
/// let module = fix_vm::assemble(r#"
///     func apply args=0 locals=0
///       const 0
///       ret_handle
///     end
/// "#).unwrap();
/// assert_eq!(module.functions.len(), 1);
/// ```
pub fn assemble(source: &str) -> Result<Module> {
    let mut fns: Vec<FnBuilder> = Vec::new();
    let mut current: Option<FnBuilder> = None;

    for (i, raw_line) in source.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments.
        let line = raw_line
            .split(';')
            .next()
            .unwrap_or("")
            .split('#')
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }

        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("nonempty line");

        if head == "func" {
            if current.is_some() {
                return Err(err(line_no, "nested 'func' (missing 'end'?)"));
            }
            let name = tokens
                .next()
                .ok_or_else(|| err(line_no, "func needs a name"))?
                .to_string();
            let mut nargs = 0u16;
            let mut nlocals = 0u16;
            for tok in tokens {
                if let Some(v) = tok.strip_prefix("args=") {
                    nargs = v.parse().map_err(|_| err(line_no, "bad args="))?;
                } else if let Some(v) = tok.strip_prefix("locals=") {
                    nlocals = v.parse().map_err(|_| err(line_no, "bad locals="))?;
                } else {
                    return Err(err(line_no, format!("unknown func attribute '{tok}'")));
                }
            }
            // Locals always include the arguments.
            nlocals = nlocals.max(nargs);
            current = Some(FnBuilder {
                name,
                nargs,
                nlocals,
                pending: Vec::new(),
                labels: HashMap::new(),
            });
            continue;
        }

        if head == "end" {
            let f = current
                .take()
                .ok_or_else(|| err(line_no, "'end' outside of a function"))?;
            fns.push(f);
            continue;
        }

        let f = current
            .as_mut()
            .ok_or_else(|| err(line_no, "instruction outside of a function"))?;

        if let Some(label) = head.strip_suffix(':') {
            if f.labels
                .insert(label.to_string(), f.pending.len() as u32)
                .is_some()
            {
                return Err(err(line_no, format!("duplicate label '{label}'")));
            }
            continue;
        }

        let operand = tokens.next();
        if tokens.next().is_some() {
            return Err(err(line_no, "too many operands"));
        }
        let need = |op: Option<&str>| -> Result<String> {
            op.map(str::to_string)
                .ok_or_else(|| err(line_no, format!("'{head}' needs an operand")))
        };
        let no_operand = |instr: Instr| -> Result<Pending> {
            if operand.is_some() {
                Err(err(line_no, format!("'{head}' takes no operand")))
            } else {
                Ok(Pending::Done(instr))
            }
        };

        let pending = match head {
            "nop" => no_operand(Instr::Nop)?,
            "unreachable" => no_operand(Instr::Unreachable)?,
            "const" => Pending::Done(Instr::Const(parse_num(&need(operand)?, line_no)?)),
            "local.get" => {
                Pending::Done(Instr::LocalGet(parse_num(&need(operand)?, line_no)? as u16))
            }
            "local.set" => {
                Pending::Done(Instr::LocalSet(parse_num(&need(operand)?, line_no)? as u16))
            }
            "drop" => no_operand(Instr::Drop)?,
            "dup" => no_operand(Instr::Dup)?,
            "swap" => no_operand(Instr::Swap)?,
            "add" => no_operand(Instr::Add)?,
            "sub" => no_operand(Instr::Sub)?,
            "mul" => no_operand(Instr::Mul)?,
            "div_u" => no_operand(Instr::DivU)?,
            "rem_u" => no_operand(Instr::RemU)?,
            "and" => no_operand(Instr::And)?,
            "or" => no_operand(Instr::Or)?,
            "xor" => no_operand(Instr::Xor)?,
            "shl" => no_operand(Instr::Shl)?,
            "shr_u" => no_operand(Instr::ShrU)?,
            "eq" => no_operand(Instr::Eq)?,
            "ne" => no_operand(Instr::Ne)?,
            "lt_u" => no_operand(Instr::LtU)?,
            "gt_u" => no_operand(Instr::GtU)?,
            "le_u" => no_operand(Instr::LeU)?,
            "ge_u" => no_operand(Instr::GeU)?,
            "eqz" => no_operand(Instr::Eqz)?,
            "jump" => Pending::Jump("jump", need(operand)?, line_no),
            "jump_if" => Pending::Jump("jump_if", need(operand)?, line_no),
            "jump_if_zero" => Pending::Jump("jump_if_zero", need(operand)?, line_no),
            "call" => Pending::Call(need(operand)?, line_no),
            "return" => no_operand(Instr::Return)?,
            "mem.load8" => no_operand(Instr::MemLoad8)?,
            "mem.load32" => no_operand(Instr::MemLoad32)?,
            "mem.load64" => no_operand(Instr::MemLoad64)?,
            "mem.store8" => no_operand(Instr::MemStore8)?,
            "mem.store32" => no_operand(Instr::MemStore32)?,
            "mem.store64" => no_operand(Instr::MemStore64)?,
            "mem.size" => no_operand(Instr::MemSize)?,
            "mem.grow" => no_operand(Instr::MemGrow)?,
            "blob.len" => no_operand(Instr::BlobLen)?,
            "blob.read" => no_operand(Instr::BlobRead)?,
            "blob.read_u64" => no_operand(Instr::BlobReadU64)?,
            "blob.create" => no_operand(Instr::CreateBlob)?,
            "blob.create_u64" => no_operand(Instr::CreateBlobU64)?,
            "tree.len" => no_operand(Instr::TreeLen)?,
            "tree.get" => no_operand(Instr::TreeGet)?,
            "tb.push" => no_operand(Instr::TbPush)?,
            "tb.build" => no_operand(Instr::TbBuild)?,
            "application" => no_operand(Instr::Application)?,
            "identification" => no_operand(Instr::Identification)?,
            "selection.idx" => no_operand(Instr::SelectionIdx)?,
            "selection.range" => no_operand(Instr::SelectionRange)?,
            "strict" => no_operand(Instr::Strict)?,
            "shallow" => no_operand(Instr::Shallow)?,
            "kind_of" => no_operand(Instr::KindOf)?,
            "size_of" => no_operand(Instr::SizeOf)?,
            "eq_handle" => no_operand(Instr::EqHandle)?,
            "ret_handle" => no_operand(Instr::RetHandle)?,
            other => return Err(err(line_no, format!("unknown instruction '{other}'"))),
        };
        f.pending.push(pending);
    }

    if current.is_some() {
        return Err(err(source.lines().count(), "missing final 'end'"));
    }
    if fns.is_empty() {
        return Err(err(0, "no functions defined"));
    }

    // Resolve names.
    let fn_index: HashMap<String, u16> = fns
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u16))
        .collect();
    if fn_index.len() != fns.len() {
        return Err(err(0, "duplicate function name"));
    }

    let mut functions = Vec::with_capacity(fns.len());
    for f in &fns {
        let mut code = Vec::with_capacity(f.pending.len());
        for p in &f.pending {
            code.push(match p {
                Pending::Done(i) => *i,
                Pending::Jump(kind, label, line) => {
                    let target = *f
                        .labels
                        .get(label)
                        .ok_or_else(|| err(*line, format!("unknown label '{label}'")))?;
                    match *kind {
                        "jump" => Instr::Jump(target),
                        "jump_if" => Instr::JumpIf(target),
                        _ => Instr::JumpIfZero(target),
                    }
                }
                Pending::Call(name, line) => {
                    let target = *fn_index
                        .get(name)
                        .ok_or_else(|| err(*line, format!("unknown function '{name}'")))?;
                    Instr::Call(target)
                }
            });
        }
        functions.push(Function {
            nargs: f.nargs,
            nlocals: f.nlocals,
            code,
        });
    }

    let module = Module { functions };
    module.validate()?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_module() {
        let m = assemble("func apply args=0 locals=0\n const 0\n ret_handle\nend").unwrap();
        assert_eq!(m.functions[0].code, vec![Instr::Const(0), Instr::RetHandle]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let m = assemble(
            r#"
            func apply args=0 locals=1
            top:
              const 1
              jump_if done
              jump top
            done:
              const 0
              ret_handle
            end
            "#,
        )
        .unwrap();
        assert_eq!(m.functions[0].code[1], Instr::JumpIf(3));
        assert_eq!(m.functions[0].code[2], Instr::Jump(0));
    }

    #[test]
    fn calls_resolve_by_name() {
        let m = assemble(
            r#"
            func apply args=0 locals=0
              const 7
              call helper
              drop
              const 0
              ret_handle
            end
            func helper args=1 locals=1
              local.get 0
              return
            end
            "#,
        )
        .unwrap();
        assert_eq!(m.functions[0].code[1], Instr::Call(1));
        assert_eq!(m.functions[1].nargs, 1);
    }

    #[test]
    fn numeric_formats() {
        let m = assemble(
            "func apply args=0 locals=0\n const 0x2A\n drop\n const 'a'\n drop\n const 0\n ret_handle\nend",
        )
        .unwrap();
        assert_eq!(m.functions[0].code[0], Instr::Const(42));
        assert_eq!(m.functions[0].code[2], Instr::Const(97));
    }

    #[test]
    fn comments_are_stripped() {
        let m = assemble(
            ";; header\nfunc apply args=0 locals=0 ; trailing\n const 0 # note\n ret_handle\nend",
        )
        .unwrap();
        assert_eq!(m.functions[0].code.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("func apply args=0 locals=0\n bogus_op\n end").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
    }

    #[test]
    fn unknown_label_is_an_error() {
        assert!(assemble("func apply args=0 locals=0\n jump nowhere\nend").is_err());
    }

    #[test]
    fn unknown_function_is_an_error() {
        assert!(assemble("func apply args=0 locals=0\n call missing\nend").is_err());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        assert!(
            assemble("func apply args=0 locals=0\nx:\nx:\n const 0\n ret_handle\nend").is_err()
        );
    }

    #[test]
    fn locals_include_args() {
        let m = assemble(
            "func apply args=0 locals=0\n const 0\n ret_handle\nend\nfunc f args=3 locals=1\n const 0\n return\nend",
        )
        .unwrap();
        assert_eq!(m.functions[1].nlocals, 3);
    }

    #[test]
    fn round_trips_through_module_bytes() {
        let m = assemble(
            r#"
            func apply args=0 locals=2
              const 5
              local.set 1
            loop:
              local.get 1
              eqz
              jump_if out
              local.get 1
              const 1
              sub
              local.set 1
              jump loop
            out:
              const 0
              ret_handle
            end
            "#,
        )
        .unwrap();
        let rt = Module::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(rt, m);
    }
}
