//! `fix-vm`: a deterministic, sandboxed bytecode VM for Fix guest
//! procedures.
//!
//! The paper compiles guests to WebAssembly and then, via a trusted
//! toolchain (wasm2c + libclang + liblld), to native x86-64 codelets that
//! run inside Fixpoint's address space (paper §4.1). This crate plays the
//! same architectural role with a from-scratch substrate:
//!
//! * guest code is a content-addressed Blob (the [`module::Module`]
//!   format), black-box from the runtime's perspective;
//! * execution is memory-safe, deterministic, and resource-bounded
//!   (fuel + memory limits from the invocation's `ResourceLimits`);
//! * the only world interface is the Fixpoint host API (paper Listing 1):
//!   attach/create blobs and trees, build Thunks and Encodes, query
//!   handle metadata — there are no clocks, no randomness, no sockets;
//! * handles are opaque table entries (like Wasm `externref`), so the
//!   capability set of a guest is exactly what it was given plus what it
//!   created.
//!
//! See [`asm::assemble`] for the guest assembly dialect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod isa;
pub mod module;
pub mod vm;

pub use asm::assemble;
pub use module::{Function, Module, MAGIC};
pub use vm::{run, testing, HostApi, Outcome, VmConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};
    use fix_core::error::Error;
    use fix_core::handle::{EncodeStyle, Kind, ThunkKind};
    use vm::testing::TestHost;

    fn exec(source: &str, host: &mut TestHost, input: fix_core::handle::Handle) -> Outcome {
        let module = assemble(source).unwrap();
        run(&module, host, input, VmConfig::default()).unwrap()
    }

    fn exec_err(
        source: &str,
        host: &mut TestHost,
        input: fix_core::handle::Handle,
        config: VmConfig,
    ) -> Error {
        let module = assemble(source).unwrap();
        run(&module, host, input, config).unwrap_err()
    }

    fn empty_input(host: &mut TestHost) -> fix_core::handle::Handle {
        host.insert_tree(Tree::from_handles(vec![]))
    }

    #[test]
    fn add_two_u64_blobs() {
        // The canonical trivial function from the paper's Fig. 7a: read two
        // numbers from the input tree, add them, return a new blob.
        let mut host = TestHost::default();
        let a = host.insert_blob(Blob::from_u64(30));
        let b = host.insert_blob(Blob::from_u64(12));
        let input = host.insert_tree(Tree::from_handles(vec![a, b]));
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 0       ; input tree
              const 0
              tree.get      ; arg a
              const 0
              blob.read_u64
              const 0
              const 1
              tree.get      ; arg b
              const 0
              blob.read_u64
              add
              blob.create_u64
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        let blob = fix_core::data::literal_blob(out.result).unwrap();
        assert_eq!(blob.as_u64(), Some(42));
    }

    #[test]
    fn countdown_loop_and_locals() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let out = exec(
            r#"
            func apply args=0 locals=2
              const 1000
              local.set 0
            loop:
              local.get 0
              eqz
              jump_if done
              local.get 1
              const 2
              add
              local.set 1
              local.get 0
              const 1
              sub
              local.set 0
              jump loop
            done:
              local.get 1
              blob.create_u64
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        let blob = fix_core::data::literal_blob(out.result).unwrap();
        assert_eq!(blob.as_u64(), Some(2000));
        assert!(out.fuel_used > 8000, "loop must consume fuel");
    }

    #[test]
    fn function_calls_compute_in_guest() {
        // Recursion fully inside the VM (not Fix-level recursion).
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 10
              call fib
              blob.create_u64
              ret_handle
            end
            func fib args=1 locals=1
              local.get 0
              const 2
              lt_u
              jump_if base
              local.get 0
              const 1
              sub
              call fib
              local.get 0
              const 2
              sub
              call fib
              add
              return
            base:
              local.get 0
              return
            end
            "#,
            &mut host,
            input,
        );
        let blob = fix_core::data::literal_blob(out.result).unwrap();
        assert_eq!(blob.as_u64(), Some(55));
    }

    #[test]
    fn memory_round_trip_and_blob_creation() {
        let mut host = TestHost::default();
        let data = host.insert_blob(Blob::from_vec((0u8..64).collect()));
        let input = host.insert_tree(Tree::from_handles(vec![data]));
        // Copy the blob into memory, then re-create it and return it.
        let out = exec(
            r#"
            func apply args=0 locals=1
              const 0
              const 0
              tree.get
              local.set 0
              local.get 0   ; handle
              const 0       ; blob offset
              const 128     ; memory offset
              const 64      ; length
              blob.read
              const 128
              const 64
              blob.create
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        assert_eq!(
            out.result,
            Blob::from_vec((0u8..64).collect()).handle(),
            "re-created blob must be content-identical"
        );
        assert_eq!(host.created.len(), 1);
    }

    #[test]
    fn thunk_and_encode_construction() {
        let mut host = TestHost::default();
        let limits = fix_core::limits::ResourceLimits::default_limits();
        let code = host.insert_blob(Blob::from_vec(vec![0u8; 40]));
        let input = host.insert_tree(Tree::from_handles(vec![limits.handle(), code]));
        // Build: strict(application(input-tree)) and return it.
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 0
              application
              strict
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        assert_eq!(
            out.result.kind(),
            Kind::Encode(EncodeStyle::Strict, ThunkKind::Application)
        );
        assert_eq!(
            out.result
                .encoded_thunk()
                .unwrap()
                .thunk_definition()
                .unwrap(),
            input
        );
    }

    #[test]
    fn selection_creates_definition_tree() {
        let mut host = TestHost::default();
        let a = host.insert_blob(Blob::from_vec(vec![1u8; 40]));
        let input = host.insert_tree(Tree::from_handles(vec![a]));
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 0
              const 0
              selection.idx
              shallow
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        assert_eq!(
            out.result.kind(),
            Kind::Encode(EncodeStyle::Shallow, ThunkKind::Selection)
        );
        // The guest's selection stored a definition tree [target, 0].
        assert_eq!(host.created.len(), 1);
        let def = out
            .result
            .encoded_thunk()
            .unwrap()
            .thunk_definition()
            .unwrap();
        use vm::HostApi;
        let tree = host.load_tree(def).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(0), Some(input));
    }

    #[test]
    fn refs_expose_metadata_but_not_data() {
        let mut host = TestHost::default();
        let secret = host.insert_blob(Blob::from_vec(vec![7u8; 1000]));
        let input = host.insert_tree(Tree::from_handles(vec![secret.as_ref_handle()]));
        // size_of on a Ref works:
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 0
              const 0
              tree.get
              size_of
              blob.create_u64
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        assert_eq!(
            fix_core::data::literal_blob(out.result).unwrap().as_u64(),
            Some(1000)
        );
        // ...but reading its data traps.
        let err = exec_err(
            r#"
            func apply args=0 locals=0
              const 0
              const 0
              tree.get
              const 0
              blob.read_u64
              drop
              const 0
              ret_handle
            end
            "#,
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(matches!(err, Error::Inaccessible(_)), "{err}");
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let config = VmConfig {
            fuel: 100,
            ..VmConfig::default()
        };
        let err = exec_err(
            r#"
            func apply args=0 locals=0
            loop:
              jump loop
            end
            "#,
            &mut host,
            input,
            config,
        );
        assert!(matches!(err, Error::OutOfFuel { limit: 100 }), "{err}");
    }

    #[test]
    fn memory_limit_enforced() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let config = VmConfig {
            memory_limit: 128 * 1024,
            ..VmConfig::default()
        };
        let err = exec_err(
            r#"
            func apply args=0 locals=0
              const 1048576
              mem.grow
              drop
              const 0
              ret_handle
            end
            "#,
            &mut host,
            input,
            config,
        );
        assert!(matches!(err, Error::MemoryLimit { .. }), "{err}");
    }

    #[test]
    fn memory_grow_works_within_limit() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let out = exec(
            r#"
            func apply args=0 locals=0
              const 65536
              mem.grow
              drop
              mem.size
              blob.create_u64
              ret_handle
            end
            "#,
            &mut host,
            input,
        );
        assert_eq!(
            fix_core::data::literal_blob(out.result).unwrap().as_u64(),
            Some(131072)
        );
    }

    #[test]
    fn out_of_bounds_memory_traps() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            "func apply args=0 locals=0\n const 0xFFFFFFFF\n mem.load64\n drop\n const 0\n ret_handle\nend",
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(matches!(err, Error::Trap(_)), "{err}");
    }

    #[test]
    fn stack_discipline_across_calls() {
        // A callee cannot pop values belonging to its caller.
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            r#"
            func apply args=0 locals=0
              const 99
              call thief
              drop
              drop
              const 0
              ret_handle
            end
            func thief args=0 locals=0
              drop        ; tries to pop the caller's 99
              const 0
              return
            end
            "#,
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(err.to_string().contains("underflow"), "{err}");
    }

    #[test]
    fn division_by_zero_traps() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            "func apply args=0 locals=0\n const 1\n const 0\n div_u\n drop\n const 0\n ret_handle\nend",
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(err.to_string().contains("division by zero"), "{err}");
    }

    #[test]
    fn tree_get_out_of_bounds() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            "func apply args=0 locals=0\n const 0\n const 5\n tree.get\n ret_handle\nend",
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(matches!(err, Error::BadSelection { .. }), "{err}");
    }

    #[test]
    fn entry_without_ret_handle_traps() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            "func apply args=0 locals=0\n const 1\n drop\nend",
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(err.to_string().contains("ret_handle"), "{err}");
    }

    #[test]
    fn call_depth_limit() {
        let mut host = TestHost::default();
        let input = empty_input(&mut host);
        let err = exec_err(
            r#"
            func apply args=0 locals=0
              call rec
              drop
              const 0
              ret_handle
            end
            func rec args=0 locals=0
              call rec
              return
            end
            "#,
            &mut host,
            input,
            VmConfig::default(),
        );
        assert!(err.to_string().contains("call depth"), "{err}");
    }

    #[test]
    fn determinism_same_input_same_result() {
        let mut host = TestHost::default();
        let a = host.insert_blob(Blob::from_u64(5));
        let input = host.insert_tree(Tree::from_handles(vec![a]));
        let src = r#"
            func apply args=0 locals=0
              const 0
              const 0
              tree.get
              const 0
              blob.read_u64
              const 3
              mul
              blob.create_u64
              ret_handle
            end
        "#;
        let module = assemble(src).unwrap();
        let r1 = run(&module, &mut host, input, VmConfig::default()).unwrap();
        let r2 = run(&module, &mut host, input, VmConfig::default()).unwrap();
        assert_eq!(r1.result, r2.result);
        assert_eq!(r1.fuel_used, r2.fuel_used);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fix_core::data::{Blob, Tree};
    use proptest::prelude::*;
    use vm::testing::TestHost;

    proptest! {
        /// Assembling then serializing then reparsing is the identity.
        #[test]
        fn module_bytes_round_trip(n in 1u64..2000) {
            let src = format!(
                "func apply args=0 locals=1\n const {n}\n local.set 0\n const 0\n ret_handle\nend"
            );
            let m = assemble(&src).unwrap();
            let rt = Module::from_bytes(&m.to_bytes()).unwrap();
            prop_assert_eq!(rt, m);
        }

        /// The guest add function agrees with native addition (wrapping).
        #[test]
        fn guest_add_matches_native(a in any::<u64>(), b in any::<u64>()) {
            let mut host = TestHost::default();
            let ha = host.insert_blob(Blob::from_u64(a));
            let hb = host.insert_blob(Blob::from_u64(b));
            let input = host.insert_tree(Tree::from_handles(vec![ha, hb]));
            let module = assemble(r#"
                func apply args=0 locals=0
                  const 0
                  const 0
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  const 1
                  tree.get
                  const 0
                  blob.read_u64
                  add
                  blob.create_u64
                  ret_handle
                end
            "#).unwrap();
            let out = run(&module, &mut host, input, VmConfig::default()).unwrap();
            let blob = fix_core::data::literal_blob(out.result).unwrap();
            prop_assert_eq!(blob.as_u64(), Some(a.wrapping_add(b)));
        }

        /// Fuel accounting is monotone in loop iterations.
        #[test]
        fn fuel_scales_with_work(n in 1u64..500) {
            let mut host = TestHost::default();
            let input = host.insert_tree(Tree::from_handles(vec![]));
            let src = format!(r#"
                func apply args=0 locals=1
                  const {n}
                  local.set 0
                loop:
                  local.get 0
                  eqz
                  jump_if done
                  local.get 0
                  const 1
                  sub
                  local.set 0
                  jump loop
                done:
                  const 0
                  ret_handle
                end
            "#);
            let module = assemble(&src).unwrap();
            let out = run(&module, &mut host, input, VmConfig::default()).unwrap();
            // 2 setup + 8 per iteration + 5 exit epilogue.
            prop_assert!(out.fuel_used >= 8 * n);
            prop_assert!(out.fuel_used <= 8 * n + 8);
        }
    }
}
