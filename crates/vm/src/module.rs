//! FixVM module format: serialization, deserialization, and validation.
//!
//! A module is a Blob in storage, so guest code is content addressed like
//! any other data — the paper's "code can be represented as black-box
//! machine code" design goal (§3, goal 1). The format is:
//!
//! ```text
//! [ magic "FIXVM01\0" ][ u16 fn_count ]
//! per function: [ u16 nargs ][ u16 nlocals ][ u32 code_len ][ code ]
//! ```
//!
//! Function 0 is the entry point (`_fix_apply`); it must take no
//! arguments (its input is the application tree at handle-table slot 0).
//! Validation decodes every instruction and checks all static properties
//! so the interpreter can trust them.

use crate::isa::Instr;
use fix_core::error::{Error, Result};

/// The 8-byte module magic.
pub const MAGIC: &[u8; 8] = b"FIXVM01\0";

/// One function body after decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Number of arguments (popped from the caller's stack into locals).
    pub nargs: u16,
    /// Total local slots, including arguments. `nlocals >= nargs`.
    pub nlocals: u16,
    /// Decoded instructions.
    pub code: Vec<Instr>,
}

/// A validated FixVM module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// The module's functions; index 0 is `_fix_apply`.
    pub functions: Vec<Function>,
}

fn malformed(reason: impl Into<String>) -> Error {
    Error::Trap(format!("invalid FixVM module: {}", reason.into()))
}

impl Module {
    /// Returns true if a blob starts with the FixVM magic.
    pub fn is_module(bytes: &[u8]) -> bool {
        bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
    }

    /// Serializes the module to its canonical byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.functions.len() as u16).to_le_bytes());
        for f in &self.functions {
            out.extend_from_slice(&f.nargs.to_le_bytes());
            out.extend_from_slice(&f.nlocals.to_le_bytes());
            let mut code = Vec::new();
            for i in &f.code {
                i.encode(&mut code);
            }
            out.extend_from_slice(&(code.len() as u32).to_le_bytes());
            out.extend_from_slice(&code);
        }
        out
    }

    /// Parses and fully validates a module.
    pub fn from_bytes(bytes: &[u8]) -> Result<Module> {
        if !Self::is_module(bytes) {
            return Err(malformed("bad magic"));
        }
        let mut pos = MAGIC.len();
        let read_u16 = |bytes: &[u8], pos: &mut usize| -> Result<u16> {
            let v = bytes
                .get(*pos..*pos + 2)
                .ok_or_else(|| malformed("truncated header"))?;
            *pos += 2;
            Ok(u16::from_le_bytes([v[0], v[1]]))
        };
        let read_u32 = |bytes: &[u8], pos: &mut usize| -> Result<u32> {
            let v = bytes
                .get(*pos..*pos + 4)
                .ok_or_else(|| malformed("truncated header"))?;
            *pos += 4;
            Ok(u32::from_le_bytes([v[0], v[1], v[2], v[3]]))
        };

        let fn_count = read_u16(bytes, &mut pos)? as usize;
        if fn_count == 0 {
            return Err(malformed("module has no functions"));
        }
        let mut functions = Vec::with_capacity(fn_count);
        for idx in 0..fn_count {
            let nargs = read_u16(bytes, &mut pos)?;
            let nlocals = read_u16(bytes, &mut pos)?;
            let code_len = read_u32(bytes, &mut pos)? as usize;
            let code_bytes = bytes
                .get(pos..pos + code_len)
                .ok_or_else(|| malformed(format!("function {idx}: truncated code")))?;
            pos += code_len;

            let mut code = Vec::new();
            let mut cp = 0;
            while cp < code_bytes.len() {
                let (instr, used) = Instr::decode(code_bytes, cp).ok_or_else(|| {
                    malformed(format!("function {idx}: bad instruction at byte {cp}"))
                })?;
                code.push(instr);
                cp += used;
            }
            functions.push(Function {
                nargs,
                nlocals,
                code,
            });
        }
        if pos != bytes.len() {
            return Err(malformed("trailing bytes after last function"));
        }
        let module = Module { functions };
        module.validate()?;
        Ok(module)
    }

    /// Checks all static properties the interpreter relies on.
    ///
    /// Note: jump targets in the decoded form are *instruction indices*
    /// (the assembler emits them that way); they must be in bounds.
    pub fn validate(&self) -> Result<()> {
        if self.functions.is_empty() {
            return Err(malformed("module has no functions"));
        }
        if self.functions[0].nargs != 0 {
            return Err(malformed("entry function must take no arguments"));
        }
        for (idx, f) in self.functions.iter().enumerate() {
            if f.nlocals < f.nargs {
                return Err(malformed(format!(
                    "function {idx}: nlocals ({}) < nargs ({})",
                    f.nlocals, f.nargs
                )));
            }
            let n = f.code.len() as u32;
            for (ip, instr) in f.code.iter().enumerate() {
                match instr {
                    Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfZero(t) if *t >= n => {
                        return Err(malformed(format!(
                            "function {idx}: jump target {t} out of bounds at {ip}"
                        )));
                    }
                    Instr::LocalGet(l) | Instr::LocalSet(l) if *l >= f.nlocals => {
                        return Err(malformed(format!(
                            "function {idx}: local {l} out of bounds at {ip}"
                        )));
                    }
                    Instr::Call(target) if *target as usize >= self.functions.len() => {
                        return Err(malformed(format!(
                            "function {idx}: call target {target} out of bounds at {ip}"
                        )));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// A disassembly listing for debugging and tests.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (idx, f) in self.functions.iter().enumerate() {
            out.push_str(&format!(
                "func {idx} args={} locals={}\n",
                f.nargs, f.nlocals
            ));
            for (ip, instr) in f.code.iter().enumerate() {
                out.push_str(&format!("  {ip:4}: {instr}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial() -> Module {
        Module {
            functions: vec![Function {
                nargs: 0,
                nlocals: 1,
                code: vec![Instr::Const(0), Instr::RetHandle],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let m = Module {
            functions: vec![
                Function {
                    nargs: 0,
                    nlocals: 2,
                    code: vec![
                        Instr::Const(5),
                        Instr::LocalSet(0),
                        Instr::LocalGet(0),
                        Instr::Call(1),
                        Instr::RetHandle,
                    ],
                },
                Function {
                    nargs: 1,
                    nlocals: 1,
                    code: vec![Instr::LocalGet(0), Instr::Return],
                },
            ],
        };
        let bytes = m.to_bytes();
        assert!(Module::is_module(&bytes));
        let parsed = Module::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(Module::from_bytes(b"NOTAVM00rest").is_err());
        assert!(!Module::is_module(b"short"));
    }

    #[test]
    fn rejects_entry_with_args() {
        let mut m = trivial();
        m.functions[0].nargs = 1;
        m.functions[0].nlocals = 1;
        assert!(Module::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_jump() {
        let mut m = trivial();
        m.functions[0].code = vec![Instr::Jump(99)];
        assert!(Module::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_local() {
        let mut m = trivial();
        m.functions[0].code = vec![Instr::LocalGet(5), Instr::RetHandle];
        assert!(Module::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_call() {
        let mut m = trivial();
        m.functions[0].code = vec![Instr::Call(3), Instr::RetHandle];
        assert!(Module::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = trivial().to_bytes();
        bytes.push(0xEE);
        assert!(Module::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_locals_fewer_than_args() {
        let m = Module {
            functions: vec![
                Function {
                    nargs: 0,
                    nlocals: 0,
                    code: vec![Instr::Const(0), Instr::RetHandle],
                },
                Function {
                    nargs: 3,
                    nlocals: 1,
                    code: vec![Instr::Const(0), Instr::Return],
                },
            ],
        };
        assert!(Module::from_bytes(&m.to_bytes()).is_err());
    }

    #[test]
    fn disassembly_is_readable() {
        let text = trivial().disassemble();
        assert!(text.contains("func 0 args=0 locals=1"));
        assert!(text.contains("const 0"));
        assert!(text.contains("rethandle"));
    }
}
