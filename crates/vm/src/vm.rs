//! The FixVM interpreter.
//!
//! Runs one guest procedure to completion (paper §3, goal 3: "a function
//! will always run to completion without blocking"). Every interaction
//! with Fix data goes through a [`HostApi`] implemented by the runtime;
//! the interpreter enforces:
//!
//! * **capability discipline** — the guest names handles only by table
//!   index, and the table starts with just the input tree;
//! * **accessibility** — data behind Refs cannot be read (only type and
//!   size are visible);
//! * **resource limits** — fuel (instruction budget) and memory, from the
//!   invocation's [`ResourceLimits`]; plus static stack and call-depth
//!   caps.

use crate::isa::{kind_code, Instr};
use crate::module::Module;
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::{DataType, Handle, Kind};
use fix_core::limits::ResourceLimits;

// The host interface lives in `fix_core::api` since the One Fix API
// refactor (every backend and the native-codelet registry share it);
// re-exported here because the VM is its primary consumer.
pub use fix_core::api::HostApi;

/// Execution limits for one guest run.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Instruction/fuel budget.
    pub fuel: u64,
    /// Linear memory cap in bytes.
    pub memory_limit: u64,
    /// Operand stack cap (values).
    pub stack_limit: usize,
    /// Call depth cap (frames).
    pub call_depth: usize,
    /// Handle table cap (entries).
    pub table_limit: usize,
}

impl VmConfig {
    /// Derives a configuration from an invocation's resource limits.
    pub fn from_limits(limits: &ResourceLimits) -> VmConfig {
        VmConfig {
            fuel: limits.fuel,
            memory_limit: limits.memory_bytes,
            stack_limit: 1 << 16,
            call_depth: 512,
            table_limit: 1 << 20,
        }
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig::from_limits(&ResourceLimits::default_limits())
    }
}

/// Result of a completed guest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The handle the guest returned from `_fix_apply`.
    pub result: Handle,
    /// Fuel consumed (for accounting and the invocation-overhead bench).
    pub fuel_used: u64,
}

const INITIAL_MEMORY: usize = 64 * 1024;

struct Frame {
    func: usize,
    ip: usize,
    locals_base: usize,
    stack_floor: usize,
}

/// Runs `module`'s entry function against `input` (the application tree).
///
/// # Examples
///
/// ```
/// use fix_vm::{assemble, run, VmConfig};
/// use fix_vm::testing::TestHost;
/// use fix_core::data::Tree;
///
/// let module = assemble("func apply args=0 locals=0\n const 0\n ret_handle\nend").unwrap();
/// let mut host = TestHost::default();
/// let input = Tree::from_handles(vec![]);
/// let input_handle = host.insert_tree(input);
/// let out = run(&module, &mut host, input_handle, VmConfig::default()).unwrap();
/// assert_eq!(out.result, input_handle); // The guest returned its input.
/// ```
pub fn run(
    module: &Module,
    host: &mut dyn HostApi,
    input: Handle,
    config: VmConfig,
) -> Result<Outcome> {
    Interp::new(module, host, input, config).run()
}

struct Interp<'a> {
    module: &'a Module,
    host: &'a mut dyn HostApi,
    config: VmConfig,
    stack: Vec<u64>,
    locals: Vec<u64>,
    frames: Vec<Frame>,
    memory: Vec<u8>,
    handles: Vec<Handle>,
    builder: Vec<Handle>,
    fuel: u64,
}

fn trap(msg: impl Into<String>) -> Error {
    Error::Trap(msg.into())
}

impl<'a> Interp<'a> {
    fn new(
        module: &'a Module,
        host: &'a mut dyn HostApi,
        input: Handle,
        config: VmConfig,
    ) -> Interp<'a> {
        let entry_locals = module.functions[0].nlocals as usize;
        Interp {
            module,
            host,
            config,
            stack: Vec::with_capacity(256),
            locals: vec![0; entry_locals],
            frames: vec![Frame {
                func: 0,
                ip: 0,
                locals_base: 0,
                stack_floor: 0,
            }],
            memory: vec![0; INITIAL_MEMORY.min(config.memory_limit as usize)],
            handles: vec![input],
            builder: Vec::new(),
            fuel: config.fuel,
        }
    }

    fn burn(&mut self, amount: u64) -> Result<()> {
        if self.fuel < amount {
            self.fuel = 0;
            return Err(Error::OutOfFuel {
                limit: self.config.fuel,
            });
        }
        self.fuel -= amount;
        Ok(())
    }

    fn push(&mut self, v: u64) -> Result<()> {
        if self.stack.len() >= self.config.stack_limit {
            return Err(trap("operand stack overflow"));
        }
        self.stack.push(v);
        Ok(())
    }

    fn pop(&mut self) -> Result<u64> {
        let floor = self.frames.last().expect("frame exists").stack_floor;
        if self.stack.len() <= floor {
            return Err(trap("operand stack underflow"));
        }
        Ok(self.stack.pop().expect("length checked"))
    }

    fn handle_at(&self, idx: u64) -> Result<Handle> {
        self.handles
            .get(idx as usize)
            .copied()
            .ok_or_else(|| trap(format!("handle index {idx} out of bounds")))
    }

    fn push_handle(&mut self, h: Handle) -> Result<u64> {
        if self.handles.len() >= self.config.table_limit {
            return Err(trap("handle table overflow"));
        }
        self.handles.push(h);
        Ok((self.handles.len() - 1) as u64)
    }

    fn mem_range(&self, addr: u64, len: u64) -> Result<std::ops::Range<usize>> {
        let end = addr
            .checked_add(len)
            .ok_or_else(|| trap("address overflow"))?;
        if end > self.memory.len() as u64 {
            return Err(trap(format!(
                "memory access [{addr}, {end}) out of bounds (size {})",
                self.memory.len()
            )));
        }
        Ok(addr as usize..end as usize)
    }

    fn accessible_blob(&self, h: Handle) -> Result<()> {
        match h.kind() {
            Kind::Object(DataType::Blob) => Ok(()),
            Kind::Ref(DataType::Blob) => Err(Error::Inaccessible(h)),
            _ => Err(Error::TypeMismatch {
                handle: h,
                expected: "accessible blob",
            }),
        }
    }

    fn accessible_tree(&self, h: Handle) -> Result<()> {
        match h.kind() {
            Kind::Object(DataType::Tree) => Ok(()),
            Kind::Ref(DataType::Tree) => Err(Error::Inaccessible(h)),
            _ => Err(Error::TypeMismatch {
                handle: h,
                expected: "accessible tree",
            }),
        }
    }

    fn run(mut self) -> Result<Outcome> {
        loop {
            let frame = self.frames.last().expect("at least the entry frame");
            let func = &self.module.functions[frame.func];
            let Some(&instr) = func.code.get(frame.ip) else {
                // Fell off the end of the function body.
                if self.frames.len() == 1 {
                    return Err(trap("entry function ended without ret_handle"));
                }
                return Err(trap("function ended without return"));
            };
            self.burn(1)?;
            // Advance the ip before executing; jumps overwrite it.
            self.frames.last_mut().expect("frame").ip += 1;

            use Instr::*;
            match instr {
                Nop => {}
                Unreachable => return Err(trap("unreachable executed")),
                Const(v) => self.push(v)?,
                LocalGet(i) => {
                    let base = self.frames.last().expect("frame").locals_base;
                    let v = self.locals[base + i as usize];
                    self.push(v)?;
                }
                LocalSet(i) => {
                    let v = self.pop()?;
                    let base = self.frames.last().expect("frame").locals_base;
                    self.locals[base + i as usize] = v;
                }
                Drop => {
                    self.pop()?;
                }
                Dup => {
                    let v = self.pop()?;
                    self.push(v)?;
                    self.push(v)?;
                }
                Swap => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    self.push(b)?;
                    self.push(a)?;
                }

                Add => self.binop(|a, b| Ok(a.wrapping_add(b)))?,
                Sub => self.binop(|a, b| Ok(a.wrapping_sub(b)))?,
                Mul => self.binop(|a, b| Ok(a.wrapping_mul(b)))?,
                DivU => {
                    self.binop(|a, b| a.checked_div(b).ok_or_else(|| trap("division by zero")))?
                }
                RemU => {
                    self.binop(|a, b| a.checked_rem(b).ok_or_else(|| trap("remainder by zero")))?
                }
                And => self.binop(|a, b| Ok(a & b))?,
                Or => self.binop(|a, b| Ok(a | b))?,
                Xor => self.binop(|a, b| Ok(a ^ b))?,
                Shl => self.binop(|a, b| Ok(a.wrapping_shl(b as u32)))?,
                ShrU => self.binop(|a, b| Ok(a.wrapping_shr(b as u32)))?,
                Eq => self.binop(|a, b| Ok((a == b) as u64))?,
                Ne => self.binop(|a, b| Ok((a != b) as u64))?,
                LtU => self.binop(|a, b| Ok((a < b) as u64))?,
                GtU => self.binop(|a, b| Ok((a > b) as u64))?,
                LeU => self.binop(|a, b| Ok((a <= b) as u64))?,
                GeU => self.binop(|a, b| Ok((a >= b) as u64))?,
                Eqz => {
                    let v = self.pop()?;
                    self.push((v == 0) as u64)?;
                }

                Jump(t) => self.frames.last_mut().expect("frame").ip = t as usize,
                JumpIf(t) => {
                    if self.pop()? != 0 {
                        self.frames.last_mut().expect("frame").ip = t as usize;
                    }
                }
                JumpIfZero(t) => {
                    if self.pop()? == 0 {
                        self.frames.last_mut().expect("frame").ip = t as usize;
                    }
                }
                Call(f) => {
                    if self.frames.len() >= self.config.call_depth {
                        return Err(trap("call depth exceeded"));
                    }
                    let callee = &self.module.functions[f as usize];
                    let nargs = callee.nargs as usize;
                    let locals_base = self.locals.len();
                    self.locals.resize(locals_base + callee.nlocals as usize, 0);
                    // Pop arguments; the first-pushed value becomes local 0.
                    for slot in (0..nargs).rev() {
                        let v = self.pop()?;
                        self.locals[locals_base + slot] = v;
                    }
                    let stack_floor = self.stack.len();
                    self.frames.push(Frame {
                        func: f as usize,
                        ip: 0,
                        locals_base,
                        stack_floor,
                    });
                }
                Return => {
                    if self.frames.len() == 1 {
                        return Err(trap("entry function must finish with ret_handle"));
                    }
                    let v = self.pop()?;
                    let frame = self.frames.pop().expect("length checked");
                    self.stack.truncate(frame.stack_floor);
                    self.locals.truncate(frame.locals_base);
                    self.push(v)?;
                }

                MemLoad8 => {
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 1)?;
                    let v = self.memory[r.start] as u64;
                    self.push(v)?;
                }
                MemLoad32 => {
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 4)?;
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&self.memory[r]);
                    self.push(u32::from_le_bytes(b) as u64)?;
                }
                MemLoad64 => {
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 8)?;
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&self.memory[r]);
                    self.push(u64::from_le_bytes(b))?;
                }
                MemStore8 => {
                    let v = self.pop()?;
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 1)?;
                    self.memory[r.start] = v as u8;
                }
                MemStore32 => {
                    let v = self.pop()?;
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 4)?;
                    self.memory[r].copy_from_slice(&(v as u32).to_le_bytes());
                }
                MemStore64 => {
                    let v = self.pop()?;
                    let addr = self.pop()?;
                    let r = self.mem_range(addr, 8)?;
                    self.memory[r].copy_from_slice(&v.to_le_bytes());
                }
                MemSize => {
                    let v = self.memory.len() as u64;
                    self.push(v)?;
                }
                MemGrow => {
                    let bytes = self.pop()?;
                    let old = self.memory.len() as u64;
                    let new = old
                        .checked_add(bytes)
                        .ok_or_else(|| trap("grow overflow"))?;
                    if new > self.config.memory_limit {
                        return Err(Error::MemoryLimit {
                            limit: self.config.memory_limit,
                            requested: new,
                        });
                    }
                    self.burn(bytes / 64)?;
                    self.memory.resize(new as usize, 0);
                    self.push(old)?;
                }

                BlobLen => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.accessible_blob(h)?;
                    self.push(h.size())?;
                }
                BlobRead => {
                    let len = self.pop()?;
                    let mem_off = self.pop()?;
                    let blob_off = self.pop()?;
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.accessible_blob(h)?;
                    self.burn(len / 8)?;
                    let blob = self.host.load_blob(h)?;
                    let bend = blob_off
                        .checked_add(len)
                        .ok_or_else(|| trap("blob offset overflow"))?;
                    if bend > blob.len() as u64 {
                        return Err(trap(format!(
                            "blob read [{blob_off}, {bend}) out of bounds (len {})",
                            blob.len()
                        )));
                    }
                    let mr = self.mem_range(mem_off, len)?;
                    self.memory[mr]
                        .copy_from_slice(&blob.as_slice()[blob_off as usize..bend as usize]);
                }
                BlobReadU64 => {
                    let off = self.pop()?;
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.accessible_blob(h)?;
                    let blob = self.host.load_blob(h)?;
                    let end = off.checked_add(8).ok_or_else(|| trap("offset overflow"))?;
                    if end > blob.len() as u64 {
                        return Err(trap(format!(
                            "blob read_u64 at {off} out of bounds (len {})",
                            blob.len()
                        )));
                    }
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&blob.as_slice()[off as usize..end as usize]);
                    self.push(u64::from_le_bytes(b))?;
                }
                CreateBlob => {
                    let len = self.pop()?;
                    let mem_off = self.pop()?;
                    self.burn(len / 8)?;
                    let r = self.mem_range(mem_off, len)?;
                    let data = self.memory[r].to_vec();
                    let h = self.host.create_blob(data)?;
                    let idx = self.push_handle(h)?;
                    self.push(idx)?;
                }
                CreateBlobU64 => {
                    let v = self.pop()?;
                    let h = self.host.create_blob(v.to_le_bytes().to_vec())?;
                    let idx = self.push_handle(h)?;
                    self.push(idx)?;
                }
                TreeLen => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.accessible_tree(h)?;
                    self.push(h.size())?;
                }
                TreeGet => {
                    let i = self.pop()?;
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.accessible_tree(h)?;
                    let tree = self.host.load_tree(h)?;
                    let entry = tree.get(i as usize).ok_or(Error::BadSelection {
                        target: h,
                        begin: i,
                        end: i + 1,
                        len: tree.len() as u64,
                    })?;
                    let idx = self.push_handle(entry)?;
                    self.push(idx)?;
                }
                TbPush => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    if self.builder.len() >= self.config.table_limit {
                        return Err(trap("tree builder overflow"));
                    }
                    self.builder.push(h);
                }
                TbBuild => {
                    let entries = std::mem::take(&mut self.builder);
                    self.burn(entries.len() as u64)?;
                    let h = self.host.create_tree(entries)?;
                    let idx = self.push_handle(h)?;
                    self.push(idx)?;
                }
                Application => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let thunk = h.application()?;
                    let idx = self.push_handle(thunk)?;
                    self.push(idx)?;
                }
                Identification => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let thunk = h.identification()?;
                    let idx = self.push_handle(thunk)?;
                    self.push(idx)?;
                }
                SelectionIdx => {
                    let i = self.pop()?;
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let def = fix_core::invocation::Selection::index(h, i).to_tree();
                    let def_h = self.host.create_tree(def.entries().to_vec())?;
                    let thunk = def_h.selection()?;
                    let idx = self.push_handle(thunk)?;
                    self.push(idx)?;
                }
                SelectionRange => {
                    let end = self.pop()?;
                    let begin = self.pop()?;
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let def = fix_core::invocation::Selection::range(h, begin, end).to_tree();
                    let def_h = self.host.create_tree(def.entries().to_vec())?;
                    let thunk = def_h.selection()?;
                    let idx = self.push_handle(thunk)?;
                    self.push(idx)?;
                }
                Strict => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let e = h.strict()?;
                    let idx = self.push_handle(e)?;
                    self.push(idx)?;
                }
                Shallow => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let e = h.shallow()?;
                    let idx = self.push_handle(e)?;
                    self.push(idx)?;
                }
                KindOf => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    let code = match h.kind() {
                        Kind::Object(DataType::Blob) => kind_code::BLOB_OBJECT,
                        Kind::Object(DataType::Tree) => kind_code::TREE_OBJECT,
                        Kind::Ref(DataType::Blob) => kind_code::BLOB_REF,
                        Kind::Ref(DataType::Tree) => kind_code::TREE_REF,
                        Kind::Thunk(_) => kind_code::THUNK,
                        Kind::Encode(..) => kind_code::ENCODE,
                    };
                    self.push(code)?;
                }
                SizeOf => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    self.push(h.size())?;
                }
                EqHandle => {
                    let bi = self.pop_idx()?;
                    let b = self.handle_at(bi)?;
                    let ai = self.pop_idx()?;
                    let a = self.handle_at(ai)?;
                    self.push((a == b) as u64)?;
                }
                RetHandle => {
                    let idx = self.pop_idx()?;
                    let h = self.handle_at(idx)?;
                    return Ok(Outcome {
                        result: h,
                        fuel_used: self.config.fuel - self.fuel,
                    });
                }
            }
        }
    }

    fn pop_idx(&mut self) -> Result<u64> {
        self.pop()
    }

    fn binop(&mut self, f: impl FnOnce(u64, u64) -> Result<u64>) -> Result<()> {
        let b = self.pop()?;
        let a = self.pop()?;
        let r = f(a, b)?;
        self.push(r)
    }
}

/// Test utilities: an in-memory [`HostApi`] backed by a hash map.
pub mod testing {
    use super::*;
    use std::collections::HashMap;

    /// A [`HostApi`] for unit tests and doc tests. Keeps every created or
    /// inserted object in a map keyed by payload.
    #[derive(Default)]
    pub struct TestHost {
        objects: HashMap<[u8; 32], fix_core::data::Node>,
        /// Handles of every object the guest created, in creation order.
        pub created: Vec<Handle>,
    }

    fn key(h: Handle) -> [u8; 32] {
        let mut k = *h.raw();
        k[30] = 0;
        k
    }

    impl TestHost {
        /// Registers a blob and returns its handle.
        pub fn insert_blob(&mut self, blob: Blob) -> Handle {
            let h = blob.handle();
            self.objects
                .insert(key(h), fix_core::data::Node::Blob(blob));
            h
        }

        /// Registers a tree and returns its handle.
        pub fn insert_tree(&mut self, tree: Tree) -> Handle {
            let h = tree.handle();
            self.objects
                .insert(key(h), fix_core::data::Node::Tree(tree));
            h
        }
    }

    impl HostApi for TestHost {
        fn load_blob(&mut self, handle: Handle) -> Result<Blob> {
            if let Some(b) = fix_core::data::literal_blob(handle) {
                return Ok(b);
            }
            self.objects
                .get(&key(handle))
                .ok_or(Error::NotFound(handle))?
                .as_blob()
                .cloned()
        }

        fn load_tree(&mut self, handle: Handle) -> Result<Tree> {
            self.objects
                .get(&key(handle))
                .ok_or(Error::NotFound(handle))?
                .as_tree()
                .cloned()
        }

        fn create_blob(&mut self, data: Vec<u8>) -> Result<Handle> {
            let blob = Blob::from_vec(data);
            let h = self.insert_blob(blob);
            self.created.push(h);
            Ok(h)
        }

        fn create_tree(&mut self, entries: Vec<Handle>) -> Result<Handle> {
            let tree = Tree::from_handles(entries);
            let h = self.insert_tree(tree);
            self.created.push(h);
            Ok(h)
        }
    }
}
