//! The FixVM instruction set.
//!
//! FixVM is a small deterministic stack machine that plays the role the
//! paper assigns to WebAssembly: a sandboxed intermediate representation
//! for guest procedures, with no ambient authority — the only way a guest
//! touches the world is through the Fixpoint host API, and the only data
//! it can name are Handles it was given or created (capability-style,
//! like Wasm `externref`).
//!
//! Values on the operand stack are `u64`. Handles are referred to by
//! *table index*: the handle table starts with the input tree at index 0
//! and grows as the guest traverses trees or creates objects.

use std::fmt;

/// One decoded FixVM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Does nothing.
    Nop,
    /// Traps unconditionally.
    Unreachable,
    /// Pushes an immediate constant.
    Const(u64),
    /// Pushes the value of a local.
    LocalGet(u16),
    /// Pops into a local.
    LocalSet(u16),
    /// Pops and discards the top of stack.
    Drop,
    /// Duplicates the top of stack.
    Dup,
    /// Swaps the top two stack values.
    Swap,

    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; traps on a zero divisor.
    DivU,
    /// Unsigned remainder; traps on a zero divisor.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Logical right shift (modulo 64).
    ShrU,
    /// Pushes 1 if equal else 0.
    Eq,
    /// Pushes 1 if unequal else 0.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-than.
    GtU,
    /// Unsigned less-or-equal.
    LeU,
    /// Unsigned greater-or-equal.
    GeU,
    /// Pushes 1 if zero else 0.
    Eqz,

    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Pops a condition; jumps if nonzero.
    JumpIf(u32),
    /// Pops a condition; jumps if zero.
    JumpIfZero(u32),
    /// Calls a function by index; pops the callee's arguments.
    Call(u16),
    /// Returns from the current function with the top of stack.
    Return,

    /// Pops an address; pushes the byte there (zero extended).
    MemLoad8,
    /// Pops an address; pushes the little-endian u32 there.
    MemLoad32,
    /// Pops an address; pushes the little-endian u64 there.
    MemLoad64,
    /// Pops value then address; stores the low byte.
    MemStore8,
    /// Pops value then address; stores as little-endian u32.
    MemStore32,
    /// Pops value then address; stores as little-endian u64.
    MemStore64,
    /// Pushes the current linear-memory size in bytes.
    MemSize,
    /// Pops a byte count; grows memory, pushing the old size, or traps if
    /// the guest's memory limit would be exceeded.
    MemGrow,

    /// Pops a handle index; pushes the referent's length (blob bytes).
    BlobLen,
    /// Pops `len`, `mem_off`, `blob_off`, `handle`; copies blob bytes into
    /// linear memory.
    BlobRead,
    /// Pops `blob_off` then `handle`; pushes the little-endian u64 at that
    /// offset of the blob (convenience, avoids a memory round trip).
    BlobReadU64,
    /// Pops `len` then `mem_off`; creates a blob from linear memory and
    /// pushes its handle index.
    CreateBlob,
    /// Pops a u64; creates an 8-byte little-endian blob.
    CreateBlobU64,
    /// Pops a handle index; pushes the tree's entry count.
    TreeLen,
    /// Pops `index` then `handle`; pushes the handle index of that entry.
    TreeGet,
    /// Pops a handle index and appends it to the tree builder.
    TbPush,
    /// Builds a tree from the builder's contents (clearing it); pushes the
    /// new tree's handle index.
    TbBuild,
    /// Pops a tree handle index; pushes an Application thunk handle index.
    Application,
    /// Pops a handle index; pushes an Identification thunk handle index.
    Identification,
    /// Pops `index` then `handle`; pushes a Selection thunk handle index.
    SelectionIdx,
    /// Pops `end`, `begin`, `handle`; pushes a range-Selection thunk.
    SelectionRange,
    /// Pops a thunk handle index; pushes a Strict encode handle index.
    Strict,
    /// Pops a thunk handle index; pushes a Shallow encode handle index.
    Shallow,
    /// Pops a handle index; pushes its kind code (see [`kind_code`]).
    KindOf,
    /// Pops a handle index; pushes the handle's size field.
    SizeOf,
    /// Pops two handle indices; pushes 1 if they name the same handle.
    EqHandle,
    /// Pops a handle index and finishes `_fix_apply` with that handle.
    RetHandle,
}

/// Kind codes returned by [`Instr::KindOf`].
pub mod kind_code {
    /// Accessible blob.
    pub const BLOB_OBJECT: u64 = 0;
    /// Accessible tree.
    pub const TREE_OBJECT: u64 = 1;
    /// Inaccessible blob.
    pub const BLOB_REF: u64 = 2;
    /// Inaccessible tree.
    pub const TREE_REF: u64 = 3;
    /// Any thunk.
    pub const THUNK: u64 = 4;
    /// Any encode.
    pub const ENCODE: u64 = 5;
}

impl Instr {
    /// The opcode byte for this instruction.
    pub fn opcode(&self) -> u8 {
        use Instr::*;
        match self {
            Nop => 0x00,
            Unreachable => 0x01,
            Const(_) => 0x02,
            LocalGet(_) => 0x03,
            LocalSet(_) => 0x04,
            Drop => 0x05,
            Dup => 0x06,
            Swap => 0x07,
            Add => 0x10,
            Sub => 0x11,
            Mul => 0x12,
            DivU => 0x13,
            RemU => 0x14,
            And => 0x15,
            Or => 0x16,
            Xor => 0x17,
            Shl => 0x18,
            ShrU => 0x19,
            Eq => 0x1A,
            Ne => 0x1B,
            LtU => 0x1C,
            GtU => 0x1D,
            LeU => 0x1E,
            GeU => 0x1F,
            Eqz => 0x20,
            Jump(_) => 0x30,
            JumpIf(_) => 0x31,
            JumpIfZero(_) => 0x32,
            Call(_) => 0x33,
            Return => 0x34,
            MemLoad8 => 0x40,
            MemLoad32 => 0x41,
            MemLoad64 => 0x42,
            MemStore8 => 0x43,
            MemStore32 => 0x44,
            MemStore64 => 0x45,
            MemSize => 0x46,
            MemGrow => 0x47,
            BlobLen => 0x50,
            BlobRead => 0x51,
            BlobReadU64 => 0x52,
            CreateBlob => 0x53,
            CreateBlobU64 => 0x54,
            TreeLen => 0x55,
            TreeGet => 0x56,
            TbPush => 0x57,
            TbBuild => 0x58,
            Application => 0x59,
            Identification => 0x5A,
            SelectionIdx => 0x5B,
            SelectionRange => 0x5C,
            Strict => 0x5D,
            Shallow => 0x5E,
            KindOf => 0x5F,
            SizeOf => 0x60,
            EqHandle => 0x61,
            RetHandle => 0x62,
        }
    }

    /// Serializes this instruction (opcode + immediates, little endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.opcode());
        match self {
            Instr::Const(v) => out.extend_from_slice(&v.to_le_bytes()),
            Instr::LocalGet(i) | Instr::LocalSet(i) | Instr::Call(i) => {
                out.extend_from_slice(&i.to_le_bytes())
            }
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfZero(t) => {
                out.extend_from_slice(&t.to_le_bytes())
            }
            _ => {}
        }
    }

    /// Decodes one instruction from `code[pos..]`, returning it and the
    /// number of bytes consumed.
    pub fn decode(code: &[u8], pos: usize) -> Option<(Instr, usize)> {
        use Instr::*;
        let op = *code.get(pos)?;
        let u16_at = |p: usize| -> Option<u16> {
            Some(u16::from_le_bytes([*code.get(p)?, *code.get(p + 1)?]))
        };
        let u32_at = |p: usize| -> Option<u32> {
            Some(u32::from_le_bytes([
                *code.get(p)?,
                *code.get(p + 1)?,
                *code.get(p + 2)?,
                *code.get(p + 3)?,
            ]))
        };
        let u64_at = |p: usize| -> Option<u64> {
            let mut b = [0u8; 8];
            for (i, slot) in b.iter_mut().enumerate() {
                *slot = *code.get(p + i)?;
            }
            Some(u64::from_le_bytes(b))
        };
        let simple = |i: Instr| Some((i, 1));
        match op {
            0x00 => simple(Nop),
            0x01 => simple(Unreachable),
            0x02 => Some((Const(u64_at(pos + 1)?), 9)),
            0x03 => Some((LocalGet(u16_at(pos + 1)?), 3)),
            0x04 => Some((LocalSet(u16_at(pos + 1)?), 3)),
            0x05 => simple(Drop),
            0x06 => simple(Dup),
            0x07 => simple(Swap),
            0x10 => simple(Add),
            0x11 => simple(Sub),
            0x12 => simple(Mul),
            0x13 => simple(DivU),
            0x14 => simple(RemU),
            0x15 => simple(And),
            0x16 => simple(Or),
            0x17 => simple(Xor),
            0x18 => simple(Shl),
            0x19 => simple(ShrU),
            0x1A => simple(Eq),
            0x1B => simple(Ne),
            0x1C => simple(LtU),
            0x1D => simple(GtU),
            0x1E => simple(LeU),
            0x1F => simple(GeU),
            0x20 => simple(Eqz),
            0x30 => Some((Jump(u32_at(pos + 1)?), 5)),
            0x31 => Some((JumpIf(u32_at(pos + 1)?), 5)),
            0x32 => Some((JumpIfZero(u32_at(pos + 1)?), 5)),
            0x33 => Some((Call(u16_at(pos + 1)?), 3)),
            0x34 => simple(Return),
            0x40 => simple(MemLoad8),
            0x41 => simple(MemLoad32),
            0x42 => simple(MemLoad64),
            0x43 => simple(MemStore8),
            0x44 => simple(MemStore32),
            0x45 => simple(MemStore64),
            0x46 => simple(MemSize),
            0x47 => simple(MemGrow),
            0x50 => simple(BlobLen),
            0x51 => simple(BlobRead),
            0x52 => simple(BlobReadU64),
            0x53 => simple(CreateBlob),
            0x54 => simple(CreateBlobU64),
            0x55 => simple(TreeLen),
            0x56 => simple(TreeGet),
            0x57 => simple(TbPush),
            0x58 => simple(TbBuild),
            0x59 => simple(Application),
            0x5A => simple(Identification),
            0x5B => simple(SelectionIdx),
            0x5C => simple(SelectionRange),
            0x5D => simple(Strict),
            0x5E => simple(Shallow),
            0x5F => simple(KindOf),
            0x60 => simple(SizeOf),
            0x61 => simple(EqHandle),
            0x62 => simple(RetHandle),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const(v) => write!(f, "const {v}"),
            Instr::LocalGet(i) => write!(f, "local.get {i}"),
            Instr::LocalSet(i) => write!(f, "local.set {i}"),
            Instr::Jump(t) => write!(f, "jump {t}"),
            Instr::JumpIf(t) => write!(f, "jump_if {t}"),
            Instr::JumpIfZero(t) => write!(f, "jump_if_zero {t}"),
            Instr::Call(i) => write!(f, "call {i}"),
            other => {
                let s = format!("{other:?}");
                write!(f, "{}", s.to_lowercase())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_simple() -> Vec<Instr> {
        use Instr::*;
        vec![
            Nop,
            Unreachable,
            Drop,
            Dup,
            Swap,
            Add,
            Sub,
            Mul,
            DivU,
            RemU,
            And,
            Or,
            Xor,
            Shl,
            ShrU,
            Eq,
            Ne,
            LtU,
            GtU,
            LeU,
            GeU,
            Eqz,
            Return,
            MemLoad8,
            MemLoad32,
            MemLoad64,
            MemStore8,
            MemStore32,
            MemStore64,
            MemSize,
            MemGrow,
            BlobLen,
            BlobRead,
            BlobReadU64,
            CreateBlob,
            CreateBlobU64,
            TreeLen,
            TreeGet,
            TbPush,
            TbBuild,
            Application,
            Identification,
            SelectionIdx,
            SelectionRange,
            Strict,
            Shallow,
            KindOf,
            SizeOf,
            EqHandle,
            RetHandle,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut instrs = all_simple();
        instrs.extend([
            Instr::Const(0),
            Instr::Const(u64::MAX),
            Instr::LocalGet(3),
            Instr::LocalSet(65535),
            Instr::Jump(0),
            Instr::JumpIf(12345),
            Instr::JumpIfZero(u32::MAX),
            Instr::Call(7),
        ]);
        let mut code = Vec::new();
        for i in &instrs {
            i.encode(&mut code);
        }
        let mut pos = 0;
        for expect in &instrs {
            let (got, used) = Instr::decode(&code, pos).unwrap();
            assert_eq!(got, *expect);
            pos += used;
        }
        assert_eq!(pos, code.len());
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        let mut instrs = all_simple();
        instrs.extend([
            Instr::Const(0),
            Instr::LocalGet(0),
            Instr::LocalSet(0),
            Instr::Jump(0),
            Instr::JumpIf(0),
            Instr::JumpIfZero(0),
            Instr::Call(0),
        ]);
        for i in &instrs {
            assert!(
                seen.insert(i.opcode()),
                "duplicate opcode {:#x}",
                i.opcode()
            );
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(Instr::decode(&[0xFF], 0).is_none());
        // Truncated immediate.
        assert!(Instr::decode(&[0x02, 1, 2], 0).is_none());
    }
}
