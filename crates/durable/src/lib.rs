//! `fix-durable`: the persistence tier — an append-only content-addressed
//! log with snapshots, lazy restart, and spill-to-disk.
//!
//! The Fix paper's core bet is that content addressing makes computation
//! state portable and replayable, which makes durability nearly free: a
//! stored object's name *is* its checksum, and a memoized relation is a
//! fact about deterministic evaluation that can be replayed on any node.
//! [`DurableStore`] exploits both. It wraps a
//! [`fix_storage::Store`]/[`RelationCache`](fix_storage::RelationCache)
//! pair through the storage hooks:
//!
//! * every fresh object insert and memoized relation is appended to a
//!   checksummed frame log (`log.fixlog`) by a batching group-commit
//!   writer thread, with a configurable [`FsyncPolicy`];
//! * periodic [`snapshot`](DurableStore::snapshot)s compact the full
//!   state (all relations + all live objects) into `snap-<seq>.fixsnap`
//!   and truncate the log;
//! * recovery ([`DurableStore::open`]) loads the newest valid snapshot,
//!   replays the log tail, and tolerates a torn final frame (truncated,
//!   counted in [`DurableStats::truncated_bytes`]);
//! * restart is *lazy*: open builds only an index (payload key → file
//!   offset) and replays relations — object bytes are faulted in from
//!   disk on first touch, so a warm restart serves its first request
//!   from disk instead of recomputing;
//! * an optional [`spill_watermark_bytes`](DurableOptions::spill_watermark_bytes)
//!   bounds resident memory by evicting cold persisted objects, which
//!   refault on demand.
//!
//! # Example
//!
//! ```
//! use fix_durable::{DurableOptions, DurableStore};
//! use fix_core::data::Blob;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let blob = Blob::from_vec(vec![7u8; 100]);
//! let handle = {
//!     let d = DurableStore::open(dir.path(), DurableOptions::default()).unwrap();
//!     let handle = d.store().put_blob(blob.clone());
//!     d.flush().unwrap();
//!     handle
//! };
//! // A new process: the object is indexed but not resident, and the
//! // first read faults it in from disk.
//! let d = DurableStore::open(dir.path(), DurableOptions::default()).unwrap();
//! assert_eq!(d.store().object_count(), 0);
//! assert_eq!(d.store().get_blob(handle).unwrap(), blob);
//! assert_eq!(d.stats().faults, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod store;

pub use frame::{crc32, LOG_MAGIC, SNAP_MAGIC};
pub use store::DurableStore;

/// When the group-commit writer calls `fsync` on the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every write batch (safest, slowest).
    Always,
    /// After every N appended frames (bounded loss window).
    EveryN(u64),
    /// Only at snapshots, explicit flushes, and shutdown (fastest; a
    /// crash may lose everything since the last snapshot/flush).
    OnSnapshot,
}

/// What the deterministic kill point does when it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Stop persisting: write a torn partial frame, then silently drop
    /// all further appends — the in-process simulation of a crash
    /// (the caller discards the in-memory state and re-opens).
    Stop,
    /// Write a torn partial frame and terminate the process with this
    /// exit code — the end-to-end crash used by the CI recovery smoke.
    Exit(i32),
}

/// A deterministic crash injection point: trip after the N-th appended
/// frame, mid-batch, leaving a torn final frame for recovery to handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Trip when this many frames have been written.
    pub after_frames: u64,
    /// What tripping does.
    pub mode: KillMode,
}

/// Configures a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// The fsync policy for the group-commit writer.
    pub fsync: FsyncPolicy,
    /// Take a snapshot (and truncate the log) automatically when the log
    /// exceeds this many bytes. `None` = snapshot only on request.
    pub snapshot_log_bytes: Option<u64>,
    /// Evict cold persisted objects from memory when the in-memory store
    /// exceeds this many payload bytes. `None` = never spill.
    pub spill_watermark_bytes: Option<u64>,
    /// Deterministic crash injection (tests and the recovery smoke).
    pub kill: Option<KillPoint>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::EveryN(64),
            snapshot_log_bytes: None,
            spill_watermark_bytes: None,
            kill: None,
        }
    }
}

/// A point-in-time copy of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Frames appended to the log this run (nodes + relations).
    pub appended_frames: u64,
    /// Log bytes written this run (frames only, not the header).
    pub appended_bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Objects faulted in from disk on first touch.
    pub faults: u64,
    /// Objects evicted by the spill watermark.
    pub spills: u64,
    /// Snapshots taken this run.
    pub snapshots: u64,
    /// Objects found on disk at open (the lazy index size at open).
    pub replayed_nodes: u64,
    /// Memoized relations replayed into the cache at open.
    pub replayed_relations: u64,
    /// Torn/corrupt tail bytes truncated during recovery.
    pub truncated_bytes: u64,
}
