//! The on-disk framing: length-prefixed, checksummed records.
//!
//! Both durable files — the append-only log and each snapshot — are a
//! magic header followed by a sequence of *frames*:
//!
//! ```text
//! [ u32 payload length ][ u32 CRC-32 of payload ][ payload ]
//! ```
//!
//! A frame payload is one *record*, discriminated by its first byte:
//!
//! * `1` (node) — `[ 32-byte payload key ][ Parcel bytes ]`: one stored
//!   object, encoded as a single-object [`fix_core::wire::Parcel`] whose
//!   root is the object's canonical handle. Reusing the parcel format
//!   means every fault-in re-verifies the payload against its
//!   content-addressed name for free.
//! * `2` (relation) — `[ u8 relation ][ 32-byte input ][ 32-byte output ]`:
//!   one memoized evaluation relation.
//! * `3` (commit) — `[ u64 frame count ]`: a snapshot terminator; a
//!   snapshot is valid only if its last frame is a commit naming the
//!   number of frames before it.
//!
//! Scanning is *lazy*: node frames are classified by peeking the key and
//! the parcel's root handle without parsing (or verifying) the payload —
//! that work is deferred to first touch. A scan stops at the first
//! invalid frame (bad length or checksum); everything after it is an
//! unsynced torn tail, reported so recovery can truncate it.

use fix_core::data::Node;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::wire::Parcel;
use fix_storage::Relation;

/// The 8-byte magic opening the append-only log.
pub const LOG_MAGIC: &[u8; 8] = b"FIXLOG1\0";
/// The 8-byte magic opening a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"FIXSNAP1";

const TAG_NODE: u8 = 1;
const TAG_RELATION: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// Frame header size: u32 length + u32 checksum.
pub const FRAME_HEADER: usize = 8;

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Implemented
// here because the environment is offline; ~10 lines is cheaper than a
// dependency.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends a frame around `payload` to `out`.
pub fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a node record payload: `(payload_key, Node)` as key + parcel.
pub fn encode_node(key: [u8; 32], node: &Node) -> Vec<u8> {
    let parcel = Parcel::new(node.handle(), vec![node.clone()]);
    let mut out = Vec::with_capacity(1 + 32 + 64);
    out.push(TAG_NODE);
    out.extend_from_slice(&key);
    out.extend_from_slice(&parcel.to_bytes());
    out
}

/// Encodes a relation record payload.
pub fn encode_relation(relation: Relation, input: Handle, output: Handle) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 1 + 64);
    out.push(TAG_RELATION);
    out.push(match relation {
        Relation::Eval => 0,
        Relation::Apply => 1,
        Relation::Force => 2,
    });
    out.extend_from_slice(input.raw());
    out.extend_from_slice(output.raw());
    out
}

/// Encodes a snapshot commit record covering `frames` preceding frames.
pub fn encode_commit(frames: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(TAG_COMMIT);
    out.extend_from_slice(&frames.to_le_bytes());
    out
}

/// Parses a node record payload fully, re-verifying the object's bytes
/// against its content-addressed name (fault-in path).
pub fn decode_node(payload: &[u8]) -> Result<([u8; 32], Node)> {
    let malformed = |r: &str| Error::Backend {
        backend: "durable",
        message: format!("malformed node record: {r}"),
    };
    if payload.first() != Some(&TAG_NODE) || payload.len() < 33 {
        return Err(malformed("bad tag or truncated key"));
    }
    let mut key = [0u8; 32];
    key.copy_from_slice(&payload[1..33]);
    let parcel = Parcel::from_bytes(&payload[33..])?;
    match parcel.objects.as_slice() {
        [node] if node.handle() == parcel.root => {
            Ok((key, parcel.objects.into_iter().next().unwrap()))
        }
        _ => Err(malformed("expected exactly one object matching the root")),
    }
}

/// A record classified by a scan, without parsing node payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scanned {
    /// A stored object at `offset` (frame start, from the file head);
    /// `len` is the whole frame length including its header.
    Node {
        /// The object's payload key.
        key: [u8; 32],
        /// The object's canonical handle (parcel root, unverified —
        /// verification happens when the payload is parsed on fault-in).
        handle: Handle,
        /// Frame start offset in the file.
        offset: u64,
        /// Whole frame length (header + payload).
        len: u32,
    },
    /// A memoized relation.
    Relation(Relation, Handle, Handle),
    /// A snapshot commit covering the preceding frame count.
    Commit(u64),
}

/// The result of scanning a frame sequence.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every valid record, in file order.
    pub records: Vec<Scanned>,
    /// Bytes of valid frames from `base` (i.e. the offset, from the
    /// file head, one past the last valid frame).
    pub valid_len: u64,
    /// Bytes after `valid_len` — a torn or corrupt tail.
    pub torn_bytes: u64,
}

/// Scans `data` (the file contents *after* the magic, which starts at
/// file offset `base`) into records, stopping at the first invalid
/// frame. Node payloads are classified, not parsed.
pub fn scan(data: &[u8], base: u64) -> Scan {
    let mut out = Scan {
        valid_len: base,
        ..Scan::default()
    };
    let mut pos = 0usize;
    while pos < data.len() {
        let rest = &data[pos..];
        if rest.len() < FRAME_HEADER {
            break; // Torn mid-header.
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let declared_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
            break; // Torn mid-payload.
        };
        if crc32(payload) != declared_crc {
            break; // Corrupt: treat like a torn tail (unsynced garbage).
        }
        let Some(record) = classify(payload, base + pos as u64, (FRAME_HEADER + len) as u32) else {
            break; // Unknown tag or malformed record body.
        };
        out.records.push(record);
        pos += FRAME_HEADER + len;
        out.valid_len = base + pos as u64;
    }
    out.torn_bytes = (data.len() - pos) as u64;
    out
}

fn classify(payload: &[u8], offset: u64, frame_len: u32) -> Option<Scanned> {
    match *payload.first()? {
        TAG_NODE => {
            // [tag][key:32][parcel: magic:8 root:32 ...] — peek the root
            // handle without touching the object bytes.
            let key: [u8; 32] = payload.get(1..33)?.try_into().ok()?;
            if payload.get(33..41)? != fix_core::wire::MAGIC {
                return None;
            }
            let raw: [u8; 32] = payload.get(41..73)?.try_into().ok()?;
            let handle = Handle::from_raw(raw).ok()?;
            Some(Scanned::Node {
                key,
                handle,
                offset,
                len: frame_len,
            })
        }
        TAG_RELATION => {
            let relation = match payload.get(1)? {
                0 => Relation::Eval,
                1 => Relation::Apply,
                2 => Relation::Force,
                _ => return None,
            };
            let input: [u8; 32] = payload.get(2..34)?.try_into().ok()?;
            let output: [u8; 32] = payload.get(34..66)?.try_into().ok()?;
            if payload.len() != 66 {
                return None;
            }
            Some(Scanned::Relation(
                relation,
                Handle::from_raw(input).ok()?,
                Handle::from_raw(output).ok()?,
            ))
        }
        TAG_COMMIT => {
            let n: [u8; 8] = payload.get(1..9)?.try_into().ok()?;
            if payload.len() != 9 {
                return None;
            }
            Some(Scanned::Commit(u64::from_le_bytes(n)))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};
    use fix_storage::payload_key;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn node_record_round_trips_and_scans_lazily() {
        let node = Node::Blob(Blob::from_vec(vec![7u8; 100]));
        let key = payload_key(node.handle());
        let payload = encode_node(key, &node);
        let (got_key, got_node) = decode_node(&payload).unwrap();
        assert_eq!(got_key, key);
        assert_eq!(got_node, node);

        let mut bytes = Vec::new();
        push_frame(&mut bytes, &payload);
        let scan = scan(&bytes, 8);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, 8 + bytes.len() as u64);
        assert_eq!(
            scan.records,
            vec![Scanned::Node {
                key,
                handle: node.handle(),
                offset: 8,
                len: bytes.len() as u32,
            }]
        );
    }

    #[test]
    fn relation_record_round_trips() {
        let tree = Tree::from_handles(vec![]);
        let input = tree.handle().application().unwrap();
        let output = Blob::from_vec(vec![9u8; 64]).handle();
        let mut bytes = Vec::new();
        push_frame(&mut bytes, &encode_relation(Relation::Eval, input, output));
        push_frame(&mut bytes, &encode_commit(1));
        let scan = scan(&bytes, 8);
        assert_eq!(
            scan.records,
            vec![
                Scanned::Relation(Relation::Eval, input, output),
                Scanned::Commit(1),
            ]
        );
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let node = Node::Blob(Blob::from_vec(vec![1u8; 64]));
        let key = payload_key(node.handle());
        let mut bytes = Vec::new();
        push_frame(&mut bytes, &encode_node(key, &node));
        let valid = bytes.len();
        // A torn frame: a header promising more bytes than exist.
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 11]);
        let scan = scan(&bytes, 8);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, 8 + valid as u64);
        assert_eq!(scan.torn_bytes, 8 + 11);
    }

    #[test]
    fn scan_stops_at_corrupt_checksum() {
        let node = Node::Blob(Blob::from_vec(vec![2u8; 64]));
        let mut bytes = Vec::new();
        push_frame(&mut bytes, &encode_node(payload_key(node.handle()), &node));
        push_frame(
            &mut bytes,
            &encode_relation(Relation::Apply, node.handle(), node.handle()),
        );
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF; // Corrupt the second frame's payload.
        let scan = scan(&bytes, 8);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn decode_rejects_mismatched_payload() {
        let node = Node::Blob(Blob::from_vec(vec![3u8; 64]));
        let mut payload = encode_node(payload_key(node.handle()), &node);
        let n = payload.len();
        payload[n - 5] ^= 0xFF; // Flip a byte of the object's data.
        assert!(decode_node(&payload).is_err());
    }
}
