//! [`DurableStore`]: the persistence tier around a
//! [`Store`]/[`RelationCache`] pair.
//!
//! Architecture: callers talk to the wrapped in-memory store as usual;
//! the storage hooks feed a single group-commit writer thread that owns
//! the log file. Appends are asynchronous (bounded loss per the
//! [`FsyncPolicy`](crate::FsyncPolicy)); [`DurableStore::flush`] is the
//! synchronous barrier. Reads that miss memory fault from disk through
//! the index this module maintains.

use crate::frame::{self, Scanned, FRAME_HEADER, LOG_MAGIC, SNAP_MAGIC};
use crate::{DurableOptions, DurableStats, FsyncPolicy, KillMode};
use fix_core::data::Node;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_storage::{
    payload_key, FaultSource, Relation, RelationCache, RelationSink, Store, StoreSink,
};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Weak};

const LOG_FILE: &str = "log.fixlog";
const MAGIC_LEN: u64 = 8;

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:016x}.fixsnap")
}

fn io_err(e: impl std::fmt::Display) -> Error {
    Error::Backend {
        backend: "durable",
        message: e.to_string(),
    }
}

/// Where a persisted object's frame lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    Log,
    Snapshot(u64),
}

/// One durable index entry: payload key → on-disk frame.
#[derive(Debug, Clone)]
struct Slot {
    file: Location,
    offset: u64,
    len: u32,
    handle: Handle,
    /// Logical last-touch tick (spill evicts the coldest first).
    touch: u64,
}

enum Pending {
    Node {
        key: [u8; 32],
        handle: Handle,
        payload: Vec<u8>,
    },
    Relation {
        payload: Vec<u8>,
    },
}

#[derive(Default)]
struct Queue {
    pending: Vec<Pending>,
    /// Ops ever enqueued / fsynced through — flush() waits on these.
    enqueued: u64,
    synced: u64,
    flush_upto: u64,
    snap_requests: u64,
    snaps_done: u64,
    shutdown: bool,
    /// The deterministic kill point tripped: appends are dropped.
    crashed: bool,
    io_error: Option<String>,
}

/// The writer's live metric cells. Every counter is a registry-adopted
/// [`fix_obs::Counter`], so [`DurableStore::stats`] (the legacy struct
/// view) and [`DurableStore::metrics`] (the named-snapshot view) read
/// the very same cells and can never disagree.
#[derive(Default)]
struct Counters {
    appended_frames: fix_obs::Counter,
    appended_bytes: fix_obs::Counter,
    fsyncs: fix_obs::Counter,
    faults: fix_obs::Counter,
    spills: fix_obs::Counter,
    snapshots: fix_obs::Counter,
    replayed_nodes: fix_obs::Counter,
    replayed_relations: fix_obs::Counter,
    truncated_bytes: fix_obs::Counter,
    /// Wall latency of each group-commit fsync, in µs.
    fsync_us: fix_obs::HistogramCell,
    /// Wall latency of each disk refault, in µs.
    fault_us: fix_obs::HistogramCell,
    /// Wall latency of each snapshot, in µs.
    snapshot_us: fix_obs::HistogramCell,
}

impl Counters {
    /// Registers every cell under its `durable.*` name.
    fn register(&self, reg: &fix_obs::Registry) {
        reg.register_counter("durable.appended_frames", &self.appended_frames);
        reg.register_counter("durable.appended_bytes", &self.appended_bytes);
        reg.register_counter("durable.fsyncs", &self.fsyncs);
        reg.register_counter("durable.faults", &self.faults);
        reg.register_counter("durable.spills", &self.spills);
        reg.register_counter("durable.snapshots", &self.snapshots);
        reg.register_counter("durable.replayed_nodes", &self.replayed_nodes);
        reg.register_counter("durable.replayed_relations", &self.replayed_relations);
        reg.register_counter("durable.truncated_bytes", &self.truncated_bytes);
        reg.register_histogram("durable.fsync_us", &self.fsync_us);
        reg.register_histogram("durable.fault_us", &self.fault_us);
        reg.register_histogram("durable.snapshot_us", &self.snapshot_us);
    }
}

/// Trace id for durable events: the first 8 bytes of the handle.
fn trace_id(handle: Handle) -> u64 {
    u64::from_le_bytes(handle.raw()[..8].try_into().expect("handle has 32 bytes"))
}

struct Inner {
    dir: PathBuf,
    options: DurableOptions,
    store: Arc<Store>,
    cache: Arc<RelationCache>,
    index: RwLock<HashMap<[u8; 32], Slot>>,
    queue: Mutex<Queue>,
    /// Wakes the writer (new work / flush / snapshot / shutdown).
    work: Condvar,
    /// Wakes flush/snapshot waiters.
    done: Condvar,
    log_read: Mutex<File>,
    snap_read: Mutex<Option<(u64, File)>>,
    stats: Counters,
    metrics: fix_obs::Registry,
    clock: AtomicU64,
    replayed: Vec<(Relation, Handle, Handle)>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Inner {
    // ---- hook bodies -------------------------------------------------

    fn observe_insert(&self, node: &Node) {
        let key = payload_key(node.handle());
        if self.index.read().contains_key(&key) {
            return; // Already persisted (e.g. a refault after a spill).
        }
        let payload = frame::encode_node(key, node);
        let mut q = self.queue.lock();
        if q.crashed || q.shutdown {
            return;
        }
        q.pending.push(Pending::Node {
            key,
            handle: node.handle(),
            payload,
        });
        q.enqueued += 1;
        self.work.notify_one();
    }

    fn observe_relation(&self, relation: Relation, input: Handle, output: Handle) {
        let payload = frame::encode_relation(relation, input, output);
        let mut q = self.queue.lock();
        if q.crashed || q.shutdown {
            return;
        }
        q.pending.push(Pending::Relation { payload });
        q.enqueued += 1;
        self.work.notify_one();
    }

    fn knows(&self, handle: Handle) -> bool {
        self.index.read().contains_key(&payload_key(handle))
    }

    fn fault_in(&self, handle: Handle) -> Option<Node> {
        let key = payload_key(handle);
        // A snapshot may move the slot (log → snapshot file) between the
        // lookup and the read; on a failed read, re-look the slot up.
        for _ in 0..3 {
            let slot = self.index.read().get(&key).cloned()?;
            let t0 = std::time::Instant::now();
            if let Some(node) = self.read_node(&slot) {
                let dur = t0.elapsed();
                self.stats.faults.inc();
                self.stats.fault_us.record(dur.as_micros() as u64);
                if fix_obs::tracing_enabled() {
                    fix_obs::emit_span(
                        fix_obs::EventKind::DurRefault,
                        0,
                        trace_id(handle),
                        0,
                        slot.len,
                        dur.as_nanos() as u64,
                    );
                }
                let tick = self.clock.fetch_add(1, Relaxed);
                if let Some(s) = self.index.write().get_mut(&key) {
                    s.touch = tick;
                }
                return Some(node);
            }
        }
        None
    }

    // ---- disk reads --------------------------------------------------

    fn read_node(&self, slot: &Slot) -> Option<Node> {
        let bytes = self.read_frame(slot)?;
        if bytes.len() < FRAME_HEADER {
            return None;
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let payload = bytes.get(FRAME_HEADER..FRAME_HEADER + len)?;
        if frame::crc32(payload) != crc {
            return None;
        }
        let (_, node) = frame::decode_node(payload).ok()?;
        Some(node)
    }

    fn read_frame(&self, slot: &Slot) -> Option<Vec<u8>> {
        let mut buf = vec![0u8; slot.len as usize];
        match slot.file {
            Location::Log => {
                let mut f = self.log_read.lock();
                f.seek(SeekFrom::Start(slot.offset)).ok()?;
                f.read_exact(&mut buf).ok()?;
            }
            Location::Snapshot(seq) => {
                let mut guard = self.snap_read.lock();
                let stale = !matches!(&*guard, Some((s, _)) if *s == seq);
                if stale {
                    let f = File::open(self.dir.join(snap_name(seq))).ok()?;
                    *guard = Some((seq, f));
                }
                let (_, f) = guard.as_mut().unwrap();
                f.seek(SeekFrom::Start(slot.offset)).ok()?;
                f.read_exact(&mut buf).ok()?;
            }
        }
        Some(buf)
    }

    // ---- shutdown ----------------------------------------------------

    fn shutdown_and_join(&self) {
        {
            let mut q = self.queue.lock();
            q.shutdown = true;
        }
        self.work.notify_all();
        let handle = self.writer.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// The hook adapter: weak, so the store/cache (which outlive us inside a
/// `Runtime`) don't keep the writer machinery alive in a cycle.
struct Hooks(Weak<Inner>);

impl FaultSource for Hooks {
    fn fault(&self, handle: Handle) -> Option<Node> {
        self.0.upgrade()?.fault_in(handle)
    }

    fn knows(&self, handle: Handle) -> bool {
        self.0.upgrade().is_some_and(|i| i.knows(handle))
    }
}

impl StoreSink for Hooks {
    fn inserted(&self, node: &Node) {
        if let Some(i) = self.0.upgrade() {
            i.observe_insert(node);
        }
    }
}

impl RelationSink for Hooks {
    fn recorded(&self, relation: Relation, input: Handle, output: Handle) {
        if let Some(i) = self.0.upgrade() {
            i.observe_relation(relation, input, output);
        }
    }
}

/// Joins the writer thread when the last user-facing clone drops.
struct ShutdownGuard(Arc<Inner>);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown_and_join();
    }
}

/// A crash-recoverable, content-addressed store: a [`Store`] and
/// [`RelationCache`] whose state survives the process.
///
/// See the [crate docs](crate) for the design; see
/// [`DurableStore::open`] for recovery semantics. Clones share one
/// underlying store; the writer thread stops when the last clone drops
/// (a final implicit flush).
#[derive(Clone)]
pub struct DurableStore {
    inner: Arc<Inner>,
    _guard: Arc<ShutdownGuard>,
}

impl DurableStore {
    /// Opens (or creates) a durable store rooted at `dir`.
    ///
    /// Recovery: load the newest *valid* snapshot (committed, every
    /// frame checksummed, terminated by a commit record — a leftover
    /// `.tmp` from a crash mid-snapshot is ignored), then scan the log
    /// tail. The scan stops at the first invalid frame; a torn final
    /// frame — the signature of a crash mid-append — is truncated
    /// (reported in [`DurableStats::truncated_bytes`]) and the store
    /// opens with everything before it.
    ///
    /// The restart is lazy: only the index and the memoized relations
    /// are loaded eagerly; object bytes fault in on first touch.
    /// Relations whose output data fell into the torn tail are dropped,
    /// so a recovered cache never promises data the log lost.
    pub fn open(dir: impl AsRef<Path>, options: DurableOptions) -> Result<DurableStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(io_err)?;

        let mut index: HashMap<[u8; 32], Slot> = HashMap::new();
        let mut relations: Vec<(Relation, Handle, Handle)> = Vec::new();

        // --- Newest valid snapshot wins. ---
        let mut seqs: Vec<u64> = fs::read_dir(&dir)
            .map_err(io_err)?
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let seq = name.strip_prefix("snap-")?.strip_suffix(".fixsnap")?;
                u64::from_str_radix(seq, 16).ok()
            })
            .collect();
        seqs.sort_unstable();
        let next_seq = seqs.last().map_or(0, |s| s + 1);
        for &seq in seqs.iter().rev() {
            let Ok(bytes) = fs::read(dir.join(snap_name(seq))) else {
                continue;
            };
            if bytes.len() < MAGIC_LEN as usize || &bytes[..8] != SNAP_MAGIC {
                continue;
            }
            let scan = frame::scan(&bytes[8..], MAGIC_LEN);
            let committed = scan.torn_bytes == 0
                && matches!(scan.records.last(),
                    Some(Scanned::Commit(n)) if *n as usize == scan.records.len() - 1);
            if !committed {
                continue;
            }
            for rec in scan.records {
                match rec {
                    Scanned::Node {
                        key,
                        handle,
                        offset,
                        len,
                    } => {
                        index.insert(
                            key,
                            Slot {
                                file: Location::Snapshot(seq),
                                offset,
                                len,
                                handle,
                                touch: 0,
                            },
                        );
                    }
                    Scanned::Relation(r, i, o) => relations.push((r, i, o)),
                    Scanned::Commit(_) => {}
                }
            }
            break;
        }

        // --- Log tail (newer than any snapshot; overrides it). ---
        let log_path = dir.join(LOG_FILE);
        let mut append = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)
            .map_err(io_err)?;
        let mut existing = Vec::new();
        append.read_to_end(&mut existing).map_err(io_err)?;
        let truncated;
        let mut valid_len = MAGIC_LEN;
        if existing.len() >= MAGIC_LEN as usize && &existing[..8] == LOG_MAGIC {
            let scan = frame::scan(&existing[MAGIC_LEN as usize..], MAGIC_LEN);
            valid_len = scan.valid_len;
            truncated = scan.torn_bytes;
            for rec in scan.records {
                match rec {
                    Scanned::Node {
                        key,
                        handle,
                        offset,
                        len,
                    } => {
                        index.insert(
                            key,
                            Slot {
                                file: Location::Log,
                                offset,
                                len,
                                handle,
                                touch: 0,
                            },
                        );
                    }
                    Scanned::Relation(r, i, o) => relations.push((r, i, o)),
                    Scanned::Commit(_) => {}
                }
            }
        } else {
            // New file, or a header torn mid-creation: start fresh.
            truncated = existing.len() as u64;
            append.set_len(0).map_err(io_err)?;
            append.seek(SeekFrom::Start(0)).map_err(io_err)?;
            append.write_all(LOG_MAGIC).map_err(io_err)?;
        }
        if existing.len() as u64 > valid_len {
            // Drop the torn tail so new appends start at a clean edge.
            append.set_len(valid_len).map_err(io_err)?;
            append.sync_data().map_err(io_err)?;
        }
        append.seek(SeekFrom::Start(valid_len)).map_err(io_err)?;

        // A relation must not promise data the log lost (its value frame
        // was enqueued before it, so "relation present, value torn" only
        // happens across the torn tail).
        // (Literal outputs ride in the handle itself and are never
        // indexed, so they are always safe to replay.)
        relations.retain(|(_, _, out)| {
            out.is_literal() || !out.is_value() || index.contains_key(&payload_key(*out))
        });

        let store = Arc::new(Store::new());
        let cache = Arc::new(RelationCache::new());
        for &(r, i, o) in &relations {
            cache.put(r, i, o);
        }
        let replayed = cache.entries();

        let stats = Counters::default();
        stats.replayed_nodes.store(index.len() as u64);
        stats.replayed_relations.store(replayed.len() as u64);
        stats.truncated_bytes.store(truncated);
        let metrics = fix_obs::Registry::new();
        stats.register(&metrics);

        let log_read = File::open(&log_path).map_err(io_err)?;
        let inner = Arc::new(Inner {
            dir,
            options,
            store,
            cache,
            index: RwLock::new(index),
            queue: Mutex::new(Queue::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            log_read: Mutex::new(log_read),
            snap_read: Mutex::new(None),
            stats,
            metrics,
            clock: AtomicU64::new(1),
            replayed,
            writer: Mutex::new(None),
        });

        let hooks = Arc::new(Hooks(Arc::downgrade(&inner)));
        inner
            .store
            .set_fault_source(Arc::clone(&hooks) as Arc<dyn FaultSource>);
        inner
            .store
            .set_sink(Arc::clone(&hooks) as Arc<dyn StoreSink>);
        inner.cache.set_sink(hooks as Arc<dyn RelationSink>);

        let writer_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("fix-durable-writer".into())
            .spawn(move || writer_loop(writer_inner, append, valid_len, next_seq))
            .map_err(io_err)?;
        *inner.writer.lock() = Some(handle);

        Ok(DurableStore {
            _guard: Arc::new(ShutdownGuard(Arc::clone(&inner))),
            inner,
        })
    }

    /// The wrapped in-memory object store (hand this to a runtime).
    pub fn store(&self) -> &Arc<Store> {
        &self.inner.store
    }

    /// The wrapped relation cache, pre-loaded with replayed relations.
    pub fn cache(&self) -> &Arc<RelationCache> {
        &self.inner.cache
    }

    /// The directory holding the log and snapshots.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// A point-in-time copy of the counters — thin reads of the same
    /// live cells [`metrics`](DurableStore::metrics) snapshots.
    pub fn stats(&self) -> DurableStats {
        let c = &self.inner.stats;
        DurableStats {
            appended_frames: c.appended_frames.get(),
            appended_bytes: c.appended_bytes.get(),
            fsyncs: c.fsyncs.get(),
            faults: c.faults.get(),
            spills: c.spills.get(),
            snapshots: c.snapshots.get(),
            replayed_nodes: c.replayed_nodes.get(),
            replayed_relations: c.replayed_relations.get(),
            truncated_bytes: c.truncated_bytes.get(),
        }
    }

    /// A named snapshot of this store's `durable.*` metrics: the
    /// [`stats`](DurableStore::stats) counters plus wall-latency
    /// histograms for fsyncs, refaults, and snapshots.
    pub fn metrics(&self) -> fix_obs::MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// The relations recovered at open — the work a restarted node does
    /// *not* have to redo (each re-submits with zero procedures run).
    pub fn replayed_relations(&self) -> &[(Relation, Handle, Handle)] {
        &self.inner.replayed
    }

    /// Objects currently faultable from disk (the durable index size).
    pub fn indexed_objects(&self) -> usize {
        self.inner.index.read().len()
    }

    /// True once the deterministic kill point has tripped (appends are
    /// being dropped; the next open recovers the pre-crash prefix).
    pub fn crashed(&self) -> bool {
        self.inner.queue.lock().crashed
    }

    /// Blocks until everything appended so far is written *and* fsynced
    /// (regardless of the fsync policy). The durability barrier.
    pub fn flush(&self) -> Result<()> {
        let inner = &self.inner;
        let mut q = inner.queue.lock();
        if q.crashed {
            return Ok(());
        }
        let target = q.enqueued;
        q.flush_upto = q.flush_upto.max(target);
        inner.work.notify_all();
        while q.synced < target && !q.crashed && q.io_error.is_none() && !q.shutdown {
            inner.done.wait(&mut q);
        }
        match &q.io_error {
            Some(e) => Err(io_err(e)),
            None => Ok(()),
        }
    }

    /// Takes a snapshot now: compacts all relations and all live objects
    /// into a fresh `snap-<seq>.fixsnap`, atomically (write, fsync,
    /// rename), then truncates the log and deletes older snapshots.
    /// Blocks until done.
    pub fn snapshot(&self) -> Result<()> {
        let inner = &self.inner;
        let mut q = inner.queue.lock();
        if q.crashed {
            return Ok(());
        }
        q.snap_requests += 1;
        let target = q.snap_requests;
        inner.work.notify_all();
        while q.snaps_done < target && !q.crashed && q.io_error.is_none() && !q.shutdown {
            inner.done.wait(&mut q);
        }
        match &q.io_error {
            Some(e) => Err(io_err(e)),
            None => Ok(()),
        }
    }

    /// Garbage-collects memory *and* the durable index: objects
    /// unreachable from `roots` can neither be read nor faulted back in
    /// afterwards (no resurrection); their log bytes are reclaimed at
    /// the next snapshot. Returns the number of objects collected.
    pub fn gc(&self, roots: &[Handle]) -> usize {
        // Barrier first, so just-inserted objects are indexed and the
        // index prune below sees them.
        let _ = self.flush();
        let inner = &self.inner;
        let mut reachable: HashSet<[u8; 32]> = HashSet::new();
        let mut stack: Vec<Handle> = roots.to_vec();
        while let Some(h) = stack.pop() {
            if h.is_literal() || !reachable.insert(payload_key(h)) {
                continue;
            }
            // Faults lazily-resident trees in so the walk can descend.
            if let Ok(Node::Tree(t)) = inner.store.get(h) {
                stack.extend(t.entries().iter().copied());
            }
        }
        let mut disk_only_pruned = 0usize;
        {
            let mut index = inner.index.write();
            index.retain(|key, slot| {
                let keep = reachable.contains(key);
                if !keep && !inner.store.resident(slot.handle) {
                    disk_only_pruned += 1;
                }
                keep
            });
        }
        inner.store.gc(roots) + disk_only_pruned
    }

    /// Forgets one object entirely: evicts it from memory *and* drops it
    /// from the durable index, so it cannot refault (unlike a spill
    /// eviction, which is transparent). Returns the bytes freed from
    /// memory, if it was resident.
    pub fn forget(&self, handle: Handle) -> Option<u64> {
        let _ = self.flush();
        self.inner.index.write().remove(&payload_key(handle));
        self.inner.store.evict(handle)
    }
}

// ----------------------------------------------------------------------
// The group-commit writer.
// ----------------------------------------------------------------------

fn writer_loop(inner: Arc<Inner>, mut append: File, mut log_len: u64, mut next_seq: u64) {
    let mut durable = 0u64; // Ops written (not necessarily synced).
    let mut synced = 0u64; // Ops fsynced through.
    let mut snaps_done = 0u64;
    let mut unsynced_frames = 0u64;
    let mut dirty = false;
    loop {
        let (batch, flush_upto, snap_requests, shutdown) = {
            let mut q = inner.queue.lock();
            while q.pending.is_empty()
                && q.flush_upto <= synced
                && q.snap_requests <= snaps_done
                && !q.shutdown
            {
                inner.work.wait(&mut q);
            }
            (
                std::mem::take(&mut q.pending),
                q.flush_upto,
                q.snap_requests,
                q.shutdown,
            )
        };

        let mut io_error: Option<String> = None;
        let mut crashed_now = false;
        for op in batch {
            durable += 1;
            if crashed_now || io_error.is_some() {
                continue; // Dropped; `durable` still advances so flush waiters wake.
            }
            let payload = match &op {
                Pending::Node { payload, .. } | Pending::Relation { payload } => payload,
            };
            let mut bytes = Vec::with_capacity(payload.len() + FRAME_HEADER);
            frame::push_frame(&mut bytes, payload);
            let t0 = fix_obs::tracing_enabled().then(std::time::Instant::now);
            if let Err(e) = append.write_all(&bytes) {
                io_error = Some(e.to_string());
                continue;
            }
            let offset = log_len;
            log_len += bytes.len() as u64;
            inner.stats.appended_frames.inc();
            inner.stats.appended_bytes.add(bytes.len() as u64);
            if let Some(t0) = t0 {
                let id = match &op {
                    Pending::Node { handle, .. } => trace_id(*handle),
                    Pending::Relation { .. } => 0,
                };
                fix_obs::emit_span(
                    fix_obs::EventKind::DurAppend,
                    0,
                    id,
                    0,
                    bytes.len() as u32,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            unsynced_frames += 1;
            dirty = true;
            if let Pending::Node { key, handle, .. } = op {
                let touch = inner.clock.fetch_add(1, Relaxed);
                inner.index.write().insert(
                    key,
                    Slot {
                        file: Location::Log,
                        offset,
                        len: bytes.len() as u32,
                        handle,
                        touch,
                    },
                );
            }
            // The deterministic kill point: crash mid-batch, leaving a
            // torn partial frame at the tail for recovery to truncate.
            if let Some(kill) = inner.options.kill {
                if inner.stats.appended_frames.get() == kill.after_frames {
                    let mut torn = Vec::new();
                    torn.extend_from_slice(&1_000_000u32.to_le_bytes());
                    torn.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
                    torn.extend_from_slice(&[0xAB; 11]);
                    let _ = append.write_all(&torn);
                    let _ = append.sync_data();
                    match kill.mode {
                        KillMode::Exit(code) => std::process::exit(code),
                        KillMode::Stop => crashed_now = true,
                    }
                }
            }
        }

        // Group commit: one fsync covers the whole batch.
        let policy_wants = match inner.options.fsync {
            FsyncPolicy::Always => dirty,
            FsyncPolicy::EveryN(n) => unsynced_frames >= n,
            FsyncPolicy::OnSnapshot => false,
        };
        let flush_wants = flush_upto > synced;
        if dirty && io_error.is_none() && !crashed_now && (policy_wants || flush_wants || shutdown)
        {
            let t0 = std::time::Instant::now();
            match append.sync_data() {
                Ok(()) => {
                    let dur = t0.elapsed();
                    inner.stats.fsyncs.inc();
                    inner.stats.fsync_us.record(dur.as_micros() as u64);
                    if fix_obs::tracing_enabled() {
                        fix_obs::emit_span(
                            fix_obs::EventKind::DurFsync,
                            0,
                            0,
                            0,
                            unsynced_frames as u32,
                            dur.as_nanos() as u64,
                        );
                    }
                    unsynced_frames = 0;
                    dirty = false;
                }
                Err(e) => io_error = Some(e.to_string()),
            }
        }
        if !dirty {
            synced = durable;
        }

        // Snapshots: explicit requests, or the auto size threshold.
        let auto = inner
            .options
            .snapshot_log_bytes
            .is_some_and(|t| log_len - MAGIC_LEN > t);
        if (snap_requests > snaps_done || auto) && io_error.is_none() && !crashed_now {
            match do_snapshot(&inner, &mut append, &mut log_len, &mut next_seq) {
                Ok(()) => {
                    snaps_done = snaps_done.max(snap_requests);
                    unsynced_frames = 0;
                    dirty = false;
                    synced = durable;
                }
                Err(e) => io_error = Some(e.to_string()),
            }
        }

        // Spill: hold resident bytes under the watermark by evicting the
        // coldest persisted objects (they refault on demand).
        if let Some(wm) = inner.options.spill_watermark_bytes {
            if inner.store.total_bytes() > wm && io_error.is_none() {
                spill(&inner, wm);
            }
        }

        let mut q = inner.queue.lock();
        q.synced = synced;
        q.snaps_done = snaps_done;
        if crashed_now {
            q.crashed = true;
            q.pending.clear();
            q.synced = q.enqueued;
        }
        if let Some(e) = io_error {
            q.io_error = Some(e);
        }
        inner.done.notify_all();
        if q.crashed || q.io_error.is_some() {
            return;
        }
        if q.shutdown && q.pending.is_empty() {
            return;
        }
    }
}

fn spill(inner: &Arc<Inner>, watermark: u64) {
    // Coldest-first among resident, persisted objects.
    let mut candidates: Vec<(u64, Handle)> = inner
        .index
        .read()
        .values()
        .filter(|s| inner.store.resident(s.handle))
        .map(|s| (s.touch, s.handle))
        .collect();
    candidates.sort_unstable_by_key(|(touch, _)| *touch);
    for (_, handle) in candidates {
        if inner.store.total_bytes() <= watermark {
            break;
        }
        if inner.store.evict(handle).is_some() {
            inner.stats.spills.inc();
            if fix_obs::tracing_enabled() {
                fix_obs::emit(fix_obs::EventKind::DurEvict, 0, trace_id(handle), 0, 0);
            }
        }
    }
}

fn do_snapshot(
    inner: &Arc<Inner>,
    append: &mut File,
    log_len: &mut u64,
    next_seq: &mut u64,
) -> std::io::Result<()> {
    let t0 = std::time::Instant::now();
    let seq = *next_seq;
    let final_path = inner.dir.join(snap_name(seq));
    let tmp_path = inner.dir.join(format!("snap-{seq:016x}.tmp"));
    let mut out = File::create(&tmp_path)?;
    out.write_all(SNAP_MAGIC)?;
    let mut pos = MAGIC_LEN;
    let mut frames = 0u64;
    let mut buf = Vec::new();

    for (relation, input, output) in inner.cache.entries() {
        buf.clear();
        frame::push_frame(&mut buf, &frame::encode_relation(relation, input, output));
        out.write_all(&buf)?;
        pos += buf.len() as u64;
        frames += 1;
    }

    let slots: Vec<([u8; 32], Slot)> = inner
        .index
        .read()
        .iter()
        .map(|(k, s)| (*k, s.clone()))
        .collect();
    let mut moved: HashMap<[u8; 32], Slot> = HashMap::with_capacity(slots.len());
    for (key, slot) in slots {
        // Source each object from memory if resident, else copy its
        // frame's node from the old file — without making it resident
        // (a snapshot must not defeat the spill).
        let node = if inner.store.resident(slot.handle) {
            inner.store.get(slot.handle).ok()
        } else {
            inner.read_node(&slot)
        };
        let node = node.ok_or_else(|| {
            std::io::Error::other(format!("snapshot source read failed for {}", slot.handle))
        })?;
        buf.clear();
        frame::push_frame(&mut buf, &frame::encode_node(key, &node));
        out.write_all(&buf)?;
        moved.insert(
            key,
            Slot {
                file: Location::Snapshot(seq),
                offset: pos,
                len: buf.len() as u32,
                handle: slot.handle,
                touch: slot.touch,
            },
        );
        pos += buf.len() as u64;
        frames += 1;
    }

    buf.clear();
    frame::push_frame(&mut buf, &frame::encode_commit(frames));
    out.write_all(&buf)?;
    out.sync_all()?;
    drop(out);
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = File::open(&inner.dir) {
        let _ = d.sync_all();
    }

    // Readers move to the snapshot before the log bytes go away; a
    // fault that raced the swap retries against the fresh slot.
    *inner.index.write() = moved;
    *inner.snap_read.lock() = None;
    append.set_len(MAGIC_LEN)?;
    append.sync_data()?;
    append.seek(SeekFrom::Start(MAGIC_LEN))?;
    *log_len = MAGIC_LEN;

    // The previous snapshot is superseded only now that the log has
    // been truncated past it.
    if let Ok(entries) = fs::read_dir(&inner.dir) {
        for e in entries.flatten() {
            if let Ok(name) = e.file_name().into_string() {
                let old = name
                    .strip_prefix("snap-")
                    .and_then(|n| n.strip_suffix(".fixsnap"))
                    .and_then(|n| u64::from_str_radix(n, 16).ok());
                if old.is_some_and(|o| o < seq) {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
    }

    *next_seq = seq + 1;
    let dur = t0.elapsed();
    inner.stats.snapshots.inc();
    inner.stats.snapshot_us.record(dur.as_micros() as u64);
    if fix_obs::tracing_enabled() {
        fix_obs::emit_span(
            fix_obs::EventKind::DurSnapshot,
            0,
            seq,
            0,
            frames as u32,
            dur.as_nanos() as u64,
        );
    }
    Ok(())
}
