//! Crash-recovery, snapshot, spill, and gc semantics for `DurableStore`.

use fix_core::data::{Blob, Node, Tree};
use fix_core::handle::Handle;
use fix_durable::{DurableOptions, DurableStore, FsyncPolicy, KillMode, KillPoint};
use fix_storage::Relation;
use std::fs::OpenOptions;
use std::io::Write;

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        ..DurableOptions::default()
    }
}

fn blob(seed: u8, len: usize) -> Blob {
    // > 30 bytes so it is a stored object, not a handle-resident literal.
    Blob::from_vec((0..len).map(|i| seed.wrapping_add(i as u8)).collect())
}

#[test]
fn reopen_faults_objects_lazily() {
    let dir = tempfile::tempdir().unwrap();
    let b = blob(1, 100);
    let t_handle;
    let b_handle;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        b_handle = d.store().put_blob(b.clone());
        t_handle = d.store().put_tree(Tree::from_handles(vec![b_handle]));
        d.flush().unwrap();
    }
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.store().object_count(), 0, "restart must be lazy");
    assert_eq!(d.stats().replayed_nodes, 2);
    assert!(
        d.store().contains(b_handle),
        "contains() consults the index"
    );
    let t = d.store().get_tree(t_handle).unwrap();
    assert_eq!(t.entries(), &[b_handle]);
    assert_eq!(d.store().get_blob(b_handle).unwrap(), b);
    assert_eq!(d.stats().faults, 2);
    assert_eq!(
        d.store().object_count(),
        2,
        "faulted objects become resident"
    );
}

#[test]
fn torn_final_frame_is_truncated() {
    let dir = tempfile::tempdir().unwrap();
    let keep = blob(2, 64);
    let keep_handle;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        keep_handle = d.store().put_blob(keep.clone());
        d.flush().unwrap();
    }
    // Simulate a crash mid-append: a frame header promising more bytes
    // than the file holds.
    let log = dir.path().join("log.fixlog");
    let mut f = OpenOptions::new().append(true).open(&log).unwrap();
    f.write_all(&500u32.to_le_bytes()).unwrap();
    f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
    f.write_all(&[0xAB; 17]).unwrap();
    drop(f);

    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.stats().truncated_bytes, 8 + 17);
    assert_eq!(d.stats().replayed_nodes, 1);
    assert_eq!(d.store().get_blob(keep_handle).unwrap(), keep);

    // The truncated log is clean: appends after recovery survive another
    // reopen.
    let extra_handle = d.store().put_blob(blob(3, 80));
    d.flush().unwrap();
    drop(d);
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.stats().truncated_bytes, 0);
    assert_eq!(d.stats().replayed_nodes, 2);
    assert!(d.store().contains(extra_handle));
}

#[test]
fn snapshot_compacts_and_truncates_the_log() {
    let dir = tempfile::tempdir().unwrap();
    let blobs: Vec<Blob> = (0..8).map(|i| blob(10 + i, 50 + i as usize)).collect();
    let handles: Vec<Handle>;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        handles = blobs
            .iter()
            .map(|b| d.store().put_blob(b.clone()))
            .collect();
        d.cache().put(Relation::Eval, handles[0], handles[1]);
        d.snapshot().unwrap();
        assert_eq!(d.stats().snapshots, 1);
        // The log is truncated back to its 8-byte magic header.
        let log_len = std::fs::metadata(dir.path().join("log.fixlog"))
            .unwrap()
            .len();
        assert_eq!(log_len, 8);
        // Objects still read fine (now from the snapshot file).
        for (b, h) in blobs.iter().zip(&handles) {
            assert_eq!(&d.store().get_blob(*h).unwrap(), b);
        }
    }
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.stats().replayed_nodes, 8);
    assert_eq!(d.stats().replayed_relations, 1);
    assert_eq!(
        d.cache().get(Relation::Eval, handles[0]),
        Some(handles[1]),
        "memoized relations survive the snapshot"
    );
    for (b, h) in blobs.iter().zip(&handles) {
        assert_eq!(&d.store().get_blob(*h).unwrap(), b);
    }
}

#[test]
fn interrupted_snapshot_tmp_is_ignored() {
    let dir = tempfile::tempdir().unwrap();
    let b = blob(4, 90);
    let h;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        h = d.store().put_blob(b.clone());
        d.flush().unwrap();
    }
    // A crash mid-snapshot leaves a partial .tmp (never renamed) and, in
    // the worst case, a garbage .fixsnap with no commit record.
    std::fs::write(
        dir.path().join("snap-00000000000000aa.tmp"),
        b"FIXSNAP8junk",
    )
    .unwrap();
    std::fs::write(
        dir.path().join("snap-00000000000000ab.fixsnap"),
        b"FIXSNAP8",
    )
    .unwrap();
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.store().get_blob(h).unwrap(), b, "log still authoritative");
}

#[test]
fn kill_point_crashes_and_recovery_keeps_the_prefix() {
    let dir = tempfile::tempdir().unwrap();
    let survivors: Vec<Blob> = (0..3).map(|i| blob(20 + i, 40)).collect();
    let lost = blob(99, 40);
    let survivor_handles: Vec<Handle>;
    let lost_handle;
    {
        let d = DurableStore::open(
            dir.path(),
            DurableOptions {
                fsync: FsyncPolicy::Always,
                kill: Some(KillPoint {
                    after_frames: 3,
                    mode: KillMode::Stop,
                }),
                ..DurableOptions::default()
            },
        )
        .unwrap();
        survivor_handles = survivors
            .iter()
            .map(|b| d.store().put_blob(b.clone()))
            .collect();
        d.flush().unwrap();
        assert!(d.crashed(), "the third frame trips the kill point");
        // Appends after the crash are dropped, and flush doesn't hang.
        lost_handle = d.store().put_blob(lost.clone());
        d.flush().unwrap();
    }
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert!(
        d.stats().truncated_bytes > 0,
        "the kill point leaves a torn frame for recovery to drop"
    );
    assert_eq!(d.stats().replayed_nodes, 3);
    for (b, h) in survivors.iter().zip(&survivor_handles) {
        assert_eq!(&d.store().get_blob(*h).unwrap(), b);
    }
    assert!(
        !d.store().contains(lost_handle),
        "post-crash appends are lost"
    );
}

#[test]
fn spill_evicts_cold_objects_and_refaults_on_demand() {
    let dir = tempfile::tempdir().unwrap();
    let blobs: Vec<Blob> = (0..10).map(|i| blob(30 + i, 100)).collect();
    let d = DurableStore::open(
        dir.path(),
        DurableOptions {
            fsync: FsyncPolicy::Always,
            spill_watermark_bytes: Some(450),
            ..DurableOptions::default()
        },
    )
    .unwrap();
    let handles: Vec<Handle> = blobs
        .iter()
        .map(|b| d.store().put_blob(b.clone()))
        .collect();
    d.flush().unwrap();
    assert!(
        d.store().total_bytes() <= 450,
        "spill holds resident bytes under the watermark, got {}",
        d.store().total_bytes()
    );
    assert!(d.stats().spills >= 6);
    // Everything is still readable; spilled objects refault transparently
    // and total_bytes stays consistent across the evict→refault round trip.
    for (b, h) in blobs.iter().zip(&handles) {
        assert_eq!(&d.store().get_blob(*h).unwrap(), b);
    }
    assert_eq!(d.store().object_count(), 10);
    assert_eq!(d.store().total_bytes(), 10 * 100);
    assert!(d.stats().faults >= 6);
}

#[test]
fn gc_prunes_the_index_so_collected_objects_cannot_resurrect() {
    let dir = tempfile::tempdir().unwrap();
    let live = blob(5, 70);
    let dead = blob(6, 70);
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    let live_handle = d.store().put_blob(live.clone());
    let dead_handle = d.store().put_blob(dead.clone());
    let root = d.store().put_tree(Tree::from_handles(vec![live_handle]));
    d.flush().unwrap();

    let collected = d.gc(&[root]);
    assert_eq!(collected, 1);
    assert_eq!(d.store().get_blob(live_handle).unwrap(), live);
    // The dead object is gone from memory AND the durable index: no
    // silent resurrection with stale bytes.
    assert!(d.store().get(dead_handle).is_err());
    assert!(!d.store().contains(dead_handle));
    assert_eq!(d.store().total_bytes(), 70 + 32);

    // ... and it stays dead across a snapshot + reopen.
    d.snapshot().unwrap();
    drop(d);
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.stats().replayed_nodes, 2);
    assert!(d.store().get(dead_handle).is_err());
    assert_eq!(d.store().get_blob(live_handle).unwrap(), live);
}

#[test]
fn gc_descends_through_non_resident_trees() {
    let dir = tempfile::tempdir().unwrap();
    let leaf = blob(7, 60);
    let root;
    let leaf_handle;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        leaf_handle = d.store().put_blob(leaf.clone());
        root = d.store().put_tree(Tree::from_handles(vec![leaf_handle]));
        d.flush().unwrap();
    }
    // Nothing resident: the reachability walk must fault trees in to
    // find the leaf, and keep both.
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.gc(&[root]), 0);
    assert_eq!(d.store().get_blob(leaf_handle).unwrap(), leaf);
}

#[test]
fn forget_drops_an_object_for_good() {
    let dir = tempfile::tempdir().unwrap();
    let b = blob(8, 55);
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    let h = d.store().put_blob(b);
    d.flush().unwrap();
    assert_eq!(d.forget(h), Some(55));
    assert!(!d.store().contains(h));
    assert!(d.store().get(h).is_err(), "forget() means no refault");
    assert_eq!(d.store().total_bytes(), 0);
}

#[test]
fn relations_referencing_lost_tail_data_are_dropped_on_replay() {
    let dir = tempfile::tempdir().unwrap();
    let input = blob(9, 45);
    let output = blob(10, 45);
    let input_handle;
    let output_handle;
    {
        let d = DurableStore::open(dir.path(), opts()).unwrap();
        input_handle = d.store().put_blob(input);
        output_handle = d.store().put_blob(output);
        d.cache().put(Relation::Apply, input_handle, output_handle);
        d.flush().unwrap();
    }
    // Corrupt the output object's frame: recovery stops there, losing
    // both the output bytes and the relation record behind it — so the
    // cache must not claim the apply is memoized.
    let log = dir.path().join("log.fixlog");
    let mut bytes = std::fs::read(&log).unwrap();
    let second_frame = 8 + 8 + 4 + 1 + 32 + 73 + 45; // header + frame(node: tag+key+parcel(73+45))
    bytes[second_frame + 20] ^= 0xFF;
    std::fs::write(&log, &bytes).unwrap();

    let d = DurableStore::open(dir.path(), opts()).unwrap();
    assert_eq!(d.stats().replayed_nodes, 1);
    assert_eq!(d.stats().replayed_relations, 0);
    assert_eq!(d.cache().get(Relation::Apply, input_handle), None);
    assert!(!d.store().contains(output_handle));
}

#[test]
fn auto_snapshot_triggers_on_log_size() {
    let dir = tempfile::tempdir().unwrap();
    let d = DurableStore::open(
        dir.path(),
        DurableOptions {
            fsync: FsyncPolicy::Always,
            snapshot_log_bytes: Some(600),
            ..DurableOptions::default()
        },
    )
    .unwrap();
    let handles: Vec<Handle> = (0..12)
        .map(|i| d.store().put_blob(blob(40 + i, 120)))
        .collect();
    d.flush().unwrap();
    assert!(
        d.stats().snapshots >= 1,
        "log growth must trigger compaction"
    );
    for h in &handles {
        assert!(d.store().get(*h).is_ok());
    }
}

#[test]
fn literals_are_never_logged() {
    let dir = tempfile::tempdir().unwrap();
    let d = DurableStore::open(dir.path(), opts()).unwrap();
    let h = d.store().put(Node::Blob(Blob::from_vec(vec![1, 2, 3])));
    assert!(h.is_literal());
    d.flush().unwrap();
    assert_eq!(d.stats().appended_frames, 0);
    assert_eq!(d.indexed_objects(), 0);
}
