//! Persistence hooks: how a durability tier observes and backs a store.
//!
//! `fix-durable` wraps [`Store`](crate::Store) and
//! [`RelationCache`](crate::RelationCache) without a dependency cycle by
//! registering three callbacks here:
//!
//! * [`FaultSource`] — consulted on a `get` miss, so objects that live
//!   only on disk (lazy restart, spill-to-disk) are faulted in on first
//!   touch instead of reported missing;
//! * [`StoreSink`] — notified of every *fresh* object insert, the feed
//!   for an append-only log;
//! * [`RelationSink`] — notified of every fresh memoized relation, so
//!   evaluation results survive a restart.
//!
//! All hooks are invoked outside the shard locks; implementations may
//! call back into the store (a fault handler's `put` re-enters the sink,
//! which is expected to recognize already-persisted content and skip it).

use crate::relations::Relation;
use fix_core::data::Node;
use fix_core::handle::Handle;

/// A backing tier that can produce non-resident objects on demand.
pub trait FaultSource: Send + Sync {
    /// Returns the node behind `handle` if the tier holds it, or `None`
    /// if it is genuinely unknown. Called only after an in-memory miss.
    fn fault(&self, handle: Handle) -> Option<Node>;

    /// True if the tier holds `handle` (no I/O; an index lookup).
    fn knows(&self, handle: Handle) -> bool;
}

/// An observer of fresh object inserts.
pub trait StoreSink: Send + Sync {
    /// Called once per payload key, the first time it enters the store.
    fn inserted(&self, node: &Node);
}

/// An observer of fresh memoized relations.
pub trait RelationSink: Send + Sync {
    /// Called the first time `relation(input) → output` is recorded.
    fn recorded(&self, relation: Relation, input: Handle, output: Handle);
}
