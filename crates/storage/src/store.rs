//! The runtime storage: a sharded, concurrent, content-addressed object
//! store mapping Handles to Blob/Tree data (paper Fig. 6, "Runtime
//! Storage: Handles ==> Data").

use crate::hooks::{FaultSource, StoreSink};
use fix_core::data::{literal_blob, Blob, Node, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::semantics::DataSource;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SHARDS: usize = 64;

/// The canonical lookup key: the handle's payload and type, with the
/// accessibility/laziness tag stripped (an Object and a Ref to the same
/// bytes are the same stored datum). Because the canonical Object tag is
/// zero, a payload key is itself a valid raw Object handle — the durable
/// tier exploits this to reconstruct a handle from an on-disk key.
pub fn payload_key(handle: Handle) -> [u8; 32] {
    let mut key = *handle.raw();
    key[30] = 0;
    key
}

fn shard_of(key: &[u8; 32]) -> usize {
    key[0] as usize % SHARDS
}

/// A concurrent content-addressed store.
///
/// Literal handles (blobs ≤ 30 bytes) are never stored: their content
/// travels in the handle, so `put` is a no-op and `get` synthesizes the
/// blob from the handle itself.
///
/// # Examples
///
/// ```
/// use fix_storage::Store;
/// use fix_core::data::Blob;
///
/// let store = Store::new();
/// let blob = Blob::from_slice(&[42u8; 100]);
/// let handle = store.put_blob(blob.clone());
/// assert_eq!(store.get_blob(handle).unwrap(), blob);
/// assert_eq!(store.object_count(), 1);
/// ```
pub struct Store {
    shards: Vec<RwLock<HashMap<[u8; 32], Node>>>,
    total_bytes: AtomicU64,
    // Persistence hooks (see crate::hooks). Both are set at most once,
    // by a durability tier wrapping this store; the hot hit paths never
    // touch them — `fault` is consulted only after an in-memory miss and
    // `sink` only on a fresh insert.
    fault: OnceLock<Arc<dyn FaultSource>>,
    sink: OnceLock<Arc<dyn StoreSink>>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Store {
        Store {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            total_bytes: AtomicU64::new(0),
            fault: OnceLock::new(),
            sink: OnceLock::new(),
        }
    }

    /// Installs the backing tier consulted after an in-memory miss.
    /// At most one per store; a second install panics.
    pub fn set_fault_source(&self, source: Arc<dyn FaultSource>) {
        if self.fault.set(source).is_err() {
            panic!("store already has a fault source");
        }
    }

    /// Installs the fresh-insert observer. At most one per store.
    pub fn set_sink(&self, sink: Arc<dyn StoreSink>) {
        if self.sink.set(sink).is_err() {
            panic!("store already has an insert sink");
        }
    }

    /// Stores a datum, returning its canonical Handle. Idempotent.
    pub fn put(&self, node: Node) -> Handle {
        let handle = node.handle();
        if handle.is_literal() {
            return handle;
        }
        let key = payload_key(handle);
        let size = node.transfer_size();
        // Clone for the sink before the map takes ownership (Node clones
        // are refcount bumps); skipped entirely when no tier is attached.
        let observed = self.sink.get().map(|sink| (sink, node.clone()));
        let fresh = self.shards[shard_of(&key)]
            .write()
            .insert(key, node)
            .is_none();
        if fresh {
            self.total_bytes.fetch_add(size, Ordering::Relaxed);
            if let Some((sink, node)) = observed {
                sink.inserted(&node);
            }
        }
        handle
    }

    /// Stores a blob.
    pub fn put_blob(&self, blob: Blob) -> Handle {
        self.put(Node::Blob(blob))
    }

    /// Stores a tree. Entries are *not* implicitly stored.
    pub fn put_tree(&self, tree: Tree) -> Handle {
        self.put(Node::Tree(tree))
    }

    /// Fetches the datum behind `handle` (accessibility tags ignored).
    pub fn get(&self, handle: Handle) -> Result<Node> {
        if let Some(b) = literal_blob(handle) {
            return Ok(Node::Blob(b));
        }
        let key = payload_key(handle);
        let resident = self.shards[shard_of(&key)].read().get(&key).cloned();
        if let Some(node) = resident {
            return Ok(node);
        }
        // Miss: give the backing tier (lazy restart / spill) a chance to
        // fault the object in. The fault runs outside any shard lock;
        // `put` makes the node resident for subsequent reads.
        if let Some(tier) = self.fault.get() {
            if let Some(node) = tier.fault(handle) {
                self.put(node.clone());
                return Ok(node);
            }
        }
        Err(Error::NotFound(handle))
    }

    /// Fetches a blob.
    pub fn get_blob(&self, handle: Handle) -> Result<Blob> {
        self.get(handle)?.as_blob().cloned()
    }

    /// Fetches a tree.
    pub fn get_tree(&self, handle: Handle) -> Result<Tree> {
        self.get(handle)?.as_tree().cloned()
    }

    /// True if the datum is resident or faultable from a backing tier
    /// (always true for literals).
    pub fn contains(&self, handle: Handle) -> bool {
        if handle.is_literal() {
            return true;
        }
        let key = payload_key(handle);
        if self.shards[shard_of(&key)].read().contains_key(&key) {
            return true;
        }
        self.fault.get().is_some_and(|tier| tier.knows(handle))
    }

    /// True if the datum is in memory right now — unlike
    /// [`contains`](Store::contains), never consults the backing tier.
    /// The durable tier's spill and snapshot logic distinguishes
    /// resident from merely-faultable objects through this.
    pub fn resident(&self, handle: Handle) -> bool {
        if handle.is_literal() {
            return true;
        }
        let key = payload_key(handle);
        self.shards[shard_of(&key)].read().contains_key(&key)
    }

    /// Number of stored (non-literal) objects.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total bytes of stored object payloads.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Removes everything not reachable from `roots`.
    ///
    /// Reachability follows tree entries and thunk/encode definitions;
    /// this is the conservative sweep behind the paper's "computational
    /// garbage collection" discussion (§6). Returns the number of objects
    /// collected.
    pub fn gc(&self, roots: &[Handle]) -> usize {
        let mut reachable = std::collections::HashSet::new();
        let mut stack: Vec<Handle> = roots.to_vec();
        while let Some(h) = stack.pop() {
            if h.is_literal() || !reachable.insert(payload_key(h)) {
                continue;
            }
            if let Ok(Node::Tree(t)) = self.get(h) {
                stack.extend(t.entries().iter().copied());
            }
        }
        let mut collected = 0;
        for shard in &self.shards {
            let mut guard = shard.write();
            let before = guard.len();
            guard.retain(|key, node| {
                let keep = reachable.contains(key);
                if !keep {
                    self.total_bytes
                        .fetch_sub(node.transfer_size(), Ordering::Relaxed);
                }
                keep
            });
            collected += before - guard.len();
        }
        collected
    }

    /// Drops a single object, returning its payload size in bytes, or
    /// `None` if it was not resident (literals are never resident).
    ///
    /// This is the mechanism behind "delayed-availability" storage
    /// (paper §6): the caller — see `fixpoint::Runtime::evict_recomputable`
    /// — is responsible for only evicting objects it knows how to
    /// recompute.
    pub fn evict(&self, handle: Handle) -> Option<u64> {
        if handle.is_literal() {
            return None;
        }
        let key = payload_key(handle);
        let node = self.shards[shard_of(&key)].write().remove(&key)?;
        let size = node.transfer_size();
        self.total_bytes.fetch_sub(size, Ordering::Relaxed);
        Some(size)
    }

    /// Lists every resident object handle (canonical Object form).
    ///
    /// Used by the distributed engine's inventory exchange ("when two
    /// Fixpoint nodes first connect, they each provide the other with a
    /// list of objects available locally", paper §4.2.2).
    pub fn inventory(&self) -> Vec<Handle> {
        let mut out = Vec::with_capacity(self.object_count());
        for shard in &self.shards {
            for node in shard.read().values() {
                out.push(node.handle());
            }
        }
        out
    }
}

impl DataSource for Store {
    fn load(&self, handle: Handle) -> Result<Node> {
        self.get(handle)
    }
}

/// A bare store is the minimal [`ObjectApi`](fix_core::api::ObjectApi)
/// backend: Table-1 data
/// operations with no evaluator attached. Code that only moves data
/// (filesystem builders, parcel plumbing, fixtures) can be written
/// against the trait and handed either a store or a full runtime.
impl fix_core::api::ObjectApi for Store {
    fn put_blob(&self, blob: Blob) -> Handle {
        Store::put_blob(self, blob)
    }

    fn put_tree(&self, tree: Tree) -> Handle {
        Store::put_tree(self, tree)
    }

    fn get_blob(&self, handle: Handle) -> Result<Blob> {
        Store::get_blob(self, handle)
    }

    fn get_tree(&self, handle: Handle) -> Result<Tree> {
        Store::get_tree(self, handle)
    }

    fn contains(&self, handle: Handle) -> bool {
        Store::contains(self, handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let store = Store::new();
        let blob = Blob::from_slice(&[1u8; 512]);
        let h = store.put_blob(blob.clone());
        assert_eq!(store.get_blob(h).unwrap(), blob);
        assert_eq!(store.get_blob(h.as_ref_handle()).unwrap(), blob);
    }

    #[test]
    fn literals_bypass_storage() {
        let store = Store::new();
        let blob = Blob::from_slice(b"tiny");
        let h = store.put_blob(blob.clone());
        assert!(h.is_literal());
        assert_eq!(store.object_count(), 0);
        assert_eq!(store.get_blob(h).unwrap(), blob);
        assert!(store.contains(h));
    }

    #[test]
    fn put_is_idempotent() {
        let store = Store::new();
        let blob = Blob::from_slice(&[9u8; 100]);
        store.put_blob(blob.clone());
        store.put_blob(blob.clone());
        assert_eq!(store.object_count(), 1);
        assert_eq!(store.total_bytes(), 100);
    }

    #[test]
    fn missing_object_is_not_found() {
        let store = Store::new();
        let h = Blob::from_slice(&[7u8; 99]).handle();
        assert!(matches!(store.get(h), Err(Error::NotFound(_))));
        assert!(!store.contains(h));
    }

    #[test]
    fn type_confusion_is_rejected() {
        let store = Store::new();
        let tree = Tree::from_handles(vec![]);
        let h = store.put_tree(tree);
        assert!(store.get_blob(h).is_err());
    }

    #[test]
    fn gc_retains_reachable_graph() {
        let store = Store::new();
        let kept_blob = Blob::from_slice(&[1u8; 64]);
        let dropped_blob = Blob::from_slice(&[2u8; 64]);
        let kept_h = store.put_blob(kept_blob);
        store.put_blob(dropped_blob);
        let tree = Tree::from_handles(vec![kept_h]);
        let root = store.put_tree(tree);
        assert_eq!(store.object_count(), 3);

        let collected = store.gc(&[root]);
        assert_eq!(collected, 1);
        assert!(store.contains(kept_h));
        assert!(store.contains(root));
        assert_eq!(store.object_count(), 2);
        assert_eq!(store.total_bytes(), 64 + 32);
    }

    #[test]
    fn gc_follows_thunk_definitions() {
        let store = Store::new();
        let blob = Blob::from_slice(&[5u8; 64]);
        let bh = store.put_blob(blob);
        let def = Tree::from_handles(vec![bh]);
        let def_h = store.put_tree(def);
        let thunk = def_h.application().unwrap();
        // Root through the thunk handle: payload identical to the tree.
        let collected = store.gc(&[thunk]);
        assert_eq!(collected, 0);
        assert!(store.contains(def_h));
        assert!(store.contains(bh));
    }

    #[test]
    fn inventory_lists_everything() {
        let store = Store::new();
        let b = store.put_blob(Blob::from_slice(&[1u8; 40]));
        let t = store.put_tree(Tree::from_handles(vec![b]));
        let mut inv = store.inventory();
        inv.sort();
        let mut expect = vec![b, t];
        expect.sort();
        assert_eq!(inv, expect);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        use std::sync::Arc;
        let store = Arc::new(Store::new());
        let mut threads = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            threads.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let blob = Blob::from_vec(vec![(t * 7 + i % 13) as u8; 64 + i as usize]);
                    let h = store.put_blob(blob.clone());
                    assert_eq!(store.get_blob(h).unwrap(), blob);
                }
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
    }
}

impl Store {
    /// Packages the minimum repository of `thunk` (or, for a value, its
    /// reachable graph) into a [`fix_core::wire::Parcel`] so another node
    /// can evaluate or read it without further round trips.
    pub fn export(&self, root: Handle) -> Result<fix_core::wire::Parcel> {
        let mut objects = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(h) = stack.pop() {
            match h.kind() {
                fix_core::handle::Kind::Object(_) | fix_core::handle::Kind::Ref(_) => {
                    if h.is_literal() || !seen.insert(payload_key(h)) {
                        continue;
                    }
                    let node = self.get(h)?;
                    if let Node::Tree(t) = &node {
                        stack.extend(t.entries().iter().copied());
                    }
                    objects.push(node);
                }
                // Thunks: ship the definition target (dedup happens when
                // the unwrapped value handle is visited).
                fix_core::handle::Kind::Thunk(_) => {
                    stack.push(h.thunk_definition()?);
                }
                fix_core::handle::Kind::Encode(..) => {
                    stack.push(h.encoded_thunk()?);
                }
            }
        }
        Ok(fix_core::wire::Parcel::new(root, objects))
    }

    /// Imports every object of a parcel (verification happened at parse
    /// time), returning the parcel's root handle.
    pub fn import(&self, parcel: fix_core::wire::Parcel) -> Handle {
        for node in parcel.objects {
            self.put(node);
        }
        parcel.root
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use fix_core::wire::Parcel;

    #[test]
    fn export_import_moves_a_computation_between_nodes() {
        // "Node A" builds a computation; "node B" receives the parcel and
        // has everything needed to evaluate it.
        let node_a = Store::new();
        let data = Blob::from_vec(vec![5u8; 200]);
        let dh = node_a.put_blob(data);
        let def = Tree::from_handles(vec![dh]);
        let def_h = node_a.put_tree(def);
        let thunk = def_h.application().unwrap();

        let parcel = node_a.export(thunk).unwrap();
        assert_eq!(parcel.objects.len(), 2); // The tree + the blob.
        let bytes = parcel.to_bytes();

        let node_b = Store::new();
        let root = node_b.import(Parcel::from_bytes(&bytes).unwrap());
        assert_eq!(root, thunk);
        assert!(node_b.contains(def_h));
        assert!(node_b.contains(dh));
    }

    #[test]
    fn export_skips_data_behind_refs_is_not_possible_here() {
        // Export follows Refs too (the exporter decides what to ship by
        // choosing the root); shipping a Ref ships its bytes.
        let store = Store::new();
        let blob = store.put_blob(Blob::from_vec(vec![9u8; 64]));
        let tree = store.put_tree(Tree::from_handles(vec![blob.as_ref_handle()]));
        let parcel = store.export(tree).unwrap();
        assert_eq!(parcel.objects.len(), 2);
    }

    #[test]
    fn export_of_missing_data_fails() {
        let store = Store::new();
        let ghost = Blob::from_vec(vec![1u8; 64]).handle();
        assert!(store.export(ghost).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// put/get identity for arbitrary blobs, across both tag forms.
        #[test]
        fn put_get_identity(data in proptest::collection::vec(any::<u8>(), 0..300)) {
            let store = Store::new();
            let blob = Blob::from_slice(&data);
            let h = store.put_blob(blob.clone());
            prop_assert_eq!(store.get_blob(h).unwrap(), blob.clone());
            prop_assert_eq!(store.get_blob(h.as_ref_handle()).unwrap(), blob);
        }

        /// GC never collects anything reachable from the roots, and the
        /// byte accounting stays consistent.
        #[test]
        fn gc_preserves_reachability(
            blobs in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 31..100), 1..12),
            keep_mask in proptest::collection::vec(any::<bool>(), 12),
        ) {
            let store = Store::new();
            let handles: Vec<Handle> =
                blobs.iter().map(|b| store.put_blob(Blob::from_slice(b))).collect();
            let kept: Vec<Handle> = handles
                .iter()
                .zip(&keep_mask)
                .filter(|(_, k)| **k)
                .map(|(h, _)| *h)
                .collect();
            let root = store.put_tree(Tree::from_handles(kept.clone()));
            store.gc(&[root]);
            for h in &kept {
                prop_assert!(store.contains(*h));
            }
            let expect_bytes: u64 = kept
                .iter()
                .map(|h| store.get(*h).unwrap().transfer_size())
                .sum::<u64>()
                + (root.size() * 32);
            prop_assert_eq!(store.total_bytes(), expect_bytes);
        }

        /// Export/import is lossless for arbitrary two-level graphs.
        #[test]
        fn parcel_round_trip_through_stores(
            blobs in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..80), 1..8),
        ) {
            let a = Store::new();
            let entries: Vec<Handle> =
                blobs.iter().map(|bl| a.put_blob(Blob::from_slice(bl))).collect();
            let root = a.put_tree(Tree::from_handles(entries.clone()));
            let bytes = a.export(root).unwrap().to_bytes();

            let b = Store::new();
            let got = b.import(fix_core::wire::Parcel::from_bytes(&bytes).unwrap());
            prop_assert_eq!(got, root);
            for (h, blob) in entries.iter().zip(&blobs) {
                let got = b.get_blob(*h).unwrap();
                prop_assert_eq!(got.as_slice(), blob.as_slice());
            }
        }
    }
}
