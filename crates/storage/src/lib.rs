//! `fix-storage`: content-addressed runtime storage for Fix.
//!
//! Two structures back every Fixpoint node (paper Fig. 6):
//!
//! * [`Store`] — the object store, mapping Handles to Blob/Tree data;
//! * [`RelationCache`] — memoized evaluation relations (Eval / Apply /
//!   Force), the mechanism behind Fix's determinism-powered caching.
//!
//! [`Labels`] adds a small human-readable namespace on top (like git refs).
//!
//! [`ProvenanceLedger`] and [`plan_eviction`] implement the storage side
//! of the paper's computational garbage collection (§6): recording which
//! Thunk produced each object so the bytes can be deleted and recomputed
//! on demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hooks;
mod labels;
mod provenance;
mod relations;
mod store;

pub use hooks::{FaultSource, RelationSink, StoreSink};
pub use labels::Labels;
pub use provenance::{
    apply_eviction, plan_eviction, support_closure, EvictionPlan, ProvenanceLedger, Victim,
};
pub use relations::{Relation, RelationCache};
pub use store::{payload_key, Store};
