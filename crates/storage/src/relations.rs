//! The relation cache: memoized results of Fix evaluation.
//!
//! Because Fix procedures are deterministic functions of content-addressed
//! inputs, every evaluation step is a *relation* between names that can be
//! remembered and shared: evaluating the same Thunk twice must produce the
//! same Handle. The runtime records three relations:
//!
//! * `Eval(thunk) → value` — reduction to weak head normal form (a
//!   non-Thunk handle);
//! * `Apply(tree) → handle` — the raw result of running a procedure on an
//!   application tree (possibly another Thunk, for tail calls);
//! * `Force(handle) → value` — deep (strict) evaluation: every Thunk and
//!   Encode inside has been replaced, recursively.
//!
//! These memoized relations are what make Fix's memoization, dedup of
//! in-flight work, and the paper's "computational garbage collection"
//! story possible.

use crate::hooks::RelationSink;
use fix_core::handle::Handle;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The kinds of memoized relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Reduce a Thunk until the result is not a Thunk.
    Eval,
    /// Run one application step on an application-tree handle.
    Apply,
    /// Deep (strict) evaluation of a value: recursively resolve Thunks
    /// and Encodes inside Trees and promote Refs to Objects.
    Force,
}

const SHARDS: usize = 32;

/// A concurrent memoization table for evaluation relations.
///
/// # Examples
///
/// ```
/// use fix_storage::{RelationCache, Relation};
/// use fix_core::data::Blob;
///
/// let cache = RelationCache::new();
/// let a = Blob::from_slice(b"from").handle();
/// let b = Blob::from_slice(b"to").handle();
/// assert!(cache.get(Relation::Eval, a).is_none());
/// cache.put(Relation::Eval, a, b);
/// assert_eq!(cache.get(Relation::Eval, a), Some(b));
/// ```
pub struct RelationCache {
    shards: Vec<RwLock<HashMap<(Relation, Handle), Handle>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    // Persistence hook: notified of fresh relations (see crate::hooks).
    sink: OnceLock<Arc<dyn RelationSink>>,
}

impl Default for RelationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RelationCache {
    /// Creates an empty cache.
    pub fn new() -> RelationCache {
        RelationCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sink: OnceLock::new(),
        }
    }

    /// Installs the fresh-relation observer. At most one per cache.
    pub fn set_sink(&self, sink: Arc<dyn RelationSink>) {
        if self.sink.set(sink).is_err() {
            panic!("relation cache already has a sink");
        }
    }

    fn shard_of(handle: Handle) -> usize {
        handle.raw()[1] as usize % SHARDS
    }

    /// Looks up a memoized result.
    pub fn get(&self, relation: Relation, input: Handle) -> Option<Handle> {
        let found = self.shards[Self::shard_of(input)]
            .read()
            .get(&(relation, input))
            .copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a result. Recording the same relation twice is harmless;
    /// by determinism the value must be identical (checked in debug).
    pub fn put(&self, relation: Relation, input: Handle, output: Handle) {
        let prev = self.shards[Self::shard_of(input)]
            .write()
            .insert((relation, input), output);
        debug_assert!(
            prev.is_none() || prev == Some(output),
            "nondeterministic relation: {relation:?}({input}) was {prev:?}, now {output}"
        );
        if prev.is_none() {
            if let Some(sink) = self.sink.get() {
                sink.recorded(relation, input, output);
            }
        }
    }

    /// Number of recorded relations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no relations are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) counters — used by the memoization ablation bench.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Forgets everything (used by benchmarks to measure cold paths).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// A point-in-time copy of every recorded relation, in shard order.
    ///
    /// The durable tier snapshots the cache through this; relations
    /// recorded concurrently are not lost — they reach the snapshot's
    /// successor log through the sink instead.
    pub fn entries(&self) -> Vec<(Relation, Handle, Handle)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (&(relation, input), &output) in shard.read().iter() {
                out.push((relation, input, output));
            }
        }
        out
    }

    /// Forgets one memoized relation, returning the old result.
    ///
    /// Used by recompute-on-demand (`fixpoint::Runtime::materialize`):
    /// re-running a procedure to re-create evicted data requires the
    /// memoized `Apply`/`Eval` entries for its recipe to be dropped
    /// first, else evaluation short-circuits to the (dataless) handle.
    pub fn remove(&self, relation: Relation, input: Handle) -> Option<Handle> {
        self.shards[Self::shard_of(input)]
            .write()
            .remove(&(relation, input))
    }
}

impl fix_core::semantics::EncodeResolver for RelationCache {
    fn resolved(&self, encode: Handle) -> Option<Handle> {
        // An encode is resolved when its thunk has a memoized evaluation
        // (both styles evaluate the thunk to a non-Thunk value first).
        let thunk = encode.encoded_thunk().ok()?;
        let value = self.get(Relation::Eval, thunk)?;
        match encode.kind() {
            fix_core::handle::Kind::Encode(fix_core::handle::EncodeStyle::Strict, _) => {
                // Strict encodes additionally require the deep forcing.
                self.get(Relation::Force, value)
            }
            _ => Some(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};
    use fix_core::semantics::EncodeResolver;

    #[test]
    fn get_put_round_trip() {
        let cache = RelationCache::new();
        let a = Blob::from_slice(&[1u8; 40]).handle();
        let b = Blob::from_slice(&[2u8; 40]).handle();
        cache.put(Relation::Apply, a, b);
        assert_eq!(cache.get(Relation::Apply, a), Some(b));
        assert_eq!(cache.get(Relation::Eval, a), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn relations_are_namespaced() {
        let cache = RelationCache::new();
        let a = Blob::from_slice(&[1u8; 40]).handle();
        let b = Blob::from_slice(&[2u8; 40]).handle();
        let c = Blob::from_slice(&[3u8; 40]).handle();
        cache.put(Relation::Eval, a, b);
        cache.put(Relation::Force, a, c);
        assert_eq!(cache.get(Relation::Eval, a), Some(b));
        assert_eq!(cache.get(Relation::Force, a), Some(c));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let cache = RelationCache::new();
        let a = Blob::from_slice(&[1u8; 40]).handle();
        cache.get(Relation::Eval, a);
        cache.put(Relation::Eval, a, a);
        cache.get(Relation::Eval, a);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn encode_resolution_through_cache() {
        let cache = RelationCache::new();
        let def = Tree::from_handles(vec![]);
        let thunk = def.handle().application().unwrap();
        let shallow = thunk.shallow().unwrap();
        let strict = thunk.strict().unwrap();
        let value = Blob::from_slice(&[9u8; 64]).handle();
        let forced = Blob::from_slice(&[10u8; 64]).handle();

        assert_eq!(cache.resolved(shallow), None);
        cache.put(Relation::Eval, thunk, value);
        assert_eq!(cache.resolved(shallow), Some(value));
        // Strict also needs the Force relation.
        assert_eq!(cache.resolved(strict), None);
        cache.put(Relation::Force, value, forced);
        assert_eq!(cache.resolved(strict), Some(forced));
    }

    #[test]
    fn clear_resets() {
        let cache = RelationCache::new();
        let a = Blob::from_slice(&[1u8; 40]).handle();
        cache.put(Relation::Eval, a, a);
        cache.clear();
        assert!(cache.is_empty());
    }
}
