//! Provenance tracking and computational garbage collection (paper §6).
//!
//! Because Fix computations are deterministic products of known
//! dependencies, a provider storing the *recipe* for an object — the
//! Thunk whose evaluation produced it — may delete the object's bytes
//! and recompute them on demand. The paper calls this "computational
//! 'garbage' collection" under "delayed-availability" storage: users
//! opt in, and the provider answers later reads within an SLA window by
//! re-running the recipe.
//!
//! Two pieces live here:
//!
//! * [`ProvenanceLedger`] — records `object ← thunk` pairs as the
//!   engine runs procedures, and remembers what has been evicted (with
//!   its recompute depth, the cascade length a cold read will pay);
//! * [`plan_eviction`] — decides *which* resident objects can be
//!   soundly deleted: an object is evictable only if everything its
//!   recipe needs stays resident, is a literal, or is itself evicted at
//!   a strictly smaller depth — guaranteeing an acyclic recompute order.
//!
//! The recompute itself needs an evaluator, so it lives in the runtime
//! crate (`fixpoint::Runtime::materialize`).

use crate::store::{payload_key, Store};
use fix_core::error::{Error, Result};
use fix_core::handle::{Handle, Kind};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};

const SHARDS: usize = 32;

/// What the ledger knows about one payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// The Thunk whose evaluation produced this object's bytes.
    recipe: Handle,
    /// `Some(depth)` once the object has been evicted: the number of
    /// cascaded procedure re-runs (worst case) a cold read will pay.
    evicted_depth: Option<u32>,
}

/// Records which Thunk produced each stored object.
///
/// Only *immediate* producers are recorded: for an Application thunk
/// the procedure run that created the bytes, for a Selection thunk the
/// extraction. Tail calls record under the thunk whose step actually
/// materialized the data, so re-evaluating the recipe always re-runs
/// the producing step.
///
/// # Examples
///
/// ```
/// use fix_storage::ProvenanceLedger;
/// use fix_core::data::{Blob, Tree};
///
/// let ledger = ProvenanceLedger::new();
/// let def = Tree::from_handles(vec![]);
/// let thunk = def.handle().application().unwrap();
/// let out = Blob::from_slice(&[7u8; 64]).handle();
/// ledger.record(out, thunk);
/// assert_eq!(ledger.recipe_for(out), Some(thunk));
/// ```
pub struct ProvenanceLedger {
    shards: Vec<RwLock<HashMap<[u8; 32], Entry>>>,
}

impl Default for ProvenanceLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvenanceLedger {
    /// Creates an empty ledger.
    pub fn new() -> ProvenanceLedger {
        ProvenanceLedger {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(key: &[u8; 32]) -> usize {
        key[2] as usize % SHARDS
    }

    /// Records that evaluating `recipe` produced `object`'s bytes.
    ///
    /// Literals are skipped (their bytes travel in the handle), as is
    /// the degenerate case where the recipe *is* the object.
    pub fn record(&self, object: Handle, recipe: Handle) {
        if object.is_literal() || !matches!(object.kind(), Kind::Object(_) | Kind::Ref(_)) {
            return;
        }
        let key = payload_key(object);
        if key == payload_key(recipe) {
            return;
        }
        self.shards[Self::shard_of(&key)].write().insert(
            key,
            Entry {
                recipe,
                evicted_depth: None,
            },
        );
    }

    /// The Thunk that produced `object`, if known.
    pub fn recipe_for(&self, object: Handle) -> Option<Handle> {
        let key = payload_key(object);
        self.shards[Self::shard_of(&key)]
            .read()
            .get(&key)
            .map(|e| e.recipe)
    }

    /// The recompute depth recorded when `object` was evicted, if it is
    /// currently evicted.
    pub fn evicted_depth(&self, object: Handle) -> Option<u32> {
        let key = payload_key(object);
        self.shards[Self::shard_of(&key)]
            .read()
            .get(&key)
            .and_then(|e| e.evicted_depth)
    }

    /// Marks `object` evicted at `depth` (or clears the mark).
    fn set_evicted(&self, object: Handle, depth: Option<u32>) {
        let key = payload_key(object);
        if let Some(e) = self.shards[Self::shard_of(&key)].write().get_mut(&key) {
            e.evicted_depth = depth;
        }
    }

    /// Clears an eviction mark after the object is rematerialized.
    pub fn mark_resident(&self, object: Handle) {
        self.set_evicted(object, None);
    }

    /// Number of recorded recipes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Every non-literal datum the evaluation of `thunk` may need resident,
/// discovered conservatively: tree entries (recursively), thunk
/// definitions, encode targets — the whole reachable closure, whether
/// or not the lazy branches end up taken.
///
/// Handles whose data is absent from `store` are still returned (the
/// caller decides whether absence is acceptable); the walk simply can't
/// descend through them.
pub fn support_closure(store: &Store, thunk: Handle) -> Vec<Handle> {
    let mut out = Vec::new();
    let mut seen: HashSet<[u8; 32]> = HashSet::new();
    let mut stack = vec![thunk];
    while let Some(h) = stack.pop() {
        match h.kind() {
            Kind::Object(_) | Kind::Ref(_) => {
                if h.is_literal() || !seen.insert(payload_key(h)) {
                    continue;
                }
                out.push(h.as_object_handle());
                if let Ok(tree) = store.get_tree(h) {
                    stack.extend(tree.entries().iter().copied());
                }
            }
            Kind::Thunk(_) => {
                if let Ok(def) = h.thunk_definition() {
                    stack.push(def);
                }
            }
            Kind::Encode(..) => {
                if let Ok(t) = h.encoded_thunk() {
                    stack.push(t);
                }
            }
        }
    }
    out
}

/// One object the plan will delete.
#[derive(Debug, Clone, Copy)]
pub struct Victim {
    /// The object (canonical Object handle).
    pub handle: Handle,
    /// Worst-case cascaded recompute depth for a cold read.
    pub depth: u32,
    /// Payload bytes reclaimed.
    pub bytes: u64,
}

/// A sound eviction plan over one store.
#[derive(Debug, Clone, Default)]
pub struct EvictionPlan {
    /// Objects to delete, in nondecreasing depth order.
    pub victims: Vec<Victim>,
}

impl EvictionPlan {
    /// Total bytes the plan reclaims.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.victims.iter().map(|v| v.bytes).sum()
    }

    /// The largest recompute cascade any cold read will pay.
    pub fn max_depth(&self) -> u32 {
        self.victims.iter().map(|v| v.depth).max().unwrap_or(0)
    }
}

/// Plans a sound computational GC over `store`.
///
/// `pins` name data that must stay resident (live roots: everything
/// reachable from them through tree entries is protected). Among the
/// rest, an object is evictable if the ledger knows its recipe and the
/// recipe's [`support_closure`] contains only: literals, resident
/// non-victims, objects already evicted (recompute depth known), or
/// victims assigned at a strictly smaller depth. The returned depth is
/// `1 + max(depth of recomputed support)` — the recompute cascade bound.
///
/// Objects whose recipe support includes themselves (possible when a
/// Selection extracts from a tree that contains its own output) are
/// never evicted.
pub fn plan_eviction(store: &Store, ledger: &ProvenanceLedger, pins: &[Handle]) -> EvictionPlan {
    // Everything reachable from a pin stays.
    let mut pinned: HashSet<[u8; 32]> = HashSet::new();
    let mut stack: Vec<Handle> = pins.to_vec();
    while let Some(h) = stack.pop() {
        let key = payload_key(h);
        if h.is_literal() || !pinned.insert(key) {
            continue;
        }
        if let Ok(tree) = store.get_tree(h) {
            stack.extend(tree.entries().iter().copied());
        }
    }

    // Candidates: resident, unpinned, with a known recipe.
    struct Candidate {
        handle: Handle,
        bytes: u64,
        support: Vec<Handle>,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for h in store.inventory() {
        if pinned.contains(&payload_key(h)) {
            continue;
        }
        let Some(recipe) = ledger.recipe_for(h) else {
            continue;
        };
        let bytes = match store.get(h) {
            Ok(node) => node.transfer_size(),
            Err(_) => continue,
        };
        candidates.push(Candidate {
            handle: h,
            bytes,
            support: support_closure(store, recipe),
        });
    }

    // Assign depths to a fixpoint. A candidate is admitted once every
    // support member is covered: a resident *non-candidate* (stays put),
    // an already-evicted object (depth known), or a co-candidate that was
    // admitted in an earlier round — never an unadmitted co-candidate,
    // since that one may itself be evicted later. Candidates stuck in
    // support cycles are never admitted and so stay resident.
    let candidate_keys: HashSet<[u8; 32]> =
        candidates.iter().map(|c| payload_key(c.handle)).collect();
    let mut assigned: HashMap<[u8; 32], u32> = HashMap::new();
    loop {
        let mut admitted_this_round = false;
        for c in &candidates {
            let key = payload_key(c.handle);
            if assigned.contains_key(&key) {
                continue;
            }
            let mut depth = 1u32;
            let mut ok = true;
            for s in &c.support {
                let skey = payload_key(*s);
                if skey == key {
                    ok = false; // Self-support: never evictable.
                    break;
                }
                if let Some(d) = assigned.get(&skey) {
                    depth = depth.max(d + 1);
                } else if candidate_keys.contains(&skey) {
                    ok = false; // Unadmitted co-candidate: wait (or cycle).
                    break;
                } else if let Some(d) = ledger.evicted_depth(*s) {
                    depth = depth.max(d + 1);
                } else if !store.contains(*s) {
                    ok = false; // Absent and not recomputable.
                    break;
                }
                // Resident non-candidate: free.
            }
            if ok {
                assigned.insert(key, depth);
                admitted_this_round = true;
            }
        }
        if !admitted_this_round {
            break;
        }
    }

    let mut victims: Vec<Victim> = candidates
        .iter()
        .filter_map(|c| {
            assigned.get(&payload_key(c.handle)).map(|&depth| Victim {
                handle: c.handle,
                depth,
                bytes: c.bytes,
            })
        })
        .collect();
    victims.sort_by_key(|v| v.depth);
    EvictionPlan { victims }
}

/// Executes a plan: deletes each victim's bytes and marks it evicted in
/// the ledger. Returns the bytes actually reclaimed.
///
/// Fails (before deleting anything) if any victim lost its recipe since
/// planning — eviction without provenance would be data loss.
pub fn apply_eviction(
    store: &Store,
    ledger: &ProvenanceLedger,
    plan: &EvictionPlan,
) -> Result<u64> {
    for v in &plan.victims {
        if ledger.recipe_for(v.handle).is_none() {
            return Err(Error::Trap(format!(
                "refusing to evict {}: no recipe recorded",
                v.handle
            )));
        }
    }
    let mut reclaimed = 0;
    for v in &plan.victims {
        if let Some(bytes) = store.evict(v.handle) {
            reclaimed += bytes;
            ledger.set_evicted(v.handle, Some(v.depth));
        }
    }
    Ok(reclaimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};

    fn blob(n: u8) -> Blob {
        Blob::from_vec(vec![n; 64])
    }

    /// A store with `input -> (thunk) -> output` provenance recorded.
    fn one_step() -> (Store, ProvenanceLedger, Handle, Handle, Handle) {
        let store = Store::new();
        let ledger = ProvenanceLedger::new();
        let input = store.put_blob(blob(1));
        let def = store.put_tree(Tree::from_handles(vec![input]));
        let thunk = def.application().unwrap();
        let output = store.put_blob(blob(2));
        ledger.record(output, thunk);
        (store, ledger, input, thunk, output)
    }

    #[test]
    fn ledger_records_and_looks_up() {
        let (_, ledger, _, thunk, output) = one_step();
        assert_eq!(ledger.recipe_for(output), Some(thunk));
        assert_eq!(ledger.recipe_for(output.as_ref_handle()), Some(thunk));
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn ledger_skips_literals_and_self_recipes() {
        let ledger = ProvenanceLedger::new();
        let lit = Blob::from_slice(b"small").handle();
        let def = Tree::from_handles(vec![]).handle();
        ledger.record(lit, def.application().unwrap());
        assert!(ledger.is_empty());
    }

    #[test]
    fn support_closure_walks_trees_thunks_and_encodes() {
        let store = Store::new();
        let leaf = store.put_blob(blob(3));
        let sub = store.put_tree(Tree::from_handles(vec![leaf]));
        let def = store.put_tree(Tree::from_handles(vec![sub.as_ref_handle()]));
        let thunk = def.application().unwrap();
        let enc = thunk.strict().unwrap();
        let outer_def = store.put_tree(Tree::from_handles(vec![enc]));
        let outer = outer_def.application().unwrap();
        let support = support_closure(&store, outer);
        // outer_def, def, sub, leaf — through the encode and the Ref.
        assert_eq!(support.len(), 4);
    }

    #[test]
    fn plan_evicts_output_keeps_inputs() {
        let (store, ledger, input, _, output) = one_step();
        let plan = plan_eviction(&store, &ledger, &[]);
        assert_eq!(plan.victims.len(), 1);
        assert_eq!(plan.victims[0].handle, output.as_object_handle());
        assert_eq!(plan.victims[0].depth, 1);
        assert_eq!(plan.bytes_reclaimed(), 64);
        let reclaimed = apply_eviction(&store, &ledger, &plan).unwrap();
        assert_eq!(reclaimed, 64);
        assert!(!store.contains(output));
        assert!(store.contains(input));
        assert_eq!(ledger.evicted_depth(output), Some(1));
    }

    #[test]
    fn pins_protect_reachable_graph() {
        let (store, ledger, _input, _, output) = one_step();
        let root = store.put_tree(Tree::from_handles(vec![output]));
        let plan = plan_eviction(&store, &ledger, &[root]);
        assert!(plan.victims.is_empty());
    }

    #[test]
    fn cascades_assign_increasing_depths() {
        // input -> t1 -> mid -> t2 -> out; both mid and out recomputable.
        let store = Store::new();
        let ledger = ProvenanceLedger::new();
        let input = store.put_blob(blob(1));
        let d1 = store.put_tree(Tree::from_handles(vec![input]));
        let t1 = d1.application().unwrap();
        let mid = store.put_blob(blob(2));
        ledger.record(mid, t1);
        let d2 = store.put_tree(Tree::from_handles(vec![mid]));
        let t2 = d2.application().unwrap();
        let out = store.put_blob(blob(3));
        ledger.record(out, t2);

        let plan = plan_eviction(&store, &ledger, &[]);
        let depth_of = |h: Handle| {
            plan.victims
                .iter()
                .find(|v| v.handle == h.as_object_handle())
                .map(|v| v.depth)
        };
        assert_eq!(depth_of(mid), Some(1));
        // out's recipe needs mid, which is itself a victim at depth 1.
        assert_eq!(depth_of(out), Some(2));
        assert_eq!(plan.max_depth(), 2);
        // Depth order: mid before out.
        assert!(plan.victims[0].handle == mid.as_object_handle());
    }

    #[test]
    fn missing_support_blocks_eviction() {
        let (store, ledger, input, _, output) = one_step();
        // The recipe's input vanishes without provenance: `output` can
        // no longer be recomputed, so it must not be evicted.
        store.evict(input);
        let plan = plan_eviction(&store, &ledger, &[]);
        assert!(plan.victims.is_empty());
        let _ = output;
    }

    #[test]
    fn self_supporting_objects_never_evicted() {
        // A selection whose target tree contains the output itself.
        let store = Store::new();
        let ledger = ProvenanceLedger::new();
        let out = store.put_blob(blob(9));
        let target = store.put_tree(Tree::from_handles(vec![out]));
        let (sel_tree, sel) = fix_core::invocation::build::selection(target, 0).unwrap();
        store.put_tree(sel_tree);
        ledger.record(out, sel);
        let plan = plan_eviction(&store, &ledger, &[]);
        assert!(plan.victims.iter().all(|v| v.handle != out));
    }

    #[test]
    fn second_round_uses_recorded_evicted_depths() {
        let (store, ledger, _input, _, output) = one_step();
        let plan = plan_eviction(&store, &ledger, &[]);
        apply_eviction(&store, &ledger, &plan).unwrap();

        // A later object whose recipe reads the (now evicted) output.
        let d2 = store.put_tree(Tree::from_handles(vec![output]));
        let t2 = d2.application().unwrap();
        let out2 = store.put_blob(blob(7));
        ledger.record(out2, t2);
        let plan2 = plan_eviction(&store, &ledger, &[]);
        let v = plan2
            .victims
            .iter()
            .find(|v| v.handle == out2.as_object_handle())
            .expect("out2 evictable");
        assert_eq!(v.depth, 2);
    }

    #[test]
    fn apply_refuses_recipeless_victims() {
        let (store, ledger, _, _, output) = one_step();
        let fake = EvictionPlan {
            victims: vec![Victim {
                handle: store.put_blob(blob(42)),
                depth: 1,
                bytes: 64,
            }],
        };
        assert!(apply_eviction(&store, &ledger, &fake).is_err());
        assert!(store.contains(output));
    }
}
