//! Human-readable labels for Fix objects.
//!
//! Content addressing gives stable machine names; labels give humans and
//! example programs a mutable namespace over them (like git refs over
//! commit hashes). Labels are a convenience layer only — nothing in Fix
//! semantics depends on them.

use fix_core::handle::Handle;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A mutable map from names to Handles.
///
/// # Examples
///
/// ```
/// use fix_storage::Labels;
/// use fix_core::data::Blob;
///
/// let labels = Labels::new();
/// let h = Blob::from_slice(b"compile-driver-v1").handle();
/// labels.set("compile", h);
/// assert_eq!(labels.get("compile"), Some(h));
/// ```
#[derive(Default)]
pub struct Labels {
    map: RwLock<BTreeMap<String, Handle>>,
}

impl Labels {
    /// Creates an empty label namespace.
    pub fn new() -> Labels {
        Labels::default()
    }

    /// Binds (or rebinds) a name.
    pub fn set(&self, name: &str, handle: Handle) {
        self.map.write().insert(name.to_string(), handle);
    }

    /// Resolves a name.
    pub fn get(&self, name: &str) -> Option<Handle> {
        self.map.read().get(name).copied()
    }

    /// Removes a binding, returning the old target.
    pub fn remove(&self, name: &str) -> Option<Handle> {
        self.map.write().remove(name)
    }

    /// All bindings, sorted by name.
    pub fn list(&self) -> Vec<(String, Handle)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    #[test]
    fn set_get_remove() {
        let labels = Labels::new();
        let a = Blob::from_slice(b"a").handle();
        let b = Blob::from_slice(b"b").handle();
        labels.set("x", a);
        assert_eq!(labels.get("x"), Some(a));
        labels.set("x", b);
        assert_eq!(labels.get("x"), Some(b));
        assert_eq!(labels.remove("x"), Some(b));
        assert_eq!(labels.get("x"), None);
    }

    #[test]
    fn list_is_sorted() {
        let labels = Labels::new();
        let h = Blob::from_slice(b"h").handle();
        labels.set("zeta", h);
        labels.set("alpha", h);
        let names: Vec<String> = labels.list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
