//! Human-readable labels for Fix objects.
//!
//! Content addressing gives stable machine names; labels give humans and
//! example programs a mutable namespace over them (like git refs over
//! commit hashes). Labels are a convenience layer only — nothing in Fix
//! semantics depends on them.
//!
//! The namespace is sharded by name hash (the same recipe as the
//! 64-way object store and 32-way relation cache), closing the last
//! ROADMAP-flagged single-lock hot spot outside the scheduler: binds
//! and lookups of unrelated names never contend.

use fix_core::handle::Handle;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Lock shards. Labels see far less traffic than the object store, so
/// 16 ways is plenty to take independent names off one lock.
const SHARDS: usize = 16;

/// FNV-1a over the name bytes; stable, and cheap for short names.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) % SHARDS
}

/// A mutable map from names to Handles.
///
/// # Examples
///
/// ```
/// use fix_storage::Labels;
/// use fix_core::data::Blob;
///
/// let labels = Labels::new();
/// let h = Blob::from_slice(b"compile-driver-v1").handle();
/// labels.set("compile", h);
/// assert_eq!(labels.get("compile"), Some(h));
/// ```
pub struct Labels {
    shards: Vec<RwLock<BTreeMap<String, Handle>>>,
}

impl Default for Labels {
    fn default() -> Labels {
        Labels {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }
}

impl Labels {
    /// Creates an empty label namespace.
    pub fn new() -> Labels {
        Labels::default()
    }

    /// Binds (or rebinds) a name.
    pub fn set(&self, name: &str, handle: Handle) {
        self.shards[shard_of(name)]
            .write()
            .insert(name.to_string(), handle);
    }

    /// Resolves a name.
    pub fn get(&self, name: &str) -> Option<Handle> {
        self.shards[shard_of(name)].read().get(name).copied()
    }

    /// Removes a binding, returning the old target.
    pub fn remove(&self, name: &str) -> Option<Handle> {
        self.shards[shard_of(name)].write().remove(name)
    }

    /// All bindings, sorted by name.
    ///
    /// Weaker than the pre-sharding version: each shard is read under
    /// its own lock, so the result is per-shard consistent but not an
    /// atomic snapshot of the whole namespace — a concurrent writer
    /// touching two shards may appear in one and not the other. Callers
    /// needing a true snapshot must hold exterior synchronization.
    pub fn list(&self) -> Vec<(String, Handle)> {
        let mut all: Vec<(String, Handle)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;

    #[test]
    fn set_get_remove() {
        let labels = Labels::new();
        let a = Blob::from_slice(b"a").handle();
        let b = Blob::from_slice(b"b").handle();
        labels.set("x", a);
        assert_eq!(labels.get("x"), Some(a));
        labels.set("x", b);
        assert_eq!(labels.get("x"), Some(b));
        assert_eq!(labels.remove("x"), Some(b));
        assert_eq!(labels.get("x"), None);
    }

    #[test]
    fn list_is_sorted() {
        let labels = Labels::new();
        let h = Blob::from_slice(b"h").handle();
        labels.set("zeta", h);
        labels.set("alpha", h);
        let names: Vec<String> = labels.list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn names_spread_over_shards() {
        // Not a distribution-quality claim — just a guard that the hash
        // actually routes different names to different locks.
        let shards: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("label-{i}"))).collect();
        assert!(shards.len() > SHARDS / 2, "{} shards used", shards.len());
    }

    #[test]
    fn concurrent_binds_from_many_threads_land_intact() {
        let labels = std::sync::Arc::new(Labels::new());
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|s| {
            for t in 0..threads {
                let labels = std::sync::Arc::clone(&labels);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let name = format!("t{t}/n{i}");
                        let h = Blob::from_slice(name.as_bytes()).handle();
                        labels.set(&name, h);
                        assert_eq!(labels.get(&name), Some(h), "{name}");
                        // Churn a shared name too: the winning bind must
                        // be one of the two candidate handles.
                        labels.set("shared", h);
                    }
                });
            }
        });
        assert_eq!(labels.list().len() as u64, threads * per_thread + 1);
        for t in 0..threads {
            for i in 0..per_thread {
                let name = format!("t{t}/n{i}");
                assert_eq!(
                    labels.get(&name),
                    Some(Blob::from_slice(name.as_bytes()).handle())
                );
            }
        }
        assert!(labels.get("shared").is_some());
    }
}
