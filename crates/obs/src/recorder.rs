//! The structured event recorder: per-thread ring buffers of compact
//! fixed-size records behind a single global toggle.
//!
//! Instrumentation sites call [`emit`]/[`emit_span`]. When tracing is
//! off (the default) those calls cost exactly **one relaxed atomic
//! load** of a static flag — no timestamp reads, no TLS access, no
//! allocation, no locks. When tracing is on, each thread appends into
//! its own bounded buffer: the only lock a recording thread ever takes
//! is its *own* buffer's uncontended mutex (a single CAS in the
//! parking-lot fast path); cross-thread contention exists only while
//! [`Recorder::drain`] collects the buffers.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Per-thread event capacity. A thread that records more events than
/// this between drains drops the excess (counted, never silently).
const PER_THREAD_CAP: usize = 1 << 20;

/// The global tracing toggle. A static (not a field of the lazily
/// initialised [`Recorder`]) so the disabled path never touches the
/// `OnceLock`: it is one relaxed load, full stop.
static TRACING: AtomicBool = AtomicBool::new(false);

/// The sampling period when tracing is enabled: `0` means record every
/// event ([`TracingMode::Full`]); `n ≥ 2` records one of every `n`
/// events per thread ([`TracingMode::Sampled`]). Consulted only on the
/// enabled path, so the disabled cost stays exactly one relaxed load of
/// [`TRACING`].
static SAMPLE_EVERY: AtomicU32 = AtomicU32::new(0);

/// Whether tracing is currently enabled — one relaxed atomic load.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// How much the recorder captures while enabled.
///
/// `Off` and `Full` are the original binary toggle. `Sampled(n)` keeps
/// tracing affordable for always-on production use: each thread records
/// one of every `n` events (a deterministic per-thread stride, counted
/// — never silently lost) so buffer volume and drain cost shrink by
/// `n×` while the shape of the trace survives. Sampling is uniform
/// across event kinds, so a sampled trace is a *diagnostic* artifact:
/// [`TraceSummary`](crate::TraceSummary) tables built from a sampled
/// trace are not comparable across runs — use `Full` for the
/// deterministic pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracingMode {
    /// Nothing is recorded; instrumentation sites cost one relaxed load.
    Off,
    /// Every event is recorded (the deterministic-summary mode).
    Full,
    /// One of every `n` events per thread is recorded; the rest are
    /// counted in [`Trace::sampled_out`]. Values `0` and `1` normalise
    /// to `Full`.
    Sampled(u32),
}

/// Sets the tracing mode. Events recorded so far stay buffered until
/// [`Recorder::drain`]; switching modes does not discard them.
pub fn set_tracing_mode(mode: TracingMode) {
    match mode {
        TracingMode::Off => TRACING.store(false, Ordering::SeqCst),
        TracingMode::Full | TracingMode::Sampled(0) | TracingMode::Sampled(1) => {
            SAMPLE_EVERY.store(0, Ordering::SeqCst);
            TRACING.store(true, Ordering::SeqCst);
        }
        TracingMode::Sampled(n) => {
            SAMPLE_EVERY.store(n, Ordering::SeqCst);
            TRACING.store(true, Ordering::SeqCst);
        }
    }
}

/// The current tracing mode.
pub fn tracing_mode() -> TracingMode {
    if !TRACING.load(Ordering::SeqCst) {
        return TracingMode::Off;
    }
    match SAMPLE_EVERY.load(Ordering::SeqCst) {
        0 | 1 => TracingMode::Full,
        n => TracingMode::Sampled(n),
    }
}

/// Turns tracing fully on or off — the binary shim over
/// [`set_tracing_mode`] (`Full`/`Off`) that every pre-sampling call
/// site uses.
pub fn set_tracing(on: bool) {
    set_tracing_mode(if on {
        TracingMode::Full
    } else {
        TracingMode::Off
    });
}

/// The layer an event kind belongs to (its Chrome-trace category and
/// summary-table grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The work-stealing scheduler (`fixpoint`).
    Scheduler,
    /// The multi-tenant serving layer (`fix-serve`).
    Serve,
    /// The multi-node dispatcher tier (`fix-dispatch`).
    Dispatch,
    /// The adaptive control plane (`fix-adapt`): admission rejections
    /// and driver-pool scaling decisions, all on the virtual clock.
    Control,
    /// The append-only persistence tier (`fix-durable`).
    Durable,
    /// The `BlockingOffload` adapter (`fix_core::api`).
    Offload,
}

impl Layer {
    /// Stable lowercase name (Chrome-trace category).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Scheduler => "scheduler",
            Layer::Serve => "serve",
            Layer::Dispatch => "dispatch",
            Layer::Control => "control",
            Layer::Durable => "durable",
            Layer::Offload => "offload",
        }
    }
}

/// What happened. Field conventions per kind are documented on the
/// emitting layer; `a`/`b` are small operands (slot/tier/tenant/depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // Variant meanings are the emitting layers' docs.
pub enum EventKind {
    // Scheduler (wall-clock diagnostics; a = slot or shard, b = tier).
    SchedSubmit,
    SchedEnqueue,
    SchedPop,
    SchedSteal,
    SchedExecute,
    SchedComplete,
    SchedCancel,
    SchedExpire,
    SchedBatchFill,
    SchedPark,
    SchedUnpark,
    // Serving (virtual-clock lifecycle; a = tenant index).
    ServeAdmit,
    ServeShed,
    ServeDispatch,
    ServeExpire,
    ServeComplete,
    ServeQueueDepth,
    // Dispatcher tier (virtual-clock routing decisions; a = node index).
    Route,
    Spill,
    NodeKill,
    NodeRestart,
    // Adaptive control plane (virtual-clock decisions; CtrlReject:
    // a = tenant, b = priced wait µs; CtrlScale*: a = from, b = to).
    CtrlReject,
    CtrlScaleUp,
    CtrlScaleDown,
    // Durable store (wall latencies in `dur_ns`).
    DurAppend,
    DurFsync,
    DurSnapshot,
    DurEvict,
    DurRefault,
    // BlockingOffload (its own virtual clock; counts are wall-timing
    // dependent, so diagnostic).
    OffloadSubmit,
    OffloadDispatch,
    OffloadExpire,
    OffloadCancel,
}

impl EventKind {
    /// The layer this kind belongs to.
    pub fn layer(self) -> Layer {
        use EventKind::*;
        match self {
            SchedSubmit | SchedEnqueue | SchedPop | SchedSteal | SchedExecute | SchedComplete
            | SchedCancel | SchedExpire | SchedBatchFill | SchedPark | SchedUnpark => {
                Layer::Scheduler
            }
            ServeAdmit | ServeShed | ServeDispatch | ServeExpire | ServeComplete
            | ServeQueueDepth => Layer::Serve,
            Route | Spill | NodeKill | NodeRestart => Layer::Dispatch,
            CtrlReject | CtrlScaleUp | CtrlScaleDown => Layer::Control,
            DurAppend | DurFsync | DurSnapshot | DurEvict | DurRefault => Layer::Durable,
            OffloadSubmit | OffloadDispatch | OffloadExpire | OffloadCancel => Layer::Offload,
        }
    }

    /// Stable snake-case name used in summary tables and Chrome traces.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            SchedSubmit => "scheduler.submit",
            SchedEnqueue => "scheduler.enqueue",
            SchedPop => "scheduler.pop",
            SchedSteal => "scheduler.steal",
            SchedExecute => "scheduler.execute",
            SchedComplete => "scheduler.complete",
            SchedCancel => "scheduler.cancel",
            SchedExpire => "scheduler.expire",
            SchedBatchFill => "scheduler.batch_fill",
            SchedPark => "scheduler.park",
            SchedUnpark => "scheduler.unpark",
            ServeAdmit => "serve.admit",
            ServeShed => "serve.shed",
            ServeDispatch => "serve.dispatch",
            ServeExpire => "serve.expire",
            ServeComplete => "serve.complete",
            ServeQueueDepth => "serve.queue_depth",
            Route => "dispatch.route",
            Spill => "dispatch.spill",
            NodeKill => "dispatch.node_kill",
            NodeRestart => "dispatch.node_restart",
            CtrlReject => "control.reject",
            CtrlScaleUp => "control.scale_up",
            CtrlScaleDown => "control.scale_down",
            DurAppend => "durable.append",
            DurFsync => "durable.fsync",
            DurSnapshot => "durable.snapshot",
            DurEvict => "durable.evict",
            DurRefault => "durable.refault",
            OffloadSubmit => "offload.submit",
            OffloadDispatch => "offload.dispatch",
            OffloadExpire => "offload.expire",
            OffloadCancel => "offload.cancel",
        }
    }

    /// Whether this kind carries deterministic virtual-clock content:
    /// only such kinds enter [`TraceSummary`](crate::TraceSummary)
    /// tables. Serve-layer lifecycle events, dispatcher-tier routing
    /// decisions, and control-plane admission/scaling decisions are
    /// emitted by single-threaded virtual-time simulations, so for a
    /// fixed seed they are identical across runs, worker counts, and
    /// submitting backends; every other layer's counts depend on wall
    /// timing (steals, parks, fsync batching) and exports to the
    /// Chrome trace only.
    pub fn deterministic(self) -> bool {
        matches!(
            self.layer(),
            Layer::Serve | Layer::Dispatch | Layer::Control
        )
    }

    /// Every kind, in summary-table order.
    pub fn all() -> &'static [EventKind] {
        use EventKind::*;
        &[
            SchedSubmit,
            SchedEnqueue,
            SchedPop,
            SchedSteal,
            SchedExecute,
            SchedComplete,
            SchedCancel,
            SchedExpire,
            SchedBatchFill,
            SchedPark,
            SchedUnpark,
            ServeAdmit,
            ServeShed,
            ServeDispatch,
            ServeExpire,
            ServeComplete,
            ServeQueueDepth,
            Route,
            Spill,
            NodeKill,
            NodeRestart,
            CtrlReject,
            CtrlScaleUp,
            CtrlScaleDown,
            DurAppend,
            DurFsync,
            DurSnapshot,
            DurEvict,
            DurRefault,
            OffloadSubmit,
            OffloadDispatch,
            OffloadExpire,
            OffloadCancel,
        ]
    }
}

/// One compact fixed-size trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp of the emitting layer, in µs (0 when the
    /// layer has no virtual clock). Deterministic for serve-layer kinds.
    pub virt_us: u64,
    /// Wall-clock nanoseconds since the recorder's epoch. Never appears
    /// in deterministic tables; feeds the Chrome trace export.
    pub wall_ns: u64,
    /// Wall-clock duration for span-like events (0 = instant).
    pub dur_ns: u64,
    /// Job/request identity: the first 8 bytes of the subject Handle
    /// (0 when there is no subject).
    pub id: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific small operand (slot, shard, or tenant index).
    pub a: u32,
    /// Kind-specific small operand (tier, queue depth, latency µs…).
    pub b: u32,
}

/// One thread's buffer: the owner pushes under its own (uncontended)
/// mutex; only `drain` ever contends.
struct ThreadBuffer {
    tid: u64,
    events: Mutex<Vec<TraceEvent>>,
    /// Deterministic (serve-layer) events dropped at capacity — a
    /// nonzero value means summary determinism is lost, and the summary
    /// table says so.
    dropped_det: AtomicU64,
    /// Diagnostic events dropped at capacity.
    dropped_diag: AtomicU64,
    /// Monotone per-thread event tick driving the `Sampled(n)` stride
    /// (only the owning thread increments it).
    ticks: AtomicU64,
    /// Events skipped by the sampling stride (deliberate, not lost).
    sampled_out: AtomicU64,
}

/// The process-wide recorder: owns every thread's buffer and the wall
/// epoch. Obtain it with [`recorder`].
pub struct Recorder {
    epoch: Instant,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
    next_tid: AtomicU64,
}

thread_local! {
    /// This thread's registered buffer (`None` until first record).
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder.
pub fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        buffers: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
    })
}

impl Recorder {
    /// Wall-clock nanoseconds since this recorder's epoch.
    pub fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn with_local<R>(&self, f: impl FnOnce(&ThreadBuffer) -> R) -> R {
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let buf = slot.get_or_insert_with(|| {
                let buf = Arc::new(ThreadBuffer {
                    tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
                    events: Mutex::new(Vec::new()),
                    dropped_det: AtomicU64::new(0),
                    dropped_diag: AtomicU64::new(0),
                    ticks: AtomicU64::new(0),
                    sampled_out: AtomicU64::new(0),
                });
                self.buffers.lock().push(buf.clone());
                buf
            });
            f(buf)
        })
    }

    /// Appends `ev` to the calling thread's buffer (dropping and
    /// counting if the per-thread ring is full). In `Sampled(n)` mode
    /// only one of every `n` events per thread is appended; the rest
    /// are counted as sampled out. Callers normally go through
    /// [`emit`]/[`emit_span`], which check the toggle first.
    pub fn record(&self, ev: TraceEvent) {
        self.with_local(|buf| {
            let every = SAMPLE_EVERY.load(Ordering::Relaxed);
            if every > 1 {
                let tick = buf.ticks.fetch_add(1, Ordering::Relaxed);
                if tick % every as u64 != 0 {
                    buf.sampled_out.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let mut events = buf.events.lock();
            if events.len() < PER_THREAD_CAP {
                events.push(ev);
            } else if ev.kind.deterministic() {
                buf.dropped_det.fetch_add(1, Ordering::Relaxed);
            } else {
                buf.dropped_diag.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Takes every buffered event out of every thread's buffer,
    /// returning them grouped by recording thread (sorted by thread id,
    /// so the grouping itself is stable). Buffers of threads that have
    /// exited are removed once drained.
    pub fn drain(&self) -> Trace {
        let mut buffers = self.buffers.lock();
        let mut threads = Vec::new();
        let mut dropped_det = 0;
        let mut dropped_diag = 0;
        let mut sampled_out = 0;
        buffers.retain(|buf| {
            let events = std::mem::take(&mut *buf.events.lock());
            dropped_det += buf.dropped_det.swap(0, Ordering::Relaxed);
            dropped_diag += buf.dropped_diag.swap(0, Ordering::Relaxed);
            sampled_out += buf.sampled_out.swap(0, Ordering::Relaxed);
            if !events.is_empty() {
                threads.push(ThreadTrace {
                    tid: buf.tid,
                    events,
                });
            }
            // Keep buffers whose thread is still alive (TLS holds an Arc).
            Arc::strong_count(buf) > 1
        });
        threads.sort_by_key(|t| t.tid);
        Trace {
            threads,
            dropped_deterministic: dropped_det,
            dropped_diagnostic: dropped_diag,
            sampled_out,
        }
    }

    /// Discards every buffered event and drop counter.
    pub fn clear(&self) {
        let _ = self.drain();
    }
}

/// Events recorded by one thread, in recording order.
pub struct ThreadTrace {
    /// Recorder-assigned thread id (stable for the thread's lifetime).
    pub tid: u64,
    /// The thread's events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Everything drained from the recorder: per-thread event sequences
/// plus drop accounting.
pub struct Trace {
    /// Per-thread event sequences, sorted by thread id.
    pub threads: Vec<ThreadTrace>,
    /// Deterministic (serve-layer) events lost to buffer capacity.
    pub dropped_deterministic: u64,
    /// Diagnostic events lost to buffer capacity.
    pub dropped_diagnostic: u64,
    /// Events skipped by the [`TracingMode::Sampled`] stride —
    /// deliberate volume reduction, accounted separately from drops.
    pub sampled_out: u64,
}

impl Trace {
    /// Total number of captured events.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no events were captured.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Iterates over every event (thread-major order).
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.threads.iter().flat_map(|t| t.events.iter())
    }

    /// The deterministic per-layer summary of this trace.
    pub fn summary(&self) -> crate::TraceSummary {
        crate::TraceSummary::of(self)
    }

    /// Renders this trace as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(self)
    }
}

/// Records an instant event if tracing is enabled. The disabled path is
/// one relaxed atomic load.
#[inline]
pub fn emit(kind: EventKind, virt_us: u64, id: u64, a: u32, b: u32) {
    if !tracing_enabled() {
        return;
    }
    let r = recorder();
    let wall_ns = r.wall_ns();
    r.record(TraceEvent {
        virt_us,
        wall_ns,
        dur_ns: 0,
        id,
        kind,
        a,
        b,
    });
}

/// Records a span event (wall duration `dur_ns`, ending now) if tracing
/// is enabled. The disabled path is one relaxed atomic load.
#[inline]
pub fn emit_span(kind: EventKind, virt_us: u64, id: u64, a: u32, b: u32, dur_ns: u64) {
    if !tracing_enabled() {
        return;
    }
    let r = recorder();
    let wall_ns = r.wall_ns().saturating_sub(dur_ns);
    r.record(TraceEvent {
        virt_us,
        wall_ns,
        dur_ns,
        id,
        kind,
        a,
        b,
    });
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use parking_lot::Mutex as TestMutex;

    /// Serialises every test that touches the global recorder/toggle
    /// (also used by the other modules' tests).
    pub(crate) static GLOBAL_TRACE_LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing(false);
        emit(EventKind::ServeAdmit, 1, 2, 3, 4);
        assert!(recorder().drain().is_empty());
    }

    #[test]
    fn enabled_captures_and_drain_empties() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing(true);
        emit(EventKind::ServeAdmit, 10, 42, 0, 1);
        emit_span(EventKind::DurFsync, 0, 0, 0, 0, 1_000);
        set_tracing(false);
        let t = recorder().drain();
        assert_eq!(t.len(), 2);
        let kinds: Vec<_> = t.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::ServeAdmit));
        assert!(kinds.contains(&EventKind::DurFsync));
        assert!(recorder().drain().is_empty());
    }

    #[test]
    fn threads_get_distinct_buffers() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing(true);
        std::thread::scope(|s| {
            for i in 0..4u32 {
                s.spawn(move || emit(EventKind::SchedSubmit, 0, i as u64, i, 0));
            }
        });
        set_tracing(false);
        let t = recorder().drain();
        assert_eq!(t.len(), 4);
        assert_eq!(t.threads.len(), 4, "one buffer per recording thread");
        // Exited threads' buffers were pruned after the drain.
        let t2 = recorder().drain();
        assert!(t2.is_empty());
    }

    #[test]
    fn sampled_mode_records_every_nth_event() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing_mode(TracingMode::Sampled(4));
        assert_eq!(tracing_mode(), TracingMode::Sampled(4));
        for i in 0..8 {
            emit(EventKind::SchedSubmit, 0, i, 0, 0);
        }
        set_tracing(false);
        assert_eq!(tracing_mode(), TracingMode::Off);
        let t = recorder().drain();
        assert_eq!(t.len(), 2, "stride 4 keeps ticks 0 and 4 of 8");
        assert_eq!(t.sampled_out, 6);
        assert_eq!(t.dropped_diagnostic, 0, "sampling is not a drop");
    }

    #[test]
    fn sampled_one_is_full() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing_mode(TracingMode::Sampled(1));
        assert_eq!(tracing_mode(), TracingMode::Full);
        for i in 0..5 {
            emit(EventKind::ServeAdmit, i, i, 0, 0);
        }
        set_tracing_mode(TracingMode::Off);
        let t = recorder().drain();
        assert_eq!(t.len(), 5);
        assert_eq!(t.sampled_out, 0);
    }

    #[test]
    fn kind_names_and_layers_are_consistent() {
        for &k in EventKind::all() {
            assert!(k.name().starts_with(k.layer().name()), "{:?}", k);
            assert_eq!(
                k.deterministic(),
                matches!(k.layer(), Layer::Serve | Layer::Dispatch | Layer::Control)
            );
        }
        // `all()` really is all: names are unique.
        let mut names: Vec<_> = EventKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::all().len());
    }
}
