//! Chrome trace-event JSON export (Perfetto-loadable) and a minimal
//! JSON parser used to validate exported files offline.
//!
//! The export is the *wall-clock* view: every captured event — including
//! the non-deterministic scheduler/durable/offload diagnostics that the
//! deterministic summary excludes — with `ts`/`dur` in microseconds
//! since the recorder epoch, one Chrome `tid` per recording thread, and
//! the emitting layer as the category. Load the file in
//! `https://ui.perfetto.dev` (or `chrome://tracing`) for deep dives.

use crate::recorder::Trace;
use std::fmt::Write as _;

/// Formats `ns` as microseconds with nanosecond precision (Chrome's
/// `ts`/`dur` fields are doubles in µs).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders a drained trace as a Chrome trace-event JSON document.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for thread in &trace.threads {
        for ev in &thread.events {
            if !first {
                out.push(',');
            }
            first = false;
            let (ph, dur) = if ev.dur_ns > 0 {
                ("X", Some(ev.dur_ns))
            } else {
                ("i", None)
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                ev.kind.name(),
                ev.kind.layer().name(),
                ph,
                fmt_us(ev.wall_ns)
            );
            if let Some(d) = dur {
                let _ = write!(out, "\"dur\":{},", fmt_us(d));
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(
                out,
                "\"pid\":1,\"tid\":{},\"args\":{{\"id\":\"{:#018x}\",\"virt_us\":{},\"a\":{},\"b\":{}}}}}",
                thread.tid, ev.id, ev.virt_us, ev.a, ev.b
            );
        }
    }
    out.push_str("]}");
    out
}

/// A parsed JSON value (just enough of a DOM to validate exports).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates would need pairing; exports never
                            // emit them, so reject instead of mis-decoding.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validates a Chrome trace-event export: the document must parse, hold
/// a `traceEvents` array, and every event must carry the mandatory
/// `name`/`ph`/`ts` fields. Returns the number of trace events.
pub fn validate_chrome_trace(s: &str) -> Result<usize, String> {
    let doc = parse_json(s)?;
    let events = match doc.get("traceEvents") {
        Some(JsonValue::Array(evs)) => evs,
        _ => return Err("missing traceEvents array".to_string()),
    };
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "ts"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing {key}"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ThreadTrace, TraceEvent};
    use crate::EventKind;

    fn sample_trace() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 3,
                events: vec![
                    TraceEvent {
                        virt_us: 5,
                        wall_ns: 1_234,
                        dur_ns: 0,
                        id: 0xdead,
                        kind: EventKind::ServeAdmit,
                        a: 0,
                        b: 1,
                    },
                    TraceEvent {
                        virt_us: 0,
                        wall_ns: 2_000,
                        dur_ns: 1_500,
                        id: 0,
                        kind: EventKind::DurFsync,
                        a: 0,
                        b: 0,
                    },
                ],
            }],
            dropped_deterministic: 0,
            dropped_diagnostic: 0,
            sampled_out: 0,
        }
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let json = to_chrome_json(&sample_trace());
        assert_eq!(validate_chrome_trace(&json).unwrap(), 2);
        let doc = parse_json(&json).unwrap();
        let evs = match doc.get("traceEvents") {
            Some(JsonValue::Array(evs)) => evs,
            other => panic!("bad traceEvents: {other:?}"),
        };
        assert_eq!(
            evs[0].get("name"),
            Some(&JsonValue::String("serve.admit".into()))
        );
        assert_eq!(evs[0].get("ph"), Some(&JsonValue::String("i".into())));
        assert_eq!(evs[1].get("ph"), Some(&JsonValue::String("X".into())));
        assert_eq!(evs[1].get("dur"), Some(&JsonValue::Number(1.5)));
        assert_eq!(evs[1].get("ts"), Some(&JsonValue::Number(2.0)));
    }

    #[test]
    fn empty_trace_is_valid_but_empty() {
        let json = to_chrome_json(&Trace {
            threads: Vec::new(),
            dropped_deterministic: 0,
            dropped_diagnostic: 0,
            sampled_out: 0,
        });
        assert_eq!(validate_chrome_trace(&json).unwrap(), 0);
    }

    #[test]
    fn parser_accepts_and_rejects() {
        assert!(parse_json("{\"a\":[1,2.5,-3e2,\"x\\n\",true,null]}").is_ok());
        assert!(parse_json("  [ ]  ").is_ok());
        assert!(parse_json("{\"unicode\":\"\\u00e9\"}").is_ok());
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        assert!(validate_chrome_trace("[1,2]").is_err(), "no traceEvents");
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}").is_err(),
            "missing name/ts"
        );
    }
}
