//! Deterministic trace summaries.
//!
//! A [`TraceSummary`] aggregates only the *deterministic* event kinds
//! (see [`EventKind::deterministic`]): serve-layer lifecycle records
//! whose timestamps come from the virtual clock. Aggregation is
//! order-insensitive (counts, min/max timestamps, histogram merges), so
//! the rendered tables are byte-identical across runs, worker counts,
//! and submitting backends for the same seed — the property the CI
//! trace smoke and `figures trace` pin.

use crate::hist::LogHistogram;
use crate::recorder::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate row for one event kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct KindRow {
    count: u64,
    first_us: u64,
    last_us: u64,
}

/// Aggregate lifecycle row for one tenant (by tenant index).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct TenantRow {
    admitted: u64,
    shed: u64,
    dispatched: u64,
    expired: u64,
    completed: u64,
    max_depth: u32,
}

/// The deterministic per-layer summary of a [`Trace`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    kinds: BTreeMap<EventKind, KindRow>,
    tenants: BTreeMap<u32, TenantRow>,
    /// Queue-wait samples carried by dispatch events (µs).
    wait: LogHistogram,
    /// End-to-end latency samples carried by completion events (µs).
    latency: LogHistogram,
    dropped: u64,
}

impl TraceSummary {
    /// Builds the summary of `trace`, ignoring every non-deterministic
    /// (wall-clock) event kind.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut s = TraceSummary {
            dropped: trace.dropped_deterministic,
            ..TraceSummary::default()
        };
        for ev in trace.iter().filter(|e| e.kind.deterministic()) {
            let row = s.kinds.entry(ev.kind).or_default();
            if row.count == 0 {
                row.first_us = ev.virt_us;
                row.last_us = ev.virt_us;
            } else {
                row.first_us = row.first_us.min(ev.virt_us);
                row.last_us = row.last_us.max(ev.virt_us);
            }
            row.count += 1;
            // Per-tenant lifecycle rows aggregate serve-layer kinds only:
            // dispatcher-tier events carry a *node* index in `a`, which
            // must not mint phantom tenant rows.
            match ev.kind {
                EventKind::ServeAdmit => s.tenants.entry(ev.a).or_default().admitted += 1,
                EventKind::ServeShed => s.tenants.entry(ev.a).or_default().shed += 1,
                EventKind::ServeDispatch => {
                    s.tenants.entry(ev.a).or_default().dispatched += 1;
                    s.wait.record(ev.b as u64);
                }
                EventKind::ServeExpire => s.tenants.entry(ev.a).or_default().expired += 1,
                EventKind::ServeComplete => {
                    s.tenants.entry(ev.a).or_default().completed += 1;
                    s.latency.record(ev.b as u64);
                }
                EventKind::ServeQueueDepth => {
                    let tenant = s.tenants.entry(ev.a).or_default();
                    tenant.max_depth = tenant.max_depth.max(ev.b);
                }
                _ => {}
            }
        }
        s
    }

    /// Total deterministic events aggregated.
    pub fn event_count(&self) -> u64 {
        self.kinds.values().map(|r| r.count).sum()
    }

    /// Deterministic events lost to recorder capacity. A nonzero value
    /// means the summary is no longer comparable across runs (and the
    /// rendered table says so).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace summary (virtual clock, deterministic)")?;
        if self.kinds.is_empty() {
            writeln!(f, "  no deterministic events captured")?;
            return Ok(());
        }
        writeln!(
            f,
            "  {:<20} {:>10} {:>12} {:>12}",
            "event", "count", "first(µs)", "last(µs)"
        )?;
        for (kind, row) in &self.kinds {
            writeln!(
                f,
                "  {:<20} {:>10} {:>12} {:>12}",
                kind.name(),
                row.count,
                row.first_us,
                row.last_us
            )?;
        }
        writeln!(
            f,
            "  {:<8} {:>9} {:>7} {:>11} {:>8} {:>10} {:>10}",
            "tenant", "admitted", "shed", "dispatched", "expired", "completed", "max_depth"
        )?;
        for (idx, t) in &self.tenants {
            writeln!(
                f,
                "  t{idx:<7} {:>9} {:>7} {:>11} {:>8} {:>10} {:>10}",
                t.admitted, t.shed, t.dispatched, t.expired, t.completed, t.max_depth
            )?;
        }
        writeln!(
            f,
            "  queue-wait µs  p50 {:>8}  p99 {:>8}  max {:>8}",
            self.wait.quantile(0.50),
            self.wait.quantile(0.99),
            self.wait.max()
        )?;
        writeln!(
            f,
            "  latency µs     p50 {:>8}  p99 {:>8}  max {:>8}",
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            self.latency.max()
        )?;
        writeln!(f, "  dropped deterministic events: {}", self.dropped)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{emit, recorder, set_tracing, tests::GLOBAL_TRACE_LOCK};

    fn emit_stream(perm: &[usize]) {
        // One fixed event stream, emitted in the given order; the
        // summary must not care about ordering.
        let evs = [
            (EventKind::ServeAdmit, 10u64, 1u64, 0u32, 1u32),
            (EventKind::ServeAdmit, 20, 2, 0, 2),
            (EventKind::ServeDispatch, 30, 1, 0, 20),
            (EventKind::ServeQueueDepth, 30, 0, 0, 1),
            (EventKind::ServeComplete, 90, 1, 0, 80),
            (EventKind::ServeShed, 40, 3, 1, 4),
            // A diagnostic event that must not appear in the summary.
            (EventKind::SchedSteal, 0, 9, 2, 0),
        ];
        for &i in perm {
            let (k, virt, id, a, b) = evs[i];
            emit(k, virt, id, a, b);
        }
    }

    #[test]
    fn summary_is_order_insensitive_and_filters_diagnostics() {
        let _g = GLOBAL_TRACE_LOCK.lock();
        recorder().clear();
        set_tracing(true);
        emit_stream(&[0, 1, 2, 3, 4, 5, 6]);
        set_tracing(false);
        let a = recorder().drain().summary();

        set_tracing(true);
        emit_stream(&[6, 5, 4, 3, 2, 1, 0]);
        set_tracing(false);
        let b = recorder().drain().summary();

        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.event_count(), 6, "steal event excluded");
        let s = a.to_string();
        assert!(s.contains("serve.admit"));
        assert!(!s.contains("scheduler.steal"));
        assert!(s.contains("dropped deterministic events: 0"));
    }

    #[test]
    fn empty_summary_renders() {
        let t = Trace {
            threads: Vec::new(),
            dropped_deterministic: 0,
            dropped_diagnostic: 0,
            sampled_out: 0,
        };
        assert!(t.summary().to_string().contains("no deterministic"));
    }
}
