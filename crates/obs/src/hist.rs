//! Fixed-bucket log-scale histograms (the mechanics behind
//! `fix_serve::LatencyHistogram`, which re-exports this type).
//!
//! An HDR-style histogram with power-of-two major buckets subdivided 8
//! ways. The layout is *fixed* — no configuration, no rescaling — which
//! buys three properties every layer of the stack needs:
//!
//! * recording is a single index computation (no allocation, no locks:
//!   each worker owns its histogram);
//! * histograms [`merge`](LogHistogram::merge) by element-wise addition,
//!   and merging per-worker histograms is *exactly* equal to recording
//!   everything into one histogram;
//! * quantile extraction is deterministic: a quantile is the lower
//!   bound of the bucket holding that rank, so equal inputs print
//!   equal tables on every platform.
//!
//! Relative bucket error is bounded by 12.5% (1/8), which is far below
//! the run-to-run variance of any real serving system.

/// Sub-buckets per power-of-two major bucket (8 → ≤12.5% bucket width).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
/// Enough groups to cover the full `u64` range.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the bucket containing `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    group * SUB + sub
}

/// Smallest value mapping to bucket `b` (the bucket's reported value).
fn bucket_floor(b: usize) -> u64 {
    let group = b / SUB;
    let sub = (b % SUB) as u64;
    if group == 0 {
        sub
    } else {
        (SUB as u64 + sub) << (group - 1)
    }
}

/// A mergeable log-scale histogram of microsecond values.
///
/// # Examples
///
/// ```
/// use fix_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for us in [10, 20, 30, 40, 1000] {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 5);
/// // p50 is the bucket floor of the rank-3 sample (30 µs → bucket [30,32)).
/// assert_eq!(h.quantile(0.50), 30);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample, in µs.
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_of(us)] += 1;
        self.total += 1;
        self.sum += us as u128;
        self.min = self.min.min(us);
        self.max = self.max.max(us);
    }

    /// Adds every sample of `other` into `self`. The result is
    /// identical to having recorded both sample streams into one
    /// histogram — the property that lets each driver-pool worker keep
    /// a private histogram and pay zero synchronization per request.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples, in µs (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` (e.g. `0.99`), reported as the lower
    /// bound of the bucket holding that rank — deterministic, and never
    /// more than 12.5% below the exact order statistic. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Fraction of samples whose bucket lies at or below `deadline_us`
    /// — SLO attainment for a latency-class deadline, at bucket
    /// resolution (≤12.5% value error, deterministic). Returns 1.0 for
    /// an empty histogram: no traffic, no violations.
    pub fn attainment(&self, deadline_us: u64) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let cutoff = bucket_of(deadline_us);
        let within: u64 = self.counts[..=cutoff].iter().sum();
        within as f64 / self.total as f64
    }

    /// The standard serving quartet: (p50, p90, p99, p999).
    pub fn tail_summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose floor is ≤ the value, and
        // floors are strictly increasing with the bucket index.
        for v in (0u64..4096).chain([u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
            if b + 1 < BUCKETS {
                assert!(bucket_floor(b + 1) > v, "value {v} past bucket {b}");
            }
        }
        for b in 1..BUCKETS {
            assert!(bucket_floor(b) > bucket_floor(b - 1));
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Below 2·SUB the buckets have width 1: quantiles are exact.
        let mut h = LogHistogram::new();
        for v in 0..=15 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn known_distribution_has_exact_bucketed_quantiles() {
        // 1000 samples: 900 at 100 µs, 90 at 1000 µs, 9 at 10_000 µs,
        // 1 at 100_000 µs — the textbook tail shape.
        let mut h = LogHistogram::new();
        for _ in 0..900 {
            h.record(100);
        }
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(100_000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.quantile(0.50), bucket_floor(bucket_of(100)));
        assert_eq!(h.quantile(0.90), bucket_floor(bucket_of(100)));
        assert_eq!(h.quantile(0.99), bucket_floor(bucket_of(1_000)));
        assert_eq!(h.quantile(0.999), bucket_floor(bucket_of(10_000)));
        assert_eq!(h.quantile(1.0), bucket_floor(bucket_of(100_000)));
        // Bucket floors undershoot by < 12.5%.
        assert!(h.quantile(0.99) > 875 && h.quantile(0.99) <= 1_000);
    }

    #[test]
    fn merged_worker_histograms_equal_the_single_histogram() {
        // Deterministic pseudo-random latencies, striped across four
        // "workers" exactly as the driver pool stripes requests.
        let lat = |i: u64| (i.wrapping_mul(2654435761) % 50_000) + 1;
        let mut single = LogHistogram::new();
        let mut workers = vec![LogHistogram::new(); 4];
        for i in 0..10_000u64 {
            single.record(lat(i));
            workers[(i % 4) as usize].record(lat(i));
        }
        let mut merged = LogHistogram::new();
        for w in &workers {
            merged.merge(w);
        }
        assert_eq!(merged, single);
        assert_eq!(merged.tail_summary(), single.tail_summary());
        assert_eq!(merged.mean(), single.mean());
    }

    #[test]
    fn attainment_counts_samples_within_the_deadline() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(3); // Width-1 buckets: exact.
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert!((h.attainment(3) - 0.9).abs() < 1e-9);
        assert!((h.attainment(u64::MAX) - 1.0).abs() < 1e-9);
        assert_eq!(LogHistogram::new().attainment(1), 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }
}
