//! The unified metrics registry: named counters, gauges, and log-scale
//! histograms with snapshot + merge.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramCell`]) are cheap
//! `Arc`-backed clones, so a hot path can keep its own handle (one
//! relaxed atomic op per update) while the registry names the same
//! underlying cell for export. [`Registry::snapshot`] freezes every
//! metric into a [`MetricsSnapshot`]; snapshots merge commutatively
//! (counters and gauges add, histograms merge element-wise), so merging
//! per-worker registries is exactly equal to recording everything into
//! one — the same contract as [`LogHistogram::merge`].

use crate::hist::LogHistogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter (relaxed atomic updates).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zero counter (not yet registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for counters sampled from an external
    /// source at snapshot time).
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed gauge (relaxed atomic updates).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh zero gauge (not yet registered anywhere).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the sampled value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared, lockable [`LogHistogram`] cell.
#[derive(Clone, Default)]
pub struct HistogramCell(Arc<Mutex<LogHistogram>>);

impl HistogramCell {
    /// A fresh empty histogram cell (not yet registered anywhere).
    pub fn new() -> HistogramCell {
        HistogramCell::default()
    }

    /// Records one sample, in µs.
    pub fn record(&self, us: u64) {
        self.0.lock().record(us);
    }

    /// Merges a privately accumulated histogram into the cell (the
    /// zero-synchronization-per-sample pattern: workers record locally,
    /// then merge once).
    pub fn merge_from(&self, h: &LogHistogram) {
        self.0.lock().merge(h);
    }

    /// A copy of the current contents.
    pub fn snapshot(&self) -> LogHistogram {
        self.0.lock().clone()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramCell>,
}

/// A named collection of metrics. Use [`global`] for the process-wide
/// registry, or own one per component (each `Runtime` and
/// `DurableStore` owns its own, so parallel instances never collide).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering a fresh one on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing counter handle under `name` (adopting the
    /// live cell a hot path already updates). Replaces any previous
    /// registration of the name.
    pub fn register_counter(&self, name: &str, c: &Counter) {
        self.inner
            .lock()
            .counters
            .insert(name.to_string(), c.clone());
    }

    /// The gauge named `name`, registering a fresh one on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, g: &Gauge) {
        self.inner.lock().gauges.insert(name.to_string(), g.clone());
    }

    /// Registers an existing histogram cell under `name`.
    pub fn register_histogram(&self, name: &str, h: &HistogramCell) {
        self.inner
            .lock()
            .histograms
            .insert(name.to_string(), h.clone());
    }

    /// The histogram named `name`, registering a fresh one on first use.
    pub fn histogram(&self, name: &str) -> HistogramCell {
        self.inner
            .lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Freezes every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry (per-tenant serving telemetry registers
/// here; component-owned registries merge into snapshots of it on
/// export).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A frozen view of a registry's metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: counters and gauges add, histograms
    /// merge element-wise. Commutative and associative, so merging
    /// per-worker snapshots in any order equals one combined registry.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<44} {:>14}", "metric", "value")?;
        for (k, v) in &self.counters {
            writeln!(f, "{k:<44} {v:>14}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<44} {v:>14}")?;
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "{:<28} {:>9} {:>10} {:>8} {:>8} {:>10}",
                "histogram (µs)", "count", "mean", "p50", "p99", "max"
            )?;
            for (k, h) in &self.histograms {
                writeln!(
                    f,
                    "{k:<28} {:>9} {:>10.1} {:>8} {:>8} {:>10}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_registered_cell() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);

        let live = Counter::new();
        live.add(7);
        reg.register_counter("adopted", &live);
        live.inc();
        assert_eq!(reg.snapshot().counters["adopted"], 8);

        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("depth").get(), 3);
    }

    #[test]
    fn per_worker_snapshots_merge_to_the_single_registry() {
        // The same deterministic stream, recorded whole into one
        // registry and striped across four, must snapshot identically
        // after merging — counters, gauges, and histograms.
        let val = |i: u64| (i.wrapping_mul(2654435761) % 10_000) + 1;
        let single = Registry::new();
        let workers: Vec<Registry> = (0..4).map(|_| Registry::new()).collect();
        for i in 0..5_000u64 {
            single.counter("ops").inc();
            single.gauge("delta").add(if i % 3 == 0 { 1 } else { -1 });
            single.histogram("lat").record(val(i));
            let w = &workers[(i % 4) as usize];
            w.counter("ops").inc();
            w.gauge("delta").add(if i % 3 == 0 { 1 } else { -1 });
            w.histogram("lat").record(val(i));
        }
        let mut merged = MetricsSnapshot::default();
        for w in &workers {
            merged.merge(&w.snapshot());
        }
        assert_eq!(merged, single.snapshot());
        assert_eq!(merged.to_string(), single.snapshot().to_string());
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("z.gauge").set(-4);
        reg.histogram("h").record(100);
        let s = reg.snapshot().to_string();
        let first = s.find("a.first").unwrap();
        let second = s.find("b.second").unwrap();
        assert!(first < second, "counters print in name order:\n{s}");
        assert!(s.contains("z.gauge"));
        assert!(s.contains("histogram"));
        assert_eq!(s, reg.snapshot().to_string());
    }
}
