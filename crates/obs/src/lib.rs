//! # fix-obs — deterministic tracing and unified metrics
//!
//! The observability layer of the Fix stack: one structured event
//! recorder and one metrics registry shared by the scheduler
//! (`fixpoint`), the serving layer (`fix-serve`), the persistence tier
//! (`fix-durable`), and the `BlockingOffload` adapter.
//!
//! ## The disabled-path contract
//!
//! Tracing is off by default, and the cost of a disabled
//! instrumentation site is exactly **one relaxed atomic load** of a
//! static flag — [`tracing_enabled`]. The disabled path reads no
//! clocks, touches no thread-local state, takes no locks, and allocates
//! nothing; this is what keeps the Fig. 7a hot paths (warm-memoized
//! ~800 ns, native ~3–4.5 µs) unregressed while every hot loop in the
//! stack carries permanent instrumentation. When tracing is on, each
//! thread appends compact fixed-size [`TraceEvent`] records to its own
//! bounded buffer; the only lock a recording thread takes is its own
//! buffer's uncontended mutex, contended only while
//! [`Recorder::drain`] collects results. For always-on production use,
//! [`TracingMode::Sampled`] records one of every *n* events per thread
//! (counted, never silently lost) so trace volume shrinks `n×` while
//! the disabled path stays the same single relaxed load.
//!
//! ## The virtual-vs-wall timestamp split
//!
//! Every event carries two timestamps and they are never mixed:
//!
//! * **`virt_us`** — the emitting layer's *virtual clock*. The serving
//!   layer's discrete-event simulation stamps its lifecycle events
//!   (admit/shed/dispatch/expire/complete, queue-depth samples) on
//!   virtual time, so for a fixed seed those events — and therefore the
//!   [`TraceSummary`] tables built from them — are **bit-identical**
//!   across runs, worker counts, and submitting backends.
//! * **`wall_ns`/`dur_ns`** — real elapsed time since the recorder
//!   epoch. Wall timestamps never appear in deterministic tables; they
//!   feed the Chrome trace-event export ([`Trace::to_chrome_json`],
//!   Perfetto-loadable) and the diagnostic latency histograms
//!   (fsync/snapshot/refault…), which are explicitly *not* pinned.
//!
//! Scheduler, durable, and offload events are wall-timing dependent
//! (steal counts, park cycles, group-commit batching), so
//! [`EventKind::deterministic`] excludes them from summaries: they are
//! Chrome-trace diagnostics. The deterministic surface is the serve
//! layer's lifecycle plus the registry metrics derived from virtual
//! quantities.
//!
//! ## Metrics
//!
//! The [`Registry`] names counters, gauges, and log-scale
//! [`LogHistogram`]s (the same fixed-bucket mechanics as
//! `fix_serve::LatencyHistogram`, which is this crate's histogram
//! re-exported). Snapshots merge commutatively — counters/gauges add,
//! histograms merge element-wise — so per-worker registries merged
//! equal one shared registry, sample for sample.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod hist;
mod metrics;
mod recorder;
mod summary;

pub use chrome::{parse_json, validate_chrome_trace, JsonValue};
pub use hist::LogHistogram;
pub use metrics::{global, Counter, Gauge, HistogramCell, MetricsSnapshot, Registry};
pub use recorder::{
    emit, emit_span, recorder, set_tracing, set_tracing_mode, tracing_enabled, tracing_mode,
    EventKind, Layer, Recorder, ThreadTrace, Trace, TraceEvent, TracingMode,
};
pub use summary::TraceSummary;
