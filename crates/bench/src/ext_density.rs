//! Extension experiment: ultra-high-density multitenancy (paper §6).
//!
//! Sweeps application arrival rates over one RAM pool and compares
//! admission with opaque peak-reservation slices (status quo) against
//! footprint-aware packing (Fix, which knows each stage's RAM before
//! it runs). The density gain tracks the workload's peak-to-average
//! footprint ratio.

use fix_cluster::{simulate_density_profiles, Admission, AppProfile};
use std::fmt::Write as _;

/// Runs the sweep and renders the table. Tenants follow a bursty
/// profile with deterministic per-tenant duration jitter (identical
/// profiles convoy their peaks, which hides the effect being measured).
pub fn run(n_apps: usize) -> String {
    let profiles: Vec<AppProfile> = (0..n_apps).map(AppProfile::bursty_jittered).collect();
    let mut out = String::new();
    writeln!(out, "== extension: ultra-high-density multitenancy ==").unwrap();
    writeln!(
        out,
        "{:>12} {:<16} {:>9} {:>9} {:>14} {:>13} {:>12}",
        "arrival µs",
        "admission",
        "admitted",
        "rejected",
        "peak resident",
        "peak RAM GiB",
        "efficiency"
    )
    .unwrap();
    for arrival_us in [4_000u64, 1_000, 250] {
        for (label, admission) in [
            ("peak slice", Admission::Reservation),
            ("footprint", Admission::FootprintAware),
        ] {
            let r = simulate_density_profiles(8 << 30, arrival_us, &profiles, admission);
            writeln!(
                out,
                "{:>12} {:<16} {:>9} {:>9} {:>14} {:>12.2} {:>11.0}%",
                arrival_us,
                label,
                r.admitted,
                r.rejected,
                r.peak_resident,
                r.peak_reserved_bytes as f64 / (1u64 << 30) as f64,
                r.reservation_efficiency_percent(),
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "(footprint-aware packing admits more tenants from the same pool;\n\
         its reservations are 100% used because stages declare exact needs)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_renders_both_models_at_every_rate() {
        let text = super::run(128);
        assert_eq!(text.matches("peak slice").count(), 3);
        // Three data rows; the footer sentence also mentions the word.
        assert_eq!(text.matches("footprint ").count(), 3);
    }
}
