//! Fig. 7b: a chain of 500 function invocations, client near or far.
//!
//! Fixpoint and Pheromone ship the whole chain's control flow in one
//! message; Ray resolves every dependency through the (possibly remote)
//! driver. Run on the simulated cluster.

use fix_baselines::{profiles, run_baseline, CostModel};
use fix_cluster::{run_fix, ClusterSetup, FixConfig, JobGraph, JobGraphBuilder, TaskId};
use fix_netsim::{NetConfig, NodeId, NodeSpec, Time};

/// One measured system at one client distance.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: String,
    /// End-to-end chain latency with a nearby client, µs.
    pub nearby_us: Time,
    /// End-to-end chain latency with a remote client (21.3 ms RTT), µs.
    pub remote_us: Time,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig7b {
    /// Chain length used.
    pub chain_len: usize,
    /// Rows: Fixpoint, Pheromone, Ray.
    pub rows: Vec<Row>,
}

fn chain_graph(n: usize) -> JobGraph {
    let mut b = JobGraphBuilder::new();
    let mut prev: Option<TaskId> = None;
    for _ in 0..n {
        let mut t = fix_cluster::small_task(1, 8);
        if let Some(p) = prev {
            t.deps.push(p);
        }
        prev = Some(b.task(t));
    }
    b.build()
}

fn setup(client_extra_us: Time) -> ClusterSetup {
    let client = NodeId(2);
    let net = NetConfig::default().with_extra_latency(client, client_extra_us);
    ClusterSetup {
        specs: vec![NodeSpec::default(); 3],
        net,
        workers: vec![NodeId(0), NodeId(1)],
        client: Some(client),
    }
}

/// Runs the figure for a chain of `n` invocations.
pub fn run(n: usize) -> Fig7b {
    let cost = CostModel::default();
    let graph = chain_graph(n);
    // Remote: 21.3 ms RTT like the paper; one-way extra beyond base.
    let distances = [0u64, 10_650 - 50];

    let mut fix = Vec::new();
    let mut pher = Vec::new();
    let mut ray = Vec::new();
    for extra in distances {
        let s = setup(extra);
        fix.push(run_fix(&s, &graph, &FixConfig::default()).makespan_us);
        pher.push(run_baseline(&s, &graph, &profiles::pheromone(&[NodeId(1)], &cost)).makespan_us);
        ray.push(run_baseline(&s, &graph, &profiles::ray_cps(NodeId(2), &cost)).makespan_us);
    }
    Fig7b {
        chain_len: n,
        rows: vec![
            Row {
                system: "Fixpoint".into(),
                nearby_us: fix[0],
                remote_us: fix[1],
            },
            Row {
                system: "Pheromone".into(),
                nearby_us: pher[0],
                remote_us: pher[1],
            },
            Row {
                system: "Ray".into(),
                nearby_us: ray[0],
                remote_us: ray[1],
            },
        ],
    }
}

impl std::fmt::Display for Fig7b {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 7b — chain of {} invocations (simulated cluster)",
            self.chain_len
        )?;
        writeln!(
            f,
            "{:<12} {:>16} {:>24}",
            "system", "nearby client", "remote client (21.3ms RTT)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>13.1} ms {:>21.1} ms",
                r.system,
                r.nearby_us as f64 / 1e3,
                r.remote_us as f64 / 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run(500);
        let get = |name: &str| fig.rows.iter().find(|r| r.system == name).unwrap();
        let fix = get("Fixpoint");
        let pher = get("Pheromone");
        let ray = get("Ray");

        // Paper: Fixpoint 5 ms / 25.7 ms; Pheromone 17.6 / 38.7; Ray 821 / 11700.
        assert!(fix.nearby_us < pher.nearby_us);
        assert!(pher.nearby_us < ray.nearby_us);
        // Remote: Fix/Pheromone pay ~1 extra RTT; Ray pays ~500.
        assert!(fix.remote_us < fix.nearby_us + 30_000);
        assert!(
            ray.remote_us > ray.nearby_us + 400 * 21_300,
            "ray remote {} nearby {}",
            ray.remote_us,
            ray.nearby_us
        );
        // Ray remote lands in the ~10 s regime (paper: 11.7 s).
        assert!(ray.remote_us > 8_000_000 && ray.remote_us < 20_000_000);
    }
}
