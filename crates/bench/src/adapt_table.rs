//! `adapt_table`: the static-vs-adaptive serving comparison for the
//! `figures` binary.
//!
//! One seed, one hostile flash-crowd scenario, two control planes:
//!
//! * **static** — the PR-5 configuration: a fixed driver pool,
//!   capacity-only admission (expressed in the adaptive engine as
//!   [`ScalerConfig::fixed`] + `admission: None`, which the engine's
//!   tests pin byte-identical to plain [`fix_serve::serve`]);
//! * **adaptive** — the same tenants under `fix-adapt`: provable-expiry
//!   admission pricing plus the hysteresis autoscaler.
//!
//! The comparison the table makes is the control plane's whole case:
//! the adaptive run achieves *strictly higher* deadline attainment at
//! *equal-or-lower* real work (the runtime's `procedures_run` counter).
//! The scenario is built so the work side is not luck: every request
//! kind cycles a bounded key space (`Fib{max_n}`, `SebsHtml{users}` —
//! never `Add`), the calm pre-spike phase covers every key in both
//! runs, and the SNF tenant is never shed in either run, so both
//! configurations evaluate exactly the same distinct-thunk set and the
//! adaptive one cannot win by quietly doing more (or less) real
//! computation.
//!
//! Deterministic by construction: both halves of the table come off the
//! virtual clock, and `procedures_run` counts memoized-distinct
//! evaluations of one fixed set — the rendered text is bit-identical
//! across runs and across inline vs. worker-pool runtimes.

use fix_adapt::{
    adaptive_serve, AdaptConfig, AdaptTenant, AdmissionPolicy, ClosedLoopSpec, ScalerConfig,
    SnfSpec,
};
use fix_serve::{ArrivalProcess, Micros, RequestKind, ServeReport, SloClass, TenantSpec};
use fixpoint::Runtime;

/// The hostile scenario both control planes face. `scale` stretches the
/// calm post-spike tail (1 → 60 ms, CI-quick; 5 → 300 ms — the longer
/// tail lets the full scale-down staircase play out); the spike window
/// itself is fixed so both scales fight the same crowd.
fn tenants() -> Vec<AdaptTenant> {
    vec![
        // The flash crowd: warm-dominated interactive traffic (the 32
        // fib keys all go cold→warm during the calm 20 ms) that jumps
        // three decades above the base rate for 20 ms.
        AdaptTenant::Open(
            TenantSpec::uniform_mix(
                "crowd",
                2,
                ArrivalProcess::FlashCrowd {
                    base_rps: 2_000.0,
                    spike_at_us: SPIKE_AT_US,
                    spike_len_us: SPIKE_LEN_US,
                    spike_rps: 3_500_000.0,
                },
                RequestKind::Fib { max_n: 32 },
            )
            .with_slo(SloClass::latency(3_000)),
        ),
        // A closed-loop client population: feedback traffic that
        // self-throttles while the crowd rages.
        AdaptTenant::Closed(ClosedLoopSpec {
            name: "portal".into(),
            weight: 1,
            clients: 8,
            think_mean_us: 2_000.0,
            mix: vec![(RequestKind::SebsHtml { users: 4 }, 1)],
            slo: SloClass::latency(8_000),
        }),
        // An SNF streaming pipeline: no deadline, so neither control
        // plane may shed it — its chained folds are identical work in
        // both runs.
        AdaptTenant::Snf(SnfSpec {
            name: "snf".into(),
            weight: 1,
            flows: 4,
            batch_period_us: 2_000,
            slo: SloClass::default(),
        }),
    ]
}

/// Spike window start (fixed across scales).
const SPIKE_AT_US: Micros = 20_000;
/// Spike window length (fixed across scales).
const SPIKE_LEN_US: Micros = 20_000;

/// The shared (tenant/queue/batch) half of both configurations.
fn base_config(scale: u32) -> AdaptConfig {
    AdaptConfig {
        seed: 2026,
        duration_us: 60_000 * scale.max(1) as Micros,
        batch: 8,
        queue_capacity: 16_384,
        batch_overhead_us: 1,
        inflight: 2,
        admission: None,
        scaler: ScalerConfig::fixed(STATIC_DRIVERS),
        tenants: tenants(),
    }
}

/// Drivers in the static pool (and the adaptive pool's floor).
const STATIC_DRIVERS: usize = 2;

/// The static baseline: `STATIC_DRIVERS` drivers forever, shed only at
/// queue capacity.
pub fn static_config(scale: u32) -> AdaptConfig {
    base_config(scale)
}

/// The adaptive control plane over the same scenario: admission pricing
/// on, pool scaling `STATIC_DRIVERS`..=6 with a 2 ms control loop.
pub fn adaptive_config(scale: u32) -> AdaptConfig {
    AdaptConfig {
        admission: Some(AdmissionPolicy::default()),
        scaler: ScalerConfig {
            min_drivers: STATIC_DRIVERS,
            max_drivers: 6,
            control_interval_us: 2_000,
            up_backlog_us: 400,
            down_backlog_us: 50,
            hold_ticks: 2,
        },
        ..base_config(scale)
    }
}

/// Both halves of the figure: each config run on its own fresh runtime,
/// with the real work that runtime performed.
pub struct AdaptFigure {
    /// The static baseline's (deterministic) report.
    pub static_report: ServeReport,
    /// The adaptive run's (deterministic) report.
    pub adaptive_report: ServeReport,
    /// Procedures the static run's runtime actually executed.
    pub static_procedures: u64,
    /// Procedures the adaptive run's runtime actually executed.
    pub adaptive_procedures: u64,
}

/// Runs both configurations on fresh inline runtimes.
pub fn run(scale: u32) -> AdaptFigure {
    run_with(scale, || Runtime::builder().build())
}

/// Runs both configurations on runtimes built by `make_rt` — the
/// conformance axis: any builder must render the identical figure.
pub fn run_with(scale: u32, make_rt: impl Fn() -> Runtime) -> AdaptFigure {
    let run_one = |cfg: &AdaptConfig| {
        let rt = make_rt();
        let report = adaptive_serve(&rt, cfg).expect("adapt figure run").serve;
        (report, rt.procedures_run())
    };
    let (static_report, static_procedures) = run_one(&static_config(scale));
    let (adaptive_report, adaptive_procedures) = run_one(&adaptive_config(scale));
    AdaptFigure {
        static_report,
        adaptive_report,
        static_procedures,
        adaptive_procedures,
    }
}

impl AdaptFigure {
    /// The one-line verdict under the tables.
    pub fn verdict(&self) -> String {
        format!(
            "attainment {:.3} -> {:.3}, procedures run {} -> {} ({})",
            self.static_report.attainment(),
            self.adaptive_report.attainment(),
            self.static_procedures,
            self.adaptive_procedures,
            if self.adaptive_procedures <= self.static_procedures {
                "no extra real work"
            } else {
                "MORE real work"
            },
        )
    }
}

impl std::fmt::Display for AdaptFigure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[static: {} drivers, capacity-only admission]",
            STATIC_DRIVERS
        )?;
        writeln!(f, "{}", self.static_report)?;
        writeln!(
            f,
            "[adaptive: {}..=6 drivers, provable-expiry admission]",
            STATIC_DRIVERS
        )?;
        writeln!(f, "{}", self.adaptive_report)?;
        write!(f, "{}", self.verdict())
    }
}

/// Renders the figure with its header.
pub fn table_text(scale: u32) -> String {
    format!(
        "Adapt — flash crowd vs. the control plane (seed 2026, spike \
         {}x for {} ms)\n{}",
        3_500_000 / 2_000,
        SPIKE_LEN_US / 1_000,
        run(scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_static_at_equal_or_lower_real_work() {
        let fig = run(1);
        // The headline claim: strictly higher deadline attainment…
        assert!(
            fig.adaptive_report.attainment() > fig.static_report.attainment(),
            "adaptive {:.3} must beat static {:.3}",
            fig.adaptive_report.attainment(),
            fig.static_report.attainment(),
        );
        // …at equal-or-lower real work.
        assert!(
            fig.adaptive_procedures <= fig.static_procedures,
            "adaptive ran {} procedures, static {}",
            fig.adaptive_procedures,
            fig.static_procedures,
        );
        // The static pool sheds the crowd the expensive way — requests
        // queue until their deadline lapses — while the adaptive
        // controller prices the provably-late out at the door and
        // serves everything it admits within deadline.
        assert!(fig.static_report.total_expired() > 0);
        assert!(fig.adaptive_report.total_rejected() > 0);
        assert_eq!(fig.adaptive_report.total_dropped(), 0);
        assert!(fig.adaptive_report.total_expired() < fig.static_report.total_expired());
        // The adaptive timeline scales up into the spike and back down
        // after it; the static timeline is empty.
        assert!(fig.adaptive_report.scaling.iter().any(|s| s.to > s.from));
        assert!(fig.adaptive_report.scaling.iter().any(|s| s.to < s.from));
        assert!(fig.static_report.scaling.is_empty());
        // The SNF pipeline was never shed by either control plane.
        for report in [&fig.static_report, &fig.adaptive_report] {
            let snf = &report.tenants[2];
            assert_eq!(snf.offered, snf.admitted, "snf must never shed");
            assert_eq!(snf.ok, snf.admitted, "snf folds must all complete");
        }
    }

    #[test]
    fn figure_is_bit_identical_across_runs_and_worker_pools() {
        let a = table_text(1);
        let b = table_text(1);
        assert_eq!(a, b, "same seed must print the same figure");
        let inline = run(1);
        let workers = run_with(1, || Runtime::builder().workers(4).build());
        assert_eq!(
            inline.to_string(),
            workers.to_string(),
            "a worker-pool runtime must render the identical figure"
        );
    }
}
