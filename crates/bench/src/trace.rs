//! `trace`: deterministic tracing of the serving workload, for the
//! `figures trace` subcommand.
//!
//! Runs the fixed-seed [`serve_report`](crate::serve_report) workload
//! with the event recorder enabled on three submitting backends — the
//! inline runtime, a 4-worker runtime, and a `BlockingOffload`-lifted
//! cluster client — and renders the **deterministic** per-layer summary
//! of each trace. The serve-layer lifecycle events ride the virtual
//! clock, so the three summaries (and the latency decomposition table)
//! are bit-identical: this module asserts that identity instead of just
//! claiming it, and the `figures trace` CI smoke pins the rendered
//! output run-to-run.
//!
//! Each backend's *full* trace — including the wall-clock scheduler,
//! durability, and offload diagnostics, which legitimately differ per
//! backend and per run — is exported as a Chrome trace-event JSON file
//! (loadable in Perfetto / `chrome://tracing`) and validated with the
//! crate's own parser before the run reports success.

use fix_core::api::BlockingOffload;
use fix_obs::{recorder, set_tracing, Trace, TraceSummary};
use fix_serve::{serve, ServeConfig, ServeReport};
use fixpoint::Runtime;
use std::path::Path;
use std::sync::Arc;

/// Serializes recorder use within this process (the recorder and the
/// tracing toggle are process-global, and tests run concurrently).
pub(crate) static TRACE_GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// One traced serve run: the report plus the drained trace.
fn traced_run<A>(rt: &A, cfg: &ServeConfig) -> (ServeReport, Trace)
where
    A: fix_core::api::SubmitApi + fix_core::api::InvocationApi + Send + Sync,
{
    recorder().clear();
    set_tracing(true);
    let report = serve(rt, cfg).expect("traced serve run");
    set_tracing(false);
    (report, recorder().drain())
}

/// Runs the traced serving workload on all three backends, writing one
/// Chrome trace JSON per backend under `out_dir`, and returns the
/// deterministic report (summary table, decomposition, identity
/// checks). Panics if any determinism property fails — this is the
/// assertion the CI smoke runs in release mode.
pub fn run(scale: u32, out_dir: &Path) -> String {
    run_with(&crate::serve_report::config(scale), out_dir)
}

/// [`run`] with an explicit configuration (smaller horizons for tests).
pub fn run_with(cfg: &ServeConfig, out_dir: &Path) -> String {
    let _guard = TRACE_GUARD.lock();

    // Baseline: the same workload with tracing off. The deterministic
    // serve tables must not move when tracing turns on.
    let plain = serve(&Runtime::builder().build(), cfg)
        .expect("untraced serve run")
        .to_string();

    let mut out = String::new();
    out.push_str(&format!(
        "Trace — deterministic serving trace, seed {} ({} tenants, 3 backends)\n",
        cfg.seed,
        cfg.tenants.len()
    ));

    let mut runs: Vec<(&str, ServeReport, Trace)> = Vec::new();
    {
        let rt = Runtime::builder().build();
        let (report, trace) = traced_run(&rt, cfg);
        runs.push(("runtime-inline", report, trace));
    }
    {
        let rt = Runtime::builder().workers(4).build();
        let (report, trace) = traced_run(&rt, cfg);
        runs.push(("runtime-workers4", report, trace));
    }
    {
        let cc = Arc::new(
            fix_cluster::ClusterClient::builder()
                .build()
                .expect("cluster client"),
        );
        let off = BlockingOffload::with_threads(cc, cfg.drivers);
        let (report, trace) = traced_run(&off, cfg);
        runs.push(("offload-cluster", report, trace));
    }

    let reference = TraceSummary::of(&runs[0].2);
    assert_eq!(
        reference.dropped(),
        0,
        "recorder capacity must hold the whole deterministic stream"
    );
    std::fs::create_dir_all(out_dir).expect("create trace output dir");
    for (name, report, trace) in &runs {
        assert_eq!(
            report.to_string(),
            plain,
            "{name}: tracing must not perturb the serve tables"
        );
        let summary = TraceSummary::of(trace);
        assert_eq!(
            summary.to_string(),
            reference.to_string(),
            "{name}: deterministic trace summary diverged across backends"
        );
        let json = trace.to_chrome_json();
        let events =
            fix_obs::validate_chrome_trace(&json).expect("exported Chrome trace must parse");
        assert!(events > 0, "{name}: Chrome trace must be non-empty");
        let path = out_dir.join(format!("serve-{name}.trace.json"));
        std::fs::write(&path, json).expect("write Chrome trace");
    }

    out.push_str("tracing-off vs tracing-on serve tables: identical on all backends\n");
    out.push_str("deterministic summaries: identical on all backends\n");
    out.push_str("chrome traces: exported and validated (one per backend)\n\n");
    out.push_str(&reference.to_string());
    out.push('\n');
    out.push_str(&runs[0].1.decomposition_table());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_report_is_deterministic() {
        // A miniature horizon: the full `run(1, ..)` report is what the
        // release-mode CI smoke exercises; in debug the same assertions
        // on a 20× shorter run keep the suite fast.
        let cfg = ServeConfig {
            duration_us: 10_000,
            ..crate::serve_report::config(1)
        };
        let dir = tempfile::tempdir().unwrap();
        let a = run_with(&cfg, dir.path());
        let b = run_with(&cfg, dir.path());
        assert_eq!(a, b, "figures trace must render identically run-to-run");
        assert!(a.contains("serve.admit"));
        assert!(a.contains("latency decomposition"));
        // The per-backend Chrome traces landed on disk.
        for name in ["runtime-inline", "runtime-workers4", "offload-cluster"] {
            let p = dir.path().join(format!("serve-{name}.trace.json"));
            let json = std::fs::read_to_string(p).unwrap();
            assert!(fix_obs::validate_chrome_trace(&json).unwrap() > 0);
        }
    }
}
