//! `fix-bench`: regenerates every table and figure in the paper's
//! evaluation.
//!
//! One module per experiment; the `figures` binary prints them, and the
//! Criterion benches under `benches/` measure the real-runtime pieces.
//! See EXPERIMENTS.md for paper-vs-measured comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt_table;
pub mod calibrate;
pub mod comparators;
pub mod ext_billing;
pub mod ext_density;
pub mod ext_gc;
pub mod fig10;
pub mod fig7a;
pub mod fig7b;
pub mod fig8a;
pub mod fig8b;
pub mod fig9;
pub mod recover;
pub mod route;
pub mod serve_report;
pub mod trace;
