//! `calibrate`: measures the real per-kind procedure paths and compares
//! them against the shared [`fix_core::calibration::SERVICE_COSTS`]
//! table.
//!
//! The calibration constants anchor every virtual clock in the repo —
//! the serving layer's service model and the cluster/baseline flat task
//! charge — but they were hand-set from the paper's Fig. 7a scale. This
//! module closes the ROADMAP's "derive the constants from *measured*
//! procedure runtimes" item the honest way: it does not overwrite the
//! table (that would make every deterministic table machine-dependent),
//! it *audits* it — timing the warm and cold paths of each request kind
//! on a real `fixpoint::Runtime` and printing measured-vs-table rows,
//! with a test pinning that the table stays within an order of
//! magnitude of measurement on the release path.
//!
//! Measurements use the same request factory the serving layer mints
//! through, so the timed path is exactly the served path: apply → eval
//! on content-addressed thunks, memoization and all.

use fix_serve::{ArrivalProcess, RequestFactory, RequestKind, TenantSpec};
use fixpoint::Runtime;
use std::fmt;
use std::time::Instant;

/// One audited constant: the table's modeled value next to the
/// wall-clock measurement of the path it models.
pub struct CalibrationRow {
    /// Which path (and which table constants) the row audits.
    pub name: &'static str,
    /// The modeled cost from `SERVICE_COSTS`, in µs.
    pub modeled_us: f64,
    /// The measured median, in µs.
    pub measured_us: f64,
}

impl CalibrationRow {
    /// How far the table sits from measurement: `max(m/t, t/m)`, so 1.0
    /// is a perfect match and 10.0 is exactly one order of magnitude.
    pub fn ratio(&self) -> f64 {
        if self.modeled_us <= 0.0 || self.measured_us <= 0.0 {
            return f64::INFINITY;
        }
        (self.modeled_us / self.measured_us).max(self.measured_us / self.modeled_us)
    }
}

/// The full audit: one row per modeled path.
pub struct CalibrationReport {
    /// The audited rows.
    pub rows: Vec<CalibrationRow>,
}

impl fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "calibration audit: SERVICE_COSTS vs measured procedure paths \
             (fixpoint::Runtime, medians)"
        )?;
        writeln!(
            f,
            "{:<26} {:>12} {:>12} {:>8}",
            "path", "table µs", "measured µs", "ratio"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} {:>12.1} {:>12.1} {:>7.1}x",
                row.name,
                row.modeled_us,
                row.measured_us,
                row.ratio()
            )?;
        }
        Ok(())
    }
}

/// Median of a set of wall-clock samples, in µs.
fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Times one evaluation, in µs.
fn time_eval(rt: &Runtime, thunk: fix_core::handle::Handle) -> f64 {
    let start = Instant::now();
    rt.eval(thunk).expect("calibration thunk evaluates");
    start.elapsed().as_secs_f64() * 1e6
}

/// Runs the audit: `samples` cold (and warm) timings per kind.
///
/// Cold samples use distinct requests (every `Add`, needle, and user is
/// new to the runtime); warm samples repeat an already-memoized
/// request, which is the Fig. 7a warm-memoized path.
pub fn run(samples: usize) -> CalibrationReport {
    let samples = samples.max(3);
    let costs = fix_core::calibration::SERVICE_COSTS;
    let rt = Runtime::builder().build();
    const FIB_N: u64 = 8;
    let tenants = vec![TenantSpec {
        name: "calibrate".into(),
        weight: 1,
        arrivals: ArrivalProcess::Uniform { period_us: 1 },
        mix: vec![
            (RequestKind::Add, 1),
            (RequestKind::Fib { max_n: FIB_N + 1 }, 1),
            (
                RequestKind::Wordcount {
                    shard_bytes: 16 << 10,
                },
                1,
            ),
            (RequestKind::SebsHtml { users: u64::MAX }, 1),
        ],
        slo: fix_serve::SloClass::default(),
    }];
    let factory = RequestFactory::install(&rt, &tenants, 0xCA11B).expect("factory installs");
    let mut rows = Vec::new();
    let mut seq = 0u64;
    let mut mint = |kind: RequestKind| {
        seq += 1;
        factory.mint(&rt, 0, seq, kind).expect("mint succeeds")
    };

    // Cold native invocation: every Add argument pair is distinct.
    let cold_adds: Vec<f64> = (0..samples)
        .map(|_| time_eval(&rt, mint(RequestKind::Add)))
        .collect();
    rows.push(CalibrationRow {
        name: "native cold (add)",
        modeled_us: costs.native_cold_us as f64,
        measured_us: median_us(cold_adds),
    });

    // Warm repeat: one thunk, evaluated again and again — pure
    // relation-cache hits after the first.
    let warm_thunk = mint(RequestKind::Add);
    rt.eval(warm_thunk).expect("warm-up");
    let warm: Vec<f64> = (0..samples.max(9))
        .map(|_| time_eval(&rt, warm_thunk))
        .collect();
    rows.push(CalibrationRow {
        name: "warm memoized hit",
        modeled_us: costs.warm_hit_us as f64,
        measured_us: median_us(warm),
    });

    // The FixVM guest chain: fib(FIB_N) on a cold runtime per sample
    // (memoization makes repeats warm, so each sample gets a fresh
    // runtime and factory — the model is vm_start + n·vm_step).
    let fib: Vec<f64> = (0..samples)
        .map(|_| {
            let rt = Runtime::builder().build();
            let factory = RequestFactory::install(&rt, &tenants, 0xF1B).expect("factory installs");
            let thunk = factory
                .mint(&rt, 0, FIB_N, RequestKind::Fib { max_n: FIB_N + 1 })
                .expect("mint fib");
            time_eval(&rt, thunk)
        })
        .collect();
    rows.push(CalibrationRow {
        name: "vm guest (fib 8)",
        modeled_us: (costs.vm_start_us + costs.vm_step_us * FIB_N) as f64,
        measured_us: median_us(fib),
    });

    // Count-string over a 16 KiB shard, distinct needle per sample.
    let shard_bytes = 16u64 << 10;
    let wc: Vec<f64> = (0..samples)
        .map(|_| {
            time_eval(
                &rt,
                mint(RequestKind::Wordcount {
                    shard_bytes: shard_bytes as usize,
                }),
            )
        })
        .collect();
    rows.push(CalibrationRow {
        name: "wordcount (16 KiB shard)",
        modeled_us: (costs.wordcount_base_us + shard_bytes / costs.wordcount_bytes_per_us) as f64,
        measured_us: median_us(wc),
    });

    // The SeBS dynamic-html render, distinct user per sample.
    let html: Vec<f64> = (0..samples)
        .map(|_| time_eval(&rt, mint(RequestKind::SebsHtml { users: u64::MAX })))
        .collect();
    rows.push(CalibrationRow {
        name: "sebs dynamic-html cold",
        modeled_us: costs.sebs_html_cold_us as f64,
        measured_us: median_us(html),
    });

    CalibrationReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pin behind the ROADMAP item: the table must stay within an
    /// order of magnitude of what the real runtime measures, row by
    /// row. The honest 10× bound applies to release builds (CI runs
    /// this test in release alongside the serving smoke); debug builds
    /// run the unoptimized interpreter on shared, possibly contended
    /// runners, so the default `cargo test` pass only sanity-checks the
    /// rows instead of flaking tier 1 on machine load.
    #[test]
    fn table_is_within_an_order_of_magnitude_of_measurement() {
        let tolerance = if cfg!(debug_assertions) {
            1_000.0
        } else {
            10.0
        };
        let report = run(5);
        assert_eq!(report.rows.len(), 5);
        for row in &report.rows {
            assert!(
                row.ratio() <= tolerance,
                "{}: table {:.1} µs vs measured {:.1} µs is {:.1}x apart (> {tolerance}x)\n{report}",
                row.name,
                row.modeled_us,
                row.measured_us,
                row.ratio(),
            );
        }
    }
}
