//! Fig. 8a: late binding vs "internal" I/O for one-off functions.
//!
//! 1024 invocations, each needing one small input from a storage service
//! 150 ms away, on a 32-core / 64 GiB server. Fixpoint fetches inputs
//! *before* committing cores and RAM; the "internal I/O" ablation claims
//! resources first (with the paper's 200-way core oversubscription) and
//! stalls them during the fetch.

use fix_cluster::{run_fix, Binding, ClusterSetup, FixConfig, RunReport};
use fix_netsim::{NetConfig, NodeId, NodeSpec, Time, MS};
use fix_workloads::wordcount::{fig8a_graph, Fig8aParams};

/// One system's row in the paper's Fig. 8a table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub name: String,
    /// User CPU time (core-µs converted to wall-equivalent ms).
    pub user_ms: f64,
    /// System CPU time, ms.
    pub system_ms: f64,
    /// I/O + wait time, ms.
    pub io_wait_ms: f64,
    /// End-to-end duration, ms.
    pub total_ms: f64,
    /// Task throughput.
    pub tasks_per_s: f64,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig8a {
    /// Fix (late binding) and the internal-I/O ablation.
    pub rows: Vec<Row>,
}

const WORKER: NodeId = NodeId(0);
const STORAGE: NodeId = NodeId(1);

fn setup(worker_cores: u32, storage_latency: Time) -> ClusterSetup {
    ClusterSetup {
        specs: vec![
            NodeSpec {
                cores: worker_cores,
                ram_bytes: 64 << 30,
            },
            NodeSpec::default(),
        ],
        net: NetConfig::default().with_extra_latency(STORAGE, storage_latency),
        workers: vec![WORKER],
        client: None,
    }
}

fn to_row(name: &str, report: &RunReport, cores: u64) -> Row {
    // Express CPU states as wall-equivalent time on the node (divide
    // core-µs by core count), matching the paper's per-run table.
    Row {
        name: name.into(),
        user_ms: report.cpu.user_core_us as f64 / cores as f64 / 1e3,
        system_ms: report.cpu.system_core_us as f64 / cores as f64 / 1e3,
        io_wait_ms: report.cpu.waiting_core_us as f64 / cores as f64 / 1e3,
        total_ms: report.makespan_us as f64 / 1e3,
        tasks_per_s: report.throughput(),
    }
}

/// Runs the figure with the paper's parameters (scaled by `n_tasks`).
pub fn run(n_tasks: usize) -> Fig8a {
    let params = Fig8aParams {
        n_tasks,
        storage: STORAGE,
        ..Fig8aParams::default()
    };
    let graph = fig8a_graph(&params);

    // Fixpoint: late binding, 32 real cores.
    let fix = run_fix(&setup(32, 150 * MS), &graph, &FixConfig::default());

    // Internal I/O: claim-then-fetch, cores oversubscribed to 200 (the
    // paper's configuration); RAM is NOT oversubscribed, so at most 64
    // one-GB invocations hold slices concurrently.
    let internal = run_fix(
        &setup(200, 150 * MS),
        &graph,
        &FixConfig {
            binding: Binding::Early,
            ..FixConfig::default()
        },
    );

    Fig8a {
        rows: vec![
            to_row("Fix", &fix, 32),
            to_row("Fix (with \"internal\" I/O)", &internal, 200),
        ],
    }
}

impl std::fmt::Display for Fig8a {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 8a — 1024 one-off invocations, inputs behind 150 ms storage"
        )?;
        writeln!(
            f,
            "{:<28} {:>9} {:>9} {:>10} {:>9} {:>12}",
            "", "user", "system", "I/O+wait", "total", "throughput"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>6.0} ms {:>6.0} ms {:>7.0} ms {:>6.0} ms {:>7.0} task/s",
                r.name, r.user_ms, r.system_ms, r.io_wait_ms, r.total_ms, r.tasks_per_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_binding_is_many_times_faster() {
        let fig = run(1024);
        let fix = &fig.rows[0];
        let internal = &fig.rows[1];
        let speedup = internal.total_ms / fix.total_ms;
        // Paper: 8.7×. Accept a generous band around it.
        assert!(
            (4.0..20.0).contains(&speedup),
            "speedup {speedup:.1} (fix {:.0} ms, internal {:.0} ms)",
            fix.total_ms,
            internal.total_ms
        );
        // Internal I/O spends its life waiting (paper: 2621 of 2638 ms).
        assert!(internal.io_wait_ms > 10.0 * internal.user_ms);
        // Fix total is in the few-hundred-ms regime (paper: 268 ms).
        assert!(fix.total_ms > 100.0 && fix.total_ms < 1_000.0);
        // Throughput ratio is paper-like (3827 vs 388 tasks/s ≈ 10×).
        assert!(fix.tasks_per_s > 3.0 * internal.tasks_per_s);
    }
}
