//! Comparator table: Fix and every baseline costed side-by-side from
//! one generic workload (the open ROADMAP item from PR 2).
//!
//! The One Fix API makes each backend interchangeable, so the same
//! count-string map-reduce — written once against the traits — runs on
//! the Fix cluster engine ([`fix_cluster::ClusterClient`]) and under
//! every baseline [`Profile`] via
//! [`fix_baselines::BaselineEvaluator`], and the resulting
//! [`RunReport`]s drop into one table. Results are asserted
//! bit-identical across rows (content addressing guarantees it); only
//! the *costs* differ.

use fix_baselines::{profiles, BaselineEvaluator, CostModel, Profile};
use fix_cluster::{ClusterClient, RunReport};
use fix_core::api::ConcurrentApi;
use fix_netsim::NodeId;
use fix_workloads::wordcount::{run_wordcount_fix, store_shards};

/// One system's row.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub name: String,
    /// The workload's answer on this backend (must agree everywhere).
    pub total: u64,
    /// Aggregated simulated cost across the workload's cluster runs.
    pub makespan_us: u64,
    /// Tasks executed in simulation.
    pub tasks: u64,
    /// Bytes moved over the simulated network.
    pub bytes_moved: u64,
}

/// The completed table.
#[derive(Debug, Clone)]
pub struct Comparators {
    /// Fix first, then the baseline profiles.
    pub rows: Vec<Row>,
    /// Workload scale, for the header.
    pub n_shards: usize,
    /// Shard size in bytes, for the header.
    pub shard_bytes: usize,
}

/// Corpus seed: fixed so every row sees bit-identical shards.
const SEED: u64 = 11;

fn run_workload<R: ConcurrentApi>(
    rt: &R,
    n_shards: usize,
    shard_bytes: usize,
    reports: impl Fn() -> Vec<RunReport>,
    name: &str,
) -> Row {
    let shards = store_shards(rt, SEED, n_shards, shard_bytes);
    let total = run_wordcount_fix(rt, &shards, b"of").expect("workload runs");
    let rs = reports();
    Row {
        name: name.into(),
        total,
        makespan_us: rs.iter().map(|r| r.makespan_us).sum(),
        tasks: rs.iter().map(|r| r.tasks_run).sum(),
        bytes_moved: rs.iter().map(|r| r.bytes_moved).sum(),
    }
}

/// The baseline profiles worth a row, over the default 10-worker setup.
fn baseline_profiles() -> Vec<Profile> {
    let cost = CostModel::default();
    let workers: Vec<NodeId> = (0..10).map(NodeId).collect();
    vec![
        profiles::openwhisk(&workers, &cost),
        profiles::ray_cps(workers[0], &cost),
        profiles::ray_blocking(workers[0], &cost),
        profiles::pheromone(&workers, &cost),
        profiles::faasm(&cost),
    ]
}

/// Runs the comparator table at the given workload scale.
pub fn run(n_shards: usize, shard_bytes: usize) -> Comparators {
    let mut rows = Vec::new();

    let cc = ClusterClient::builder().build().expect("cluster client");
    rows.push(run_workload(
        &cc,
        n_shards,
        shard_bytes,
        || cc.reports(),
        "Fix (cluster engine)",
    ));

    for profile in baseline_profiles() {
        let name = profile.name.clone();
        let rb = BaselineEvaluator::builder()
            .profile(profile)
            .build()
            .expect("baseline evaluator");
        rows.push(run_workload(
            &rb,
            n_shards,
            shard_bytes,
            || rb.reports(),
            &name,
        ));
    }

    let expected = rows[0].total;
    for r in &rows {
        assert_eq!(
            r.total, expected,
            "backend '{}' disagrees on the workload result",
            r.name
        );
    }
    Comparators {
        rows,
        n_shards,
        shard_bytes,
    }
}

impl std::fmt::Display for Comparators {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Comparators — count-string map-reduce over the One Fix API \
             ({} shards × {} KiB, identical result {} on every backend)",
            self.n_shards,
            self.shard_bytes / 1024,
            self.rows.first().map(|r| r.total).unwrap_or(0),
        )?;
        writeln!(
            f,
            "{:<28} {:>12} {:>8} {:>14}",
            "system", "sim time", "tasks", "data moved"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>10.1} ms {:>8} {:>10.2} MiB",
                r.name,
                r.makespan_us as f64 / 1e3,
                r.tasks,
                r.bytes_moved as f64 / (1 << 20) as f64,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_beats_every_baseline_and_all_agree() {
        let table = run(8, 8 << 10);
        assert_eq!(table.rows.len(), 6);
        let fix = &table.rows[0];
        assert!(fix.tasks > 0, "fix row must have simulated tasks");
        for b in &table.rows[1..] {
            assert!(
                fix.makespan_us < b.makespan_us,
                "Fix ({} µs) should undercut {} ({} µs)",
                fix.makespan_us,
                b.name,
                b.makespan_us
            );
        }
    }
}
