//! `route`: memoization-affinity routing vs the placement baselines.
//!
//! The dispatcher's pitch is that content-addressed requests make
//! cache-aware placement *information rather than a heuristic*: the
//! front-end computes the root handle before any node is involved, so
//! rendezvous hashing on that handle sends repeats where their results
//! already live. This module measures exactly that, twice:
//!
//! * **policy table** — the same seeded multi-tenant workload dispatched
//!   across the same nodes under [`RoutingPolicy::Affinity`],
//!   [`RoutingPolicy::RoundRobin`], and [`RoutingPolicy::Random`];
//!   affinity's warm-hit rate is the win, spills are its cost;
//! * **recovery window** — the same node killed at the same instant,
//!   brought back once as a [`RestartKind::Warm`] log-reopen and once as
//!   a [`RestartKind::Cold`] empty replacement; the window is the
//!   virtual time from restart to the node's first warm placement.
//!
//! Every number is a pure function of the virtual clock — bit-identical
//! across runs — but the recovery half populates real durable
//! directories, so (like `trace`) this table is *not* part of
//! `figures all`; run `figures route` explicitly.

use fix_dispatch::{
    dispatch, DispatchConfig, DispatchOutcome, FaultPlan, NodeStorage, RestartKind, RoutingPolicy,
};
use fix_serve::{ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
use std::fmt;

/// One policy's row in the comparison table.
pub struct PolicyRow {
    /// The policy's display label.
    pub policy: &'static str,
    /// Placements that found their thunk already memoized on the node.
    pub warm_hits: u64,
    /// Placements that had to run the procedure cold.
    pub cold_misses: u64,
    /// Requests diverted off their rendezvous node by load (affinity
    /// only; the baselines never consult the queue depths).
    pub spilled: u64,
    /// Requests served within their deadline, summed over nodes.
    pub served: u64,
    /// Requests expired in queue, summed over nodes.
    pub expired: u64,
    /// warm_hits / (warm_hits + cold_misses), as a percentage.
    pub hit_pct: f64,
}

/// The routing comparison plus the warm-vs-cold recovery windows.
pub struct RouteReport {
    /// Nodes behind the dispatcher in the policy comparison.
    pub nodes: usize,
    /// One row per routing policy, affinity first.
    pub rows: Vec<PolicyRow>,
    /// The affinity run's full serve report (tenant + node tables).
    pub affinity_tables: String,
    /// Virtual µs from warm restart to the node's first warm placement.
    pub warm_window_us: u64,
    /// Same window when the node comes back as an empty replacement.
    pub cold_window_us: u64,
}

impl fmt::Display for RouteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "route — placement policy vs memoization hit rate \
             ({} nodes, same seed; virtual clock, deterministic)",
            self.nodes
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "policy", "warm", "cold", "hit%", "served", "expired", "spill"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>7.1}% {:>8} {:>8} {:>7}",
                r.policy, r.warm_hits, r.cold_misses, r.hit_pct, r.served, r.expired, r.spilled
            )?;
        }
        let base = self
            .rows
            .iter()
            .skip(1)
            .map(|r| r.hit_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        writeln!(
            f,
            "affinity hit-rate delta over best baseline: {:+.1} points",
            self.rows[0].hit_pct - base
        )?;
        writeln!(f)?;
        writeln!(f, "affinity run, per-tenant and per-node:")?;
        writeln!(f, "{}", self.affinity_tables)?;
        writeln!(
            f,
            "recovery window (restart → first warm placement on the node):"
        )?;
        writeln!(f, "{:<18} {:>12}", "restart", "window µs")?;
        writeln!(f, "{:<18} {:>12}", "warm (log reopen)", self.warm_window_us)?;
        writeln!(
            f,
            "{:<18} {:>12}",
            "cold (replacement)", self.cold_window_us
        )
    }
}

/// The fixed-seed workload behind both halves: a repeat-heavy mix
/// (small Fib and SeBS key spaces) where memoization placement has
/// something to win, plus a bursty tenant so the kill in the recovery
/// half lands on a stranded backlog. `scale` stretches the horizon.
pub fn base_config(scale: u32) -> ServeConfig {
    ServeConfig {
        seed: 17,
        duration_us: 60_000 * scale as u64,
        drivers: 1, // per node
        batch: 8,
        queue_capacity: 64,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec::uniform_mix(
                "fib",
                2,
                ArrivalProcess::Poisson { rate_rps: 2500.0 },
                RequestKind::Fib { max_n: 6 },
            ),
            TenantSpec::uniform_mix(
                "renders",
                1,
                ArrivalProcess::Uniform { period_us: 500 },
                RequestKind::SebsHtml { users: 3 },
            ),
            TenantSpec::uniform_mix(
                "bursty",
                1,
                ArrivalProcess::Bursts {
                    period_us: 19_900,
                    burst: 48,
                },
                RequestKind::Wordcount { shard_bytes: 4096 },
            ),
        ],
    }
}

fn policy_config(scale: u32, nodes: usize, policy: RoutingPolicy) -> DispatchConfig {
    DispatchConfig {
        base: base_config(scale),
        nodes,
        policy,
        spill_margin: 16,
        storage: NodeStorage::Memory,
        fault: None,
    }
}

fn summarize(policy: &'static str, outcome: &DispatchOutcome) -> PolicyRow {
    let nodes = &outcome.report.nodes;
    let sum = |f: fn(&fix_serve::NodeReport) -> u64| nodes.iter().map(f).sum();
    PolicyRow {
        policy,
        warm_hits: sum(|n| n.warm_hits),
        cold_misses: sum(|n| n.cold_misses),
        spilled: sum(|n| n.spilled_away),
        served: sum(|n| n.served),
        expired: sum(|n| n.expired),
        hit_pct: outcome.hit_rate() * 100.0,
    }
}

/// One faulted run: kill node 1 mid-burst, bring it back per `restart`,
/// and return the virtual recovery window.
fn recovery_window(scale: u32, restart: RestartKind) -> u64 {
    let dir = tempfile::tempdir().expect("tempdir");
    let cfg = DispatchConfig {
        base: base_config(scale),
        nodes: 3,
        policy: RoutingPolicy::Affinity,
        spill_margin: 16,
        storage: NodeStorage::Durable(dir.path().to_path_buf()),
        fault: Some(FaultPlan {
            node: 1,
            kill_at_us: 20_000,
            restart_at_us: 30_000,
            restart,
        }),
    };
    let outcome = dispatch(&cfg).expect("faulted dispatch run");
    outcome.assert_accounting_closure();
    outcome
        .recovery_window_us
        .expect("the restarted node must re-earn a warm placement")
}

/// Runs both halves and assembles the report.
pub fn run(scale: u32, nodes: usize) -> RouteReport {
    let policies = [
        ("affinity", RoutingPolicy::Affinity),
        ("round-robin", RoutingPolicy::RoundRobin),
        ("random", RoutingPolicy::Random),
    ];
    let mut rows = Vec::with_capacity(policies.len());
    let mut affinity_tables = String::new();
    for (label, policy) in policies {
        let outcome = dispatch(&policy_config(scale, nodes, policy)).expect("dispatch run");
        outcome.assert_accounting_closure();
        if policy == RoutingPolicy::Affinity {
            affinity_tables = outcome.report.to_string();
        }
        rows.push(summarize(label, &outcome));
    }
    RouteReport {
        nodes,
        rows,
        affinity_tables,
        warm_window_us: recovery_window(scale, RestartKind::Warm),
        cold_window_us: recovery_window(scale, RestartKind::Cold),
    }
}

/// Renders the table with its header.
pub fn table_text(scale: u32, nodes: usize) -> String {
    run(scale, nodes).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_table_is_deterministic_and_affinity_wins() {
        let report = run(1, 4);
        let affinity = &report.rows[0];
        assert_eq!(affinity.policy, "affinity");
        for baseline in &report.rows[1..] {
            assert!(
                affinity.hit_pct > baseline.hit_pct,
                "affinity ({:.1}%) must beat {} ({:.1}%)",
                affinity.hit_pct,
                baseline.policy,
                baseline.hit_pct
            );
        }
        assert!(
            report.warm_window_us < report.cold_window_us,
            "a log reopen ({} µs) must re-warm faster than an empty \
             replacement ({} µs)",
            report.warm_window_us,
            report.cold_window_us
        );
        assert_eq!(
            table_text(1, 4),
            report.to_string(),
            "same seed must print the same table"
        );
    }
}
