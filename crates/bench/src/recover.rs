//! `recover`: cold start vs. warm restart, per log size.
//!
//! The durable tier's pitch is that restart cost becomes an *open* cost
//! (index build + relation replay; object bytes fault in lazily), and
//! first-request latency on a warm restart becomes a cache hit plus a
//! disk fault instead of a recomputation. This module measures exactly
//! that, at three log sizes: populate a durable store with `n` memoized
//! invocations, drop it, then time
//!
//! * **cold start** — a fresh in-memory runtime evaluating request #1
//!   from scratch (the recomputation the log makes unnecessary);
//! * **replay** — `DurableStore::open` over the populated directory
//!   (scan + index build + relation replay, no object bytes loaded);
//! * **warm restart** — the recovered runtime serving request #1: a
//!   memoization hit plus one disk fault for the result bytes.
//!
//! Wall-clock by nature (like `calibrate`), so it is *not* part of
//! `figures all`; run `figures recover` explicitly.

use fix_core::api::{InvocationApi, ObjectApi};
use fix_core::data::Blob;
use fix_core::limits::ResourceLimits;
use fix_durable::{DurableOptions, DurableStore, FsyncPolicy};
use fixpoint::Runtime;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// The result blob size each invocation produces: comfortably past the
/// literal bound, so every result is stored (and faulted) for real.
const RESULT_BYTES: usize = 1024;

/// One measured log size.
pub struct RecoverRow {
    /// Memoized invocations in the log.
    pub n: usize,
    /// Log size on disk at open, in bytes.
    pub log_bytes: u64,
    /// Relations replayed at open.
    pub replayed_relations: u64,
    /// Objects indexed (not loaded) at open.
    pub replayed_nodes: u64,
    /// Wall time of `DurableStore::open` (scan + index + replay), µs.
    pub replay_us: f64,
    /// Cold first-request latency: fresh runtime, full recomputation, µs.
    pub cold_first_us: f64,
    /// Warm first-request latency: memoization hit + one disk fault, µs.
    pub warm_first_us: f64,
}

/// The sweep across log sizes.
pub struct RecoverReport {
    /// One row per populated size.
    pub rows: Vec<RecoverRow>,
}

impl fmt::Display for RecoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recovery: cold start vs warm restart by log size \
             (fix-durable, wall-clock)"
        )?;
        writeln!(
            f,
            "{:>8} {:>12} {:>8} {:>8} {:>12} {:>14} {:>14}",
            "requests", "log bytes", "nodes", "rels", "replay µs", "cold 1st µs", "warm 1st µs"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>12} {:>8} {:>8} {:>12.1} {:>14.1} {:>14.1}",
                r.n,
                r.log_bytes,
                r.replayed_nodes,
                r.replayed_relations,
                r.replay_us,
                r.cold_first_us,
                r.warm_first_us,
            )?;
        }
        Ok(())
    }
}

/// Registers the measured procedure: expand a u64 seed into a
/// `RESULT_BYTES` blob with a little arithmetic per byte (enough work
/// that a recomputation is visibly more than a disk fault).
fn register_expand<R: InvocationApi>(rt: &R) -> fix_core::handle::Handle {
    rt.register_native(
        "bench/recover-expand",
        Arc::new(|ctx| {
            let seed = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let mut out = Vec::with_capacity(RESULT_BYTES);
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            for _ in 0..RESULT_BYTES {
                // 64 mixing rounds per byte: a procedure whose
                // recomputation visibly costs more than a disk fault.
                for _ in 0..64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                }
                out.push(x as u8);
            }
            ctx.host.create_blob(out)
        }),
    )
}

fn mint<R: InvocationApi + ObjectApi>(
    rt: &R,
    proc_handle: fix_core::handle::Handle,
    seed: u64,
) -> fix_core::handle::Handle {
    rt.apply(
        ResourceLimits::default_limits(),
        proc_handle,
        &[rt.put_blob(Blob::from_u64(seed))],
    )
    .expect("apply")
}

/// Runs the sweep at the given sizes (three by convention).
pub fn run(sizes: &[usize]) -> RecoverReport {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let dir = tempfile::tempdir().expect("tempdir");
        let options = DurableOptions {
            fsync: FsyncPolicy::EveryN(256),
            ..DurableOptions::default()
        };

        // Populate: n memoized invocations, persisted and flushed.
        {
            let durable = DurableStore::open(dir.path(), options).expect("open");
            let rt = Runtime::builder().durable(durable).build();
            let expand = register_expand(&rt);
            for seed in 0..n as u64 {
                let thunk = mint(&rt, expand, seed);
                rt.eval(thunk).expect("populate eval");
            }
            rt.durable().expect("durable").flush().expect("flush");
        }
        let log_bytes = std::fs::metadata(dir.path().join("log.fixlog"))
            .map(|m| m.len())
            .unwrap_or(0);

        // Cold start: recompute request #1 from nothing.
        let cold_first_us = {
            let rt = Runtime::builder().build();
            let expand = register_expand(&rt);
            let thunk = mint(&rt, expand, 0);
            let t = Instant::now();
            let result = rt.eval(thunk).expect("cold eval");
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert!(rt.get_blob(result).is_ok());
            us
        };

        // Replay: open cost over the populated directory.
        let t = Instant::now();
        let durable = DurableStore::open(dir.path(), options).expect("reopen");
        let replay_us = t.elapsed().as_secs_f64() * 1e6;
        let stats = durable.stats();

        // Warm restart: request #1 is a memoization hit + one fault.
        let warm_first_us = {
            let rt = Runtime::builder().durable(durable).build();
            let expand = register_expand(&rt);
            let thunk = mint(&rt, expand, 0);
            let t = Instant::now();
            let result = rt.eval(thunk).expect("warm eval");
            let blob = rt.get_blob(result).expect("warm fault");
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(blob.len(), RESULT_BYTES);
            assert_eq!(
                rt.procedures_run(),
                0,
                "the warm first request must be served from the log"
            );
            let d = rt.durable().expect("durable");
            assert!(d.stats().faults >= 1, "the result bytes came from disk");
            us
        };

        rows.push(RecoverRow {
            n,
            log_bytes,
            replayed_relations: stats.replayed_relations,
            replayed_nodes: stats.replayed_nodes,
            replay_us,
            cold_first_us,
            warm_first_us,
        });
    }
    RecoverReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_restart_serves_from_the_log() {
        let report = run(&[24]);
        let row = &report.rows[0];
        assert_eq!(row.n, 24);
        assert!(row.log_bytes > 24 * RESULT_BYTES as u64);
        assert!(row.replayed_relations > 0);
        // n results + n seed... seeds are literals; at least the n
        // result blobs and the application trees are indexed.
        assert!(row.replayed_nodes >= 24);
        assert!(row.replay_us > 0.0 && row.cold_first_us > 0.0 && row.warm_first_us > 0.0);
    }
}
