//! Extension experiment: pay-for-results billing (paper §6).
//!
//! Renders the two billing comparisons as tables: the noisy-neighbor
//! run (identical work, shared L3) and the scheduling-incentive run
//! (the Fig. 8a workload billed on a well- and a badly-scheduled
//! platform).

use fix_billing::{noisy_neighbor, scheduling_incentive, Money, PriceSheet};
use fix_workloads::wordcount::Fig8aParams;
use std::fmt::Write as _;

fn ratio(a: Money, b: Money) -> f64 {
    a.as_dollars_f64() / b.as_dollars_f64().max(f64::MIN_POSITIVE)
}

/// Runs both billing experiments and renders the tables.
pub fn run(n_tasks: usize) -> String {
    let price = PriceSheet::default();
    let mut out = String::new();

    writeln!(out, "== extension: pay-for-results billing ==").unwrap();
    let nn = noisy_neighbor(&price);
    writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>10} {:>13} {:>13}",
        "tenancy", "instructions", "L3 misses", "wall ms", "effort bill", "results bill"
    )
    .unwrap();
    for (label, perf, bills) in [
        ("dedicated", nn.isolated, &nn.isolated_bills),
        ("noisy", nn.contended, &nn.contended_bills),
    ] {
        writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>10} {:>13} {:>13}",
            label,
            perf.instructions,
            perf.l3_misses,
            perf.wall_us / 1000,
            bills.0.total().to_string(),
            bills.1.total().to_string(),
        )
        .unwrap();
    }
    writeln!(
        out,
        "effort bill inflates {:.2}x under contention; results bill invariant\n",
        ratio(nn.contended_bills.0.total(), nn.isolated_bills.0.total())
    )
    .unwrap();

    let params = Fig8aParams {
        n_tasks,
        ..Fig8aParams::default()
    };
    let si = scheduling_incentive(&price, &params);
    writeln!(
        out,
        "{:<28} {:>10} {:>13} {:>13}",
        "platform (fig 8a workload)", "makespan", "effort bill", "results bill"
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>8.3} s {:>13} {:>13}",
        "Fix (late binding)",
        si.late.makespan_secs(),
        si.effort_bills.0.to_string(),
        si.results_bills.0.to_string(),
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>8.3} s {:>13} {:>13}",
        "status quo (internal I/O)",
        si.early.makespan_secs(),
        si.effort_bills.1.to_string(),
        si.results_bills.1.to_string(),
    )
    .unwrap();
    writeln!(
        out,
        "effort billing charges {:.0}x more for identical results on the\n\
         badly-scheduled platform; results billing is placement-invariant",
        ratio(si.effort_bills.1, si.effort_bills.0)
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_both_tables() {
        let text = super::run(64);
        assert!(text.contains("noisy"));
        assert!(text.contains("late binding"));
        assert!(text.contains("invariant"));
    }
}
