//! Extension experiment: computational garbage collection (paper §6).
//!
//! Not a paper figure — the paper proposes this as future work — but
//! the design decision it rests on (recipes recorded over resolved
//! definitions) deserves numbers: how much storage does eviction
//! reclaim, and what does a cold read cost at each cascade depth?
//!
//! The workload is a binary histogram-merge tree over `width` shards
//! (depth grows with log₂ width), on the *real* runtime.

use fix_core::data::Blob;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn limits() -> ResourceLimits {
    ResourceLimits::default_limits()
}

/// Builds the histogram pipeline over `width` shards of `shard_size`
/// bytes; returns the final handle.
fn pipeline(rt: &Runtime, width: usize, shard_size: usize) -> Handle {
    let histogram = rt.register_native(
        "bench/histogram",
        Arc::new(|ctx| {
            let shard = ctx.arg_blob(0)?;
            let mut counts = [0u64; 256];
            for &b in shard.as_slice() {
                counts[b as usize] += 1;
            }
            ctx.host
                .create_blob(counts.iter().flat_map(|c| c.to_le_bytes()).collect())
        }),
    );
    let merge = rt.register_native(
        "bench/merge",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?;
            let b = ctx.arg_blob(1)?;
            let sum: Vec<u8> = a
                .as_slice()
                .chunks_exact(8)
                .zip(b.as_slice().chunks_exact(8))
                .flat_map(|(x, y)| {
                    (u64::from_le_bytes(x.try_into().expect("8B"))
                        + u64::from_le_bytes(y.try_into().expect("8B")))
                    .to_le_bytes()
                })
                .collect();
            ctx.host.create_blob(sum)
        }),
    );
    let mut layer: Vec<Handle> = (0..width)
        .map(|i| {
            let shard = rt.put_blob(Blob::from_vec(fix_workloads::corpus::generate_shard(
                99, i as u64, shard_size,
            )));
            rt.eval(rt.apply(limits(), histogram, &[shard]).expect("apply"))
                .expect("eval")
        })
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                rt.eval(
                    rt.apply(limits(), merge, &[pair[0], pair[1]])
                        .expect("apply"),
                )
                .expect("eval")
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Runs the experiment across pipeline widths and renders the table.
pub fn run(widths: &[usize], shard_size: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== extension: computational GC (delayed-availability storage) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>6} {:>10} {:>10} {:>9} {:>12} {:>12}",
        "width", "depth", "stored B", "evicted B", "victims", "warm read", "cold read"
    )
    .unwrap();
    for &width in widths {
        let rt = Runtime::builder().with_provenance().build();
        let total = pipeline(&rt, width, shard_size);

        let warm_t = Instant::now();
        let _ = rt.get_blob(total).expect("warm read");
        let warm = warm_t.elapsed();

        let stored = rt.store().total_bytes();
        let outcome = rt.evict_recomputable(&[]).expect("evict");

        let cold_t = Instant::now();
        let report = rt.materialize(total).expect("materialize");
        let _ = rt.get_blob(total).expect("cold read");
        let cold = cold_t.elapsed();

        writeln!(
            out,
            "{:>6} {:>6} {:>10} {:>10} {:>9} {:>9} µs {:>9} µs",
            width,
            outcome.plan.max_depth(),
            stored,
            outcome.bytes_reclaimed,
            report.objects_materialized,
            warm.as_micros(),
            cold.as_micros(),
        )
        .unwrap();
    }
    writeln!(
        out,
        "(cold reads re-run the recorded recipes; the provider trades\n\
         bytes held for deterministic recompute within the SLA window)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shows_growing_cascades() {
        let text = run(&[2, 8], 4 << 10);
        assert!(text.contains("width"));
        // Two data rows plus header and footer.
        assert!(text.lines().count() >= 5);
    }
}
