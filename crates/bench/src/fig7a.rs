//! Fig. 7a: per-invocation overhead of a trivial add function.
//!
//! The first rows are **measured for real** on this machine: a static
//! call, a virtual (dyn-trait) call, the Fixpoint runtime invoking a
//! native codelet and a FixVM codelet, and a spawned Linux process. The
//! remaining comparators (Pheromone, Ray, Faasm, OpenWhisk) cannot run
//! here; their rows carry the paper's own measured values from the
//! calibrated [`CostModel`] and are labeled as such.

use fix_baselines::CostModel;
use fix_core::data::Blob;
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use std::sync::Arc;
use std::time::Instant;

/// One row of the Fig. 7a table.
#[derive(Debug, Clone)]
pub struct Row {
    /// System / mechanism name.
    pub name: String,
    /// Mean nanoseconds per invocation.
    pub ns_per_call: f64,
    /// True if measured on this machine (vs. paper-calibrated model).
    pub measured: bool,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig7a {
    /// Rows, fastest first.
    pub rows: Vec<Row>,
}

#[inline(never)]
fn static_add(a: u8, b: u8) -> u8 {
    a.wrapping_add(b)
}

trait Adder {
    fn add(&self, a: u8, b: u8) -> u8;
}
struct VAdder;
impl Adder for VAdder {
    fn add(&self, a: u8, b: u8) -> u8 {
        a.wrapping_add(b)
    }
}
struct VAdder2;
impl Adder for VAdder2 {
    fn add(&self, a: u8, b: u8) -> u8 {
        a.wrapping_add(b).wrapping_add(0)
    }
}

fn time_per_iter(iters: u64, f: impl FnMut(u64)) -> f64 {
    let mut f = f;
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The FixVM add codelet source.
pub const VM_ADD: &str = r#"
    func apply args=0 locals=0
      const 0
      const 2
      tree.get
      const 0
      blob.read_u64
      const 0
      const 3
      tree.get
      const 0
      blob.read_u64
      add
      blob.create_u64
      ret_handle
    end
"#;

/// Builds a runtime with native and VM `add` installed, returning
/// `(runtime, native_handle, vm_handle)`.
pub fn add_runtime() -> (Runtime, fix_core::Handle, fix_core::Handle) {
    let rt = Runtime::builder().build();
    let native = rt.register_native(
        "bench/add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let b = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );
    let vm = rt.install_vm_module(VM_ADD).expect("valid module");
    (rt, native, vm)
}

/// Evaluates `add(i, 12)` once on the runtime (the per-iteration body of
/// the Fixpoint rows; a fresh `i` defeats memoization, as each paper
/// invocation did real work).
pub fn fixpoint_add_once(rt: &Runtime, proc_h: fix_core::Handle, i: u64) -> u64 {
    let a = rt.put_blob(Blob::from_u64(i));
    let b = rt.put_blob(Blob::from_u64(12));
    let thunk = rt
        .apply(ResourceLimits::default_limits(), proc_h, &[a, b])
        .expect("apply");
    let out = rt.eval(thunk).expect("eval");
    rt.get_u64(out).expect("u64 result")
}

/// Runs the measurement with `iters` iterations per mechanism.
pub fn run(iters: u64, process_iters: u64) -> Fig7a {
    let mut rows = Vec::new();
    let mut sink = 0u8;

    let ns = time_per_iter(iters, |i| {
        sink = sink.wrapping_add(static_add(std::hint::black_box(i as u8), 12));
    });
    rows.push(Row {
        name: "static function call".into(),
        ns_per_call: ns,
        measured: true,
    });

    // Two implementations behind a black_box'd selector defeat
    // devirtualization, so this measures a genuine indirect call.
    let adders: [Box<dyn Adder>; 2] = [Box::new(VAdder), Box::new(VAdder2)];
    let ns = time_per_iter(iters, |i| {
        let v = &adders[std::hint::black_box(0usize)];
        sink = sink.wrapping_add(v.add(std::hint::black_box(i as u8), 12));
    });
    rows.push(Row {
        name: "virtual function call".into(),
        ns_per_call: ns,
        measured: true,
    });
    std::hint::black_box(sink);

    let (rt, native, vm) = add_runtime();
    let warm_iters = iters.clamp(1, 20_000);
    let ns = time_per_iter(warm_iters, |i| {
        fixpoint_add_once(&rt, native, i);
    });
    rows.push(Row {
        name: "Fixpoint (native codelet)".into(),
        ns_per_call: ns,
        measured: true,
    });
    let ns = time_per_iter(warm_iters, |i| {
        fixpoint_add_once(&rt, vm, i + (1 << 40));
    });
    rows.push(Row {
        name: "Fixpoint (FixVM codelet)".into(),
        ns_per_call: ns,
        measured: true,
    });

    // A real spawned process per invocation, like the paper's vfork'd
    // add program: spawn + exec + exit. `figures --add-worker A B` makes
    // the harness binary itself the add program; under `cargo test` we
    // fall back to /bin/true (same spawn+exec+exit path).
    let self_add = std::env::var_os("FIX_BENCH_SELF_ADD").is_some();
    let exe: Option<std::path::PathBuf> = if self_add {
        std::env::current_exe().ok()
    } else {
        ["true", "/bin/true", "/usr/bin/true"]
            .iter()
            .find(|c| std::process::Command::new(c).status().is_ok())
            .map(std::path::PathBuf::from)
    };
    if let Some(exe) = exe {
        let ns = time_per_iter(process_iters.max(1), |i| {
            let mut cmd = std::process::Command::new(&exe);
            if self_add {
                cmd.arg("--add-worker").arg((i as u8).to_string()).arg("12");
            }
            std::hint::black_box(cmd.status().ok());
        });
        rows.push(Row {
            name: "Linux process (spawn+exec)".into(),
            ns_per_call: ns,
            measured: true,
        });
    }

    // Paper-calibrated comparators.
    let cost = CostModel::default();
    for (name, us) in [
        ("Pheromone (paper-measured)", cost.pheromone_invocation_us),
        ("Ray (paper-measured)", cost.ray_invocation_us),
        ("Faasm (paper-measured)", cost.faasm_invocation_us),
        ("OpenWhisk (paper-measured)", cost.openwhisk_invocation_us),
    ] {
        rows.push(Row {
            name: name.into(),
            ns_per_call: us as f64 * 1000.0,
            measured: false,
        });
    }
    Fig7a { rows }
}

impl std::fmt::Display for Fig7a {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 7a — duration of a single trivial (add) invocation")?;
        writeln!(
            f,
            "{:<34} {:>14} {:>14}  source",
            "approach", "time/call", "vs Fixpoint"
        )?;
        // Normalize against Fixpoint (native), like the paper's table.
        let fixpoint = self
            .rows
            .iter()
            .find(|r| r.name.starts_with("Fixpoint (native"))
            .map(|r| r.ns_per_call)
            .unwrap_or(1.0);
        for r in &self.rows {
            let t = if r.ns_per_call < 1_000.0 {
                format!("{:.1} ns", r.ns_per_call)
            } else if r.ns_per_call < 1_000_000.0 {
                format!("{:.2} µs", r.ns_per_call / 1e3)
            } else {
                format!("{:.2} ms", r.ns_per_call / 1e6)
            };
            writeln!(
                f,
                "{:<34} {:>14} {:>13.2}x  {}",
                r.name,
                t,
                r.ns_per_call / fixpoint,
                if r.measured {
                    "measured"
                } else {
                    "paper-calibrated"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // Small iteration counts: this is a smoke test of the shape, not
        // a benchmark.
        let fig = run(5_000, 3);
        let by_name = |n: &str| {
            fig.rows
                .iter()
                .find(|r| r.name.starts_with(n))
                .unwrap_or_else(|| panic!("row {n}"))
                .ns_per_call
        };
        // Generous bounds: unit tests run in parallel with heavy
        // simulation tests, so this only smoke-checks the ordering.
        // The Criterion bench measures properly.
        assert!(by_name("static") < by_name("Fixpoint (native"));
        assert!(by_name("virtual") < by_name("Fixpoint (native"));
        assert!(by_name("Fixpoint (native") < by_name("Linux process") * 10.0);
        assert!(by_name("Linux process") < by_name("OpenWhisk") * 10.0);
        // Fixpoint is microseconds, not milliseconds.
        assert!(
            by_name("Fixpoint (native") < 500_000.0,
            "native codelet too slow"
        );
        assert!(
            by_name("Fixpoint (FixVM") < 1_000_000.0,
            "vm codelet too slow"
        );
    }

    #[test]
    fn display_renders() {
        let fig = run(1_000, 1);
        let text = fig.to_string();
        assert!(text.contains("OpenWhisk"));
        assert!(text.contains("measured"));
    }
}
