//! Fig. 9 + Table 2: B+-tree lookups at varying arity.
//!
//! Two complementary reproductions:
//!
//! * the **cost model** at the paper's full scale (6 M keys, arities
//!   2^24 → 2^6), using Table 2's data-access formulas plus the
//!   calibrated per-invocation overheads — this regenerates the figure's
//!   curves; and
//! * a **real execution** at reduced scale: actual B+ trees over Fix
//!   trees on the Fixpoint runtime, with measured wall-clock times and
//!   measured (not modeled) data-access counts.

use fix_baselines::CostModel;
use fix_workloads::bptree::{
    build, depth_for, fig9_time_us, lookup_fix, lookup_trusted, register_lookup, table2,
};
use fix_workloads::titles::generate_sorted_titles;
use fixpoint::Runtime;
use std::time::Instant;

/// One arity's modeled results (10 sequential queries, like the paper).
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// log2 of the arity.
    pub log2_arity: u32,
    /// Tree depth at 6 M keys.
    pub depth: u32,
    /// Fixpoint time for a 10-query set, µs.
    pub fix_us: u64,
    /// Ray (continuation-passing) time, µs.
    pub ray_cps_us: u64,
    /// Ray (blocking) time, µs.
    pub ray_blocking_us: u64,
}

/// One arity's real-execution results at reduced scale.
#[derive(Debug, Clone)]
pub struct RealRow {
    /// log2 of the arity.
    pub log2_arity: u32,
    /// Measured depth.
    pub depth: usize,
    /// Wall-clock for 10 Fix-level lookups, µs.
    pub fix_us: u128,
    /// Measured keys-blob bytes read per lookup (trusted traversal).
    pub key_bytes_per_lookup: u64,
    /// Fix-level invocations per lookup.
    pub invocations_per_lookup: u64,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Paper-scale cost-model curves.
    pub model: Vec<ModelRow>,
    /// Reduced-scale real runs.
    pub real: Vec<RealRow>,
    /// Key count used for the model.
    pub model_keys: u64,
    /// Key count used for the real runs.
    pub real_keys: usize,
}

/// Paper-equivalent model parameters.
pub const KEY_SIZE: u64 = 22;
/// Tree-entry (handle) size in bytes.
pub const ENTRY_SIZE: u64 = 32;
/// Deserialization/scan bandwidth for loaded data (documented estimate).
pub const LOAD_BW: u64 = 100_000_000;

/// Runs the cost model at paper scale and real trees at `real_keys`.
pub fn run(real_keys: usize, real_arities: &[u32]) -> Fig9 {
    let cost = CostModel::default();
    let model_keys = 6_000_000u64;
    let queries = 10;

    let model = [24u32, 12, 10, 8, 6]
        .iter()
        .map(|&log_a| {
            let a = 1u64 << log_a;
            let d = depth_for(a as usize, model_keys as usize) as u64;
            let rows = table2(a.min(model_keys), d, KEY_SIZE, ENTRY_SIZE);
            ModelRow {
                log2_arity: log_a,
                depth: d as u32,
                fix_us: queries
                    * fig9_time_us(
                        rows[0].invocations,
                        rows[0].data_accessed,
                        cost.fixpoint_invocation_us,
                        LOAD_BW,
                    ),
                ray_cps_us: queries
                    * fig9_time_us(
                        rows[1].invocations,
                        rows[1].data_accessed,
                        cost.ray_invocation_us,
                        LOAD_BW,
                    ),
                ray_blocking_us: queries
                    * fig9_time_us(
                        rows[2].invocations,
                        rows[2].data_accessed,
                        cost.ray_invocation_us,
                        LOAD_BW,
                    ),
            }
        })
        .collect();

    let real = real_arities
        .iter()
        .map(|&log_a| real_run(real_keys, 1 << log_a, queries as usize))
        .collect();

    Fig9 {
        model,
        real,
        model_keys,
        real_keys,
    }
}

fn real_run(n_keys: usize, arity: usize, queries: usize) -> RealRow {
    use std::sync::atomic::Ordering;
    let rt = Runtime::builder().build();
    let titles = generate_sorted_titles(17, n_keys);
    let pairs: Vec<(String, Vec<u8>)> = titles
        .iter()
        .map(|t| (t.clone(), format!("v:{t}").into_bytes()))
        .collect();
    let tree = build(rt.store(), &pairs, arity);
    let proc_h = register_lookup(&rt);

    // Deterministic "random" query keys.
    let keys: Vec<&String> = (0..queries)
        .map(|i| &titles[(i * 7919 + 13) % titles.len()])
        .collect();

    // Measure data accessed via the trusted traversal.
    let mut key_bytes = 0u64;
    for k in &keys {
        let (_, stats) = lookup_trusted(rt.store(), &tree, k).expect("lookup");
        key_bytes += stats.key_bytes_read;
    }

    // Warm nothing: each key is a fresh Fix-level traversal.
    let before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
    let start = Instant::now();
    for k in &keys {
        let h = lookup_fix(&rt, proc_h, &tree, k).expect("fix lookup");
        std::hint::black_box(h);
    }
    let elapsed = start.elapsed().as_micros();
    let after = rt.engine().stats.procedures_run.load(Ordering::Relaxed);

    RealRow {
        log2_arity: arity.trailing_zeros(),
        depth: tree.depth,
        fix_us: elapsed,
        key_bytes_per_lookup: key_bytes / queries as u64,
        invocations_per_lookup: (after - before) / queries as u64,
    }
}

/// Renders Table 2 at the paper's reference shape (arity 256, 6 M keys).
pub fn table2_text() -> String {
    let mut out = String::new();
    out.push_str("Table 2 — per-lookup cost formulas (arity a, depth d)\n");
    out.push_str(&format!(
        "{:<30} {:>13} {:>15} {:>12}\n",
        "system", "invocations", "data accessed", "footprint"
    ));
    for log_a in [24u32, 12, 10, 6] {
        let a = 1u64 << log_a;
        let d = depth_for(a as usize, 6_000_000) as u64;
        out.push_str(&format!("-- arity 2^{log_a} (depth {d})\n"));
        for row in table2(a.min(6_000_000), d, KEY_SIZE, ENTRY_SIZE) {
            out.push_str(&format!(
                "{:<30} {:>13} {:>12.2} MB {:>9.2} MB\n",
                row.system,
                row.invocations,
                row.data_accessed as f64 / 1e6,
                row.memory_footprint as f64 / 1e6
            ));
        }
    }
    out
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 9 — B+-tree lookups (10 queries/set), {} keys, cost model",
            self.model_keys
        )?;
        writeln!(
            f,
            "{:>8} {:>6} {:>12} {:>14} {:>14} {:>10} {:>10}",
            "arity", "depth", "Fixpoint", "Ray (CPS)", "Ray (block)", "cps/fix", "blk/fix"
        )?;
        for r in &self.model {
            writeln!(
                f,
                "{:>7}  {:>6} {:>9.3} s {:>11.3} s {:>11.3} s {:>9.1}x {:>9.1}x",
                format!("2^{}", r.log2_arity),
                r.depth,
                r.fix_us as f64 / 1e6,
                r.ray_cps_us as f64 / 1e6,
                r.ray_blocking_us as f64 / 1e6,
                r.ray_cps_us as f64 / r.fix_us as f64,
                r.ray_blocking_us as f64 / r.fix_us as f64,
            )?;
        }
        writeln!(
            f,
            "\nreal Fixpoint runtime at reduced scale ({} keys):",
            self.real_keys
        )?;
        writeln!(
            f,
            "{:>8} {:>6} {:>14} {:>18} {:>12}",
            "arity", "depth", "10 lookups", "key bytes/lookup", "invocs"
        )?;
        for r in &self.real {
            writeln!(
                f,
                "{:>7}  {:>6} {:>11.2} ms {:>18} {:>12}",
                format!("2^{}", r.log2_arity),
                r.depth,
                r.fix_us as f64 / 1e3,
                r.key_bytes_per_lookup,
                r.invocations_per_lookup
            )?;
        }
        Ok(())
    }
}

/// Convenience: invocation overhead sanity via the real tree (used by
/// tests and the ablation bench).
pub fn real_invocations(n_keys: usize, arity: usize) -> u64 {
    real_run(n_keys, arity, 4).invocations_per_lookup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_paper_trends() {
        let fig = run(4096, &[12, 6, 3]);
        // Fix monotonically improves (or holds) as arity decreases 2^24→2^8.
        for w in fig.model.windows(2) {
            if w[1].log2_arity >= 8 {
                assert!(w[1].fix_us <= w[0].fix_us, "{:?}", fig.model);
            }
        }
        // Ray CPS degrades as arity shrinks below 2^12 (paper's finding).
        let cps_12 = fig.model.iter().find(|r| r.log2_arity == 12).unwrap();
        let cps_6 = fig.model.iter().find(|r| r.log2_arity == 6).unwrap();
        assert!(cps_6.ray_cps_us > cps_12.ray_cps_us);
        // At 2^6: blocking beats CPS, and both are ≫ Fix (paper: 22.3× and
        // 49.9×).
        assert!(cps_6.ray_blocking_us < cps_6.ray_cps_us);
        let blk_slowdown = cps_6.ray_blocking_us as f64 / cps_6.fix_us as f64;
        let cps_slowdown = cps_6.ray_cps_us as f64 / cps_6.fix_us as f64;
        assert!(
            (5.0..120.0).contains(&blk_slowdown),
            "blocking slowdown {blk_slowdown}"
        );
        assert!(cps_slowdown > blk_slowdown);
    }

    #[test]
    fn real_runs_match_structure() {
        let fig = run(4096, &[12, 4]);
        let flatish = &fig.real[0];
        let deep = &fig.real[1];
        assert_eq!(deep.invocations_per_lookup, deep.depth as u64);
        // Deeper tree: more invocations, less data per level.
        assert!(deep.invocations_per_lookup > flatish.invocations_per_lookup);
        assert!(deep.key_bytes_per_lookup < flatish.key_bytes_per_lookup);
    }

    #[test]
    fn table2_renders() {
        let text = table2_text();
        assert!(text.contains("Fixpoint"));
        assert!(text.contains("Ray (Blocking)"));
    }
}
