//! `serve_report`: the serving-layer table for the `figures` binary.
//!
//! None of the paper's figures exercise sustained open-loop traffic —
//! this table opens that axis: a fixed-seed multi-tenant workload
//! (Poisson interactive tenant, bursty batch tenant, heavyweight SeBS
//! tenant) served through the `fix-serve` driver pool on the
//! single-node runtime, reported as throughput, tail latency, and
//! per-tenant drop counts. Deterministic by construction: the virtual
//! clock, not the wall clock, produces every number.

use fix_serve::{
    serve, ArrivalProcess, RequestKind, ServeConfig, ServeReport, SloClass, TenantSpec,
};
use fixpoint::Runtime;

/// The fixed-seed serving configuration behind the table. `scale`
/// stretches the virtual horizon (1 → 0.2 s, CI-quick; 5 → 1 s).
pub fn config(scale: u32) -> ServeConfig {
    ServeConfig {
        seed: 2026,
        duration_us: 200_000 * scale as u64,
        drivers: 4,
        batch: 32,
        queue_capacity: 96,
        batch_overhead_us: 5,
        inflight: 2,
        tenants: vec![
            TenantSpec {
                name: "interactive".into(),
                weight: 4,
                arrivals: ArrivalProcess::Poisson { rate_rps: 4000.0 },
                mix: vec![(RequestKind::Add, 3), (RequestKind::Fib { max_n: 10 }, 1)],
                slo: SloClass::default(),
            },
            TenantSpec::uniform_mix(
                "analytics",
                2,
                ArrivalProcess::Bursts {
                    period_us: 50_000,
                    burst: 160,
                },
                RequestKind::Wordcount {
                    shard_bytes: 16 << 10,
                },
            ),
            TenantSpec::uniform_mix(
                "webapp",
                1,
                ArrivalProcess::Poisson { rate_rps: 600.0 },
                RequestKind::SebsHtml { users: 8 },
            ),
        ],
    }
}

/// Runs the serving workload and returns its report.
pub fn run(scale: u32) -> ServeReport {
    let rt = Runtime::builder().build();
    serve(&rt, &config(scale)).expect("serve run")
}

/// Renders the table with its header.
pub fn table_text(scale: u32) -> String {
    format!(
        "Serve — multi-tenant open-loop traffic through the driver pool \
         (seed 2026, 4 drivers × batch 32)\n{}",
        run(scale)
    )
}

/// Runs the serving workload once per seed and renders one table per
/// seed, in seed order. With `parallel`, each seed gets its own thread
/// (and its own `Runtime` — runs share nothing), which is safe to do
/// *because* every number comes off the virtual clock: the output is
/// byte-identical to the serial driver no matter how the threads
/// interleave, and the sweep test pins exactly that.
pub fn sweep(seeds: &[u64], scale: u32, parallel: bool) -> String {
    let run_seed = |&seed: &u64| {
        let cfg = ServeConfig {
            seed,
            ..config(scale)
        };
        let rt = Runtime::builder().build();
        let report = serve(&rt, &cfg).expect("serve sweep run");
        format!("Serve sweep — seed {seed}\n{report}")
    };
    let tables: Vec<String> = if parallel {
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|seed| scope.spawn(move || run_seed(seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep thread"))
                .collect()
        })
    } else {
        seeds.iter().map(run_seed).collect()
    };
    tables.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_table_is_deterministic_and_loaded() {
        let a = table_text(1);
        let b = table_text(1);
        assert_eq!(a, b, "same seed must print the same table");
        let report = run(1);
        assert!(report.completed > 500, "{} completed", report.completed);
        // The bursty tenant overruns its queue bound at this scale.
        assert!(report.total_dropped() > 0);
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let seeds = [2026u64, 7, 99];
        let serial = sweep(&seeds, 1, false);
        let parallel = sweep(&seeds, 1, true);
        assert_eq!(
            serial, parallel,
            "threading the sweep must not change a single byte"
        );
        // Different seeds really produce different traffic.
        let one = sweep(&[2026], 1, false);
        let other = sweep(&[7], 1, false);
        assert_ne!(
            one.lines().nth(1),
            other.lines().nth(1),
            "distinct seeds should render distinct tables"
        );
    }
}
