//! `figures`: regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! figures [fig7a|fig7b|fig8a|fig8b|fig9|fig10|table2|comparators|serve|adapt|sweep|trace|calibrate|recover|route|summary|all] [--quick]
//! ```
//!
//! `trace` runs the serving workload with the `fix-obs` event recorder
//! enabled on three submitting backends, prints the deterministic
//! trace summary + latency decomposition (bit-identical across runs
//! and backends), and writes one Perfetto-loadable Chrome trace JSON
//! per backend under `target/trace/`.
//!
//! `sweep` runs the serving table across several seeds, one thread per
//! seed (`--serial` to force the single-threaded driver). The output is
//! byte-identical either way — the virtual clock, not thread timing,
//! produces every number.
//!
//! `calibrate` audits the shared `fix_core::calibration::SERVICE_COSTS`
//! table against measured warm/cold procedure paths on the real
//! runtime (wall-clock, so the one table that is *not* deterministic).
//!
//! `--quick` runs everything at reduced scale (CI-friendly); without it,
//! the cluster simulations use the paper's full parameters (984 × 100 MiB
//! shards, 2000 source files, 6 M keys).

use fix_workloads::wordcount::Fig8bParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker mode: `figures --add-worker A B` exits with code A+B — the
    // spawned "add program" for the Fig. 7a process row.
    if args.first().map(String::as_str) == Some("--add-worker") {
        let a: u8 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let b: u8 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
        std::process::exit(a.wrapping_add(b) as i32);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    // With --self-add, fig7a spawns this very binary as the add program
    // (closest to the paper's vfork'd add); default is /bin/true, whose
    // startup is not inflated by the harness binary size.
    if args.iter().any(|a| a == "--self-add") {
        std::env::set_var("FIX_BENCH_SELF_ADD", "1");
    }

    let run_fig = |name: &str| which == "all" || which == name || which == "summary";

    if run_fig("fig7a") {
        let (iters, pi) = if quick { (20_000, 20) } else { (200_000, 200) };
        println!("{}\n", fix_bench::fig7a::run(iters, pi));
    }
    if run_fig("fig7b") {
        println!("{}\n", fix_bench::fig7b::run(500));
    }
    if run_fig("fig8a") {
        println!("{}\n", fix_bench::fig8a::run(1024));
    }
    if run_fig("fig8b") {
        let params = if quick {
            Fig8bParams {
                n_shards: 123,
                ..Fig8bParams::default()
            }
        } else {
            Fig8bParams::default()
        };
        println!("{}\n", fix_bench::fig8b::run(&params));
    }
    if run_fig("fig9") {
        let (keys, arities): (usize, &[u32]) = if quick {
            (16_384, &[14, 8, 4])
        } else {
            (262_144, &[18, 12, 8, 4])
        };
        println!("{}\n", fix_bench::fig9::run(keys, arities));
    }
    if which == "all" || which == "table2" {
        println!("{}", fix_bench::fig9::table2_text());
    }
    if run_fig("fig10") {
        let n = if quick { 500 } else { 2000 };
        println!("{}\n", fix_bench::fig10::run(n));
    }
    // Beyond the paper: every backend of the One Fix API in one table,
    // and the serving layer's open-loop traffic report.
    if which == "all" || which == "comparators" {
        let (shards, bytes) = if quick {
            (16, 16 << 10)
        } else {
            (64, 64 << 10)
        };
        println!("{}", fix_bench::comparators::run(shards, bytes));
    }
    if which == "all" || which == "serve" {
        let scale = if quick { 1 } else { 5 };
        println!("{}", fix_bench::serve_report::table_text(scale));
    }
    // Static-vs-adaptive control plane under a flash crowd (the
    // `fix-adapt` figure: same seed, two control planes, one verdict).
    if which == "all" || which == "adapt" {
        let scale = if quick { 1 } else { 5 };
        println!("{}\n", fix_bench::adapt_table::table_text(scale));
    }
    // Deterministic tracing of the serving workload (not part of `all`:
    // it re-runs the serve workload three times and writes trace files).
    if which == "trace" {
        let scale = if quick { 1 } else { 5 };
        let out = std::path::Path::new("target/trace");
        println!("{}", fix_bench::trace::run(scale, out));
        println!("chrome traces written under {}", out.display());
    }
    // Multi-seed serving sweep, parallel by default (not part of `all`:
    // it reprints the serve table once per seed).
    if which == "sweep" {
        let scale = if quick { 1 } else { 5 };
        let seeds: &[u64] = &[2026, 7, 99, 1234];
        let serial = args.iter().any(|a| a == "--serial");
        println!("{}", fix_bench::serve_report::sweep(seeds, scale, !serial));
    }
    // Measured calibration: wall-clock audit of the virtual-clock
    // constants (not part of `all`, which prints only deterministic
    // tables — run it explicitly).
    if which == "calibrate" {
        let samples = if quick { 5 } else { 15 };
        println!("{}", fix_bench::calibrate::run(samples));
    }
    // Cold start vs warm restart per log size (wall-clock, like
    // `calibrate`: not part of `all` — run it explicitly).
    if which == "recover" {
        let sizes: &[usize] = if quick {
            &[64, 256, 1024]
        } else {
            &[256, 1024, 4096]
        };
        println!("{}", fix_bench::recover::run(sizes));
    }
    // Affinity-vs-baseline routing hit rates and the warm-vs-cold node
    // recovery window (deterministic tables, but the recovery half
    // populates real durable directories — like `trace`, not part of
    // `all`; run it explicitly).
    if which == "route" {
        let (scale, nodes) = if quick { (1, 4) } else { (5, 4) };
        println!("{}", fix_bench::route::table_text(scale, nodes));
    }
    // Extension experiments (paper §6 future work, implemented here).
    if which == "all" || which == "extgc" {
        let (widths, shard): (&[usize], usize) = if quick {
            (&[4, 16], 16 << 10)
        } else {
            (&[4, 16, 64, 256], 64 << 10)
        };
        println!("{}", fix_bench::ext_gc::run(widths, shard));
    }
    if which == "all" || which == "extbilling" {
        let n = if quick { 128 } else { 1024 };
        println!("{}", fix_bench::ext_billing::run(n));
    }
    if which == "all" || which == "extdensity" {
        let n = if quick { 128 } else { 1024 };
        println!("{}", fix_bench::ext_density::run(n));
    }
}
