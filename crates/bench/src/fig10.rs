//! Fig. 10: the burst-parallel compilation job on the 10-node cluster.
//!
//! ≈2000 parallel compiles plus one link. For Fixpoint, all dependencies
//! (sources, headers, binaries) are uploaded from the client and shipped
//! with the invocations; Ray+MinIO launches executables via Popen and
//! reads/writes MinIO; OpenWhisk actions pull everything from MinIO with
//! per-node container cold starts.

use fix_baselines::{profiles, run_baseline, CostModel};
use fix_cluster::{run_fix, ClusterSetup, FixConfig, RunReport};
use fix_netsim::{NetConfig, NodeId, NodeSpec};
use fix_workloads::compile::{fig10_graph, Fig10Params};

/// One system's bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub name: String,
    /// End-to-end build time, seconds.
    pub secs: f64,
    /// Bytes moved.
    pub bytes_moved: u64,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Fixpoint, Ray + MinIO, OpenWhisk.
    pub rows: Vec<Row>,
}

fn row(name: &str, r: &RunReport) -> Row {
    Row {
        name: name.into(),
        secs: r.makespan_secs(),
        bytes_moved: r.bytes_moved,
    }
}

/// Runs the figure with `n_files` translation units.
pub fn run(n_files: usize) -> Fig10 {
    let cost = CostModel::default();
    let workers: Vec<NodeId> = (0..10).map(NodeId).collect();
    // MinIO is spread over the cluster nodes (paper §5.1).
    let store: Vec<NodeId> = workers.clone();
    let client = NodeId(11);
    let setup = ClusterSetup {
        specs: vec![NodeSpec::default(); 12],
        net: NetConfig::default(),
        workers: workers.clone(),
        client: Some(client),
    };

    // Fixpoint: dependencies ship from the client with the invocations.
    let fix_graph = fig10_graph(&Fig10Params {
        n_files,
        source_home: client,
        ..Fig10Params::default()
    });
    let fix = run_fix(&setup, &fix_graph, &FixConfig::default());

    // Baselines read sources/headers from MinIO.
    let minio_graph = fig10_graph(&Fig10Params {
        n_files,
        source_home: store[0],
        ..Fig10Params::default()
    });
    // libclang + liblld executables are ~100 MB pulled per node on first
    // use (the paper's Ray setup loads binaries on demand).
    let ray = run_baseline(
        &setup,
        &minio_graph,
        &profiles::ray_minio(client, &store, 100 << 20, &cost),
    );
    let ow = run_baseline(&setup, &minio_graph, &profiles::openwhisk(&store, &cost));

    Fig10 {
        rows: vec![
            row("Fixpoint", &fix),
            row("Ray + MinIO", &ray),
            row("OpenWhisk + MinIO + K8s", &ow),
        ],
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 10 — compile ~2000 C files + link, 10 nodes / 320 vCPUs"
        )?;
        writeln!(f, "{:<26} {:>9} {:>14}", "system", "time", "data moved")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>7.2} s {:>11.2} GiB",
                r.name,
                r.secs,
                r.bytes_moved as f64 / (1u64 << 30) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let fig = run(500); // Quarter scale for test speed.
        let fix = &fig.rows[0];
        let ray = &fig.rows[1];
        let ow = &fig.rows[2];
        // Paper: Fixpoint 39.5 s < Ray 76.9 s < OpenWhisk 100.0 s.
        assert!(fix.secs < ray.secs, "fix {} ray {}", fix.secs, ray.secs);
        assert!(ray.secs < ow.secs, "ray {} ow {}", ray.secs, ow.secs);
        // Speedup bands around the paper's 1.9× and 2.5×.
        let vs_ray = ray.secs / fix.secs;
        let vs_ow = ow.secs / fix.secs;
        assert!((1.2..6.0).contains(&vs_ray), "vs ray {vs_ray:.2}");
        assert!(vs_ow > vs_ray, "vs ow {vs_ow:.2}");
    }
}
