//! Fig. 8b: counting a 3-character string over 984 × 100 MiB Wikipedia
//! shards on a 10-node, 320-vCPU cluster.
//!
//! Compares Fixpoint against its own ablations (no locality; no
//! locality + internal I/O with the paper's 128-thread
//! oversubscription), the two Ray styles, Pheromone (map phase only,
//! as in the paper), and OpenWhisk + MinIO + K8s.

use fix_baselines::{profiles, run_baseline, CostModel};
use fix_cluster::{run_fix, Binding, ClusterSetup, FixConfig, Placement, RunReport};
use fix_netsim::{NetConfig, NodeId, NodeSpec};
use fix_workloads::wordcount::{fig8b_graph, Fig8bParams};

/// One system's bar in the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub name: String,
    /// End-to-end time, seconds.
    pub secs: f64,
    /// CPU waiting percentage over the worker nodes.
    pub cpu_waiting_pct: f64,
    /// Bytes moved over the network.
    pub bytes_moved: u64,
}

/// The completed figure.
#[derive(Debug, Clone)]
pub struct Fig8b {
    /// All systems, Fixpoint first.
    pub rows: Vec<Row>,
}

fn row(name: &str, r: &RunReport) -> Row {
    Row {
        name: name.into(),
        secs: r.makespan_secs(),
        cpu_waiting_pct: r.cpu.waiting_percent(),
        bytes_moved: r.bytes_moved,
    }
}

/// Runs the figure. `params` defaults reproduce the paper's scale
/// (984 × 100 MiB); smaller values keep tests fast.
pub fn run(params: &Fig8bParams) -> Fig8b {
    let cost = CostModel::default();
    let graph = fig8b_graph(params);
    // Map-only graph for Pheromone (its reduce never ran in the paper).
    let map_only = {
        let mut p = params.clone();
        p.merge_us = 0;
        let g = fig8b_graph(&p);
        // Keep only the map tasks.
        let map_count = params.n_shards;
        fix_cluster::JobGraph {
            objects: g.objects.clone(),
            tasks: g.tasks[..map_count].to_vec(),
            outputs: g.outputs[..map_count].to_vec(),
        }
    };

    let n_workers = params.nodes.len();
    let workers: Vec<NodeId> = params.nodes.clone();
    // MinIO is deployed across the same cluster (paper §5.1), so store
    // traffic spreads over every node's bandwidth.
    let store: Vec<NodeId> = workers.clone();
    let driver = NodeId(n_workers + 1); // Ray driver / client.
                                        // Shards live on EBS gp3 volumes (paper §5.1): effective per-node
                                        // streaming bandwidth is the volume's ~300 MB/s, not the 10 Gb NIC.
    let net = NetConfig::default().with_bandwidth_bps(300_000_000);
    let mk_setup = |cores: u32| ClusterSetup {
        specs: vec![
            NodeSpec {
                cores,
                ram_bytes: 128 << 30,
            };
            n_workers + 2
        ],
        net: net.clone(),
        workers: workers.clone(),
        client: None,
    };
    let setup = mk_setup(32);

    let fix = run_fix(&setup, &graph, &FixConfig::default());
    let no_loc = run_fix(
        &setup,
        &graph,
        &FixConfig {
            placement: Placement::Random,
            ..FixConfig::default()
        },
    );
    // Paper: "oversubscribes the CPU, running 128 threads instead of 31".
    let no_loc_internal = run_fix(
        &mk_setup(128),
        &graph,
        &FixConfig {
            placement: Placement::Random,
            binding: Binding::Early,
            ..FixConfig::default()
        },
    );
    let ray_cps = run_baseline(&setup, &graph, &profiles::ray_cps(driver, &cost));
    let ray_blocking = run_baseline(&setup, &graph, &profiles::ray_blocking(driver, &cost));
    let pheromone = run_baseline(&setup, &map_only, &profiles::pheromone(&store, &cost));
    let openwhisk = run_baseline(&setup, &graph, &profiles::openwhisk(&store, &cost));

    Fig8b {
        rows: vec![
            row("Fixpoint", &fix),
            row("Fixpoint (no locality)", &no_loc),
            row("Fixpoint (no locality + internal I/O)", &no_loc_internal),
            row("Ray (continuation-passing)", &ray_cps),
            row("Ray (blocking)", &ray_blocking),
            row("Pheromone + MinIO (map only)", &pheromone),
            row("OpenWhisk + MinIO + K8s", &openwhisk),
        ],
    }
}

impl std::fmt::Display for Fig8b {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 8b — count-string over sharded corpus, 10 nodes / 320 vCPUs"
        )?;
        writeln!(
            f,
            "{:<40} {:>9} {:>13} {:>13}",
            "system", "time", "CPU waiting", "data moved"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<40} {:>7.2} s {:>12.0}% {:>10.1} GiB",
                r.name,
                r.secs,
                r.cpu_waiting_pct,
                r.bytes_moved as f64 / (1u64 << 30) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_at_reduced_scale() {
        // 1/8 scale for test speed; the structure is identical.
        let fig = run(&Fig8bParams {
            n_shards: 123,
            shard_size: 100 << 20,
            ..Fig8bParams::default()
        });
        let get = |name: &str| fig.rows.iter().find(|r| r.name.starts_with(name)).unwrap();
        let fix = get("Fixpoint");
        let no_loc = get("Fixpoint (no locality)");
        let internal = get("Fixpoint (no locality + internal");
        let cps = get("Ray (continuation");
        let blocking = get("Ray (blocking");
        let ow = get("OpenWhisk");

        // Paper's ordering: Fix < Ray CPS < Ray blocking < ... < OpenWhisk,
        // and the ablations sit far above Fix.
        assert!(fix.secs < cps.secs, "fix {} cps {}", fix.secs, cps.secs);
        assert!(cps.secs < blocking.secs);
        assert!(blocking.secs < ow.secs);
        assert!(no_loc.secs > 3.0 * fix.secs, "locality ablation too weak");
        assert!(internal.secs >= no_loc.secs * 0.9);

        // Paper: Fix 37% CPU waiting vs 92% for internal I/O / OpenWhisk.
        assert!(fix.cpu_waiting_pct < internal.cpu_waiting_pct);
        assert!(ow.cpu_waiting_pct > 80.0);

        // Locality means Fixpoint moves only tiny merge outputs (bytes),
        // while the ablations ship 100 MiB shards around.
        assert!(fix.bytes_moved < 1 << 20, "fix moved {}", fix.bytes_moved);
        assert!(no_loc.bytes_moved > 100 * fix.bytes_moved.max(1));
    }
}
