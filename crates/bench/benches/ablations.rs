//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **memoization** — evaluating a recursive Fix program with a warm vs
//!   cleared relation cache (fib's call tree collapses from exponential
//!   to linear);
//! * **literal handles** — small values inline in handles vs forced
//!   through storage;
//! * **pinpoint selection** — fetching one child of a wide tree via a
//!   Selection thunk vs loading the whole entry list;
//! * **BLAKE3 content addressing** — the hash substrate's throughput;
//! * **computational GC** — a warm read vs a cold read that recomputes
//!   an evicted result chain (paper §6's delayed-availability storage).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fix_core::data::{Blob, Tree};
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use std::hint::black_box;
use std::sync::Arc;

fn fib_runtime() -> (Runtime, fix_core::Handle) {
    let rt = Runtime::builder().build();
    let marker: Arc<parking_lot::Mutex<Option<fix_core::Handle>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let m2 = Arc::clone(&marker);
    let fib = rt.register_native(
        "bench/fib",
        Arc::new(move |ctx| {
            let n = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            if n < 2 {
                return ctx.host.create_blob(n.to_le_bytes().to_vec());
            }
            let self_h = m2.lock().expect("registered");
            let limits = ResourceLimits::default_limits();
            let call =
                |ctx: &mut fixpoint::NativeCtx<'_>, k: u64| -> fix_core::Result<fix_core::Handle> {
                    let t = fix_core::invocation::Invocation {
                        limits,
                        procedure: self_h,
                        args: vec![Blob::from_u64(k).handle()],
                    }
                    .to_tree();
                    ctx.host
                        .create_tree(t.entries().to_vec())?
                        .application()?
                        .strict()
                };
            let e1 = call(ctx, n - 1)?;
            let e2 = call(ctx, n - 2)?;
            // add(e1, e2) via a tiny summing procedure baked in here: use
            // the same fib proc with a marker? Simplest: a second native.
            let add = fixpoint::native_marker("bench/fib-add").handle();
            let sum = fix_core::invocation::Invocation {
                limits,
                procedure: add,
                args: vec![e1, e2],
            }
            .to_tree();
            ctx.host.create_tree(sum.entries().to_vec())?.application()
        }),
    );
    rt.register_native(
        "bench/fib-add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let b = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
            ctx.host.create_blob((a + b).to_le_bytes().to_vec())
        }),
    );
    *marker.lock() = Some(fib);
    (rt, fib)
}

fn bench_memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memoization");
    group.sample_size(20);
    let (rt, fib) = fib_runtime();
    let eval_fib = |rt: &Runtime, n: u64| {
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                fib,
                &[rt.put_blob(Blob::from_u64(n))],
            )
            .expect("apply");
        rt.eval(thunk).expect("eval")
    };
    group.bench_function("fib16_cold_cache", |b| {
        b.iter(|| {
            rt.clear_memoization();
            black_box(eval_fib(&rt, 16))
        })
    });
    group.bench_function("fib16_warm_cache", |b| {
        eval_fib(&rt, 16);
        b.iter(|| black_box(eval_fib(&rt, 16)))
    });
    group.finish();
}

fn bench_literals(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_literal_handles");
    // 8-byte value: inline literal, storage never touched.
    group.bench_function("put_get_8B_literal", |b| {
        let rt = Runtime::builder().build();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let h = rt.put_blob(Blob::from_u64(i));
            black_box(rt.get_blob(h).expect("literal"))
        })
    });
    // 64-byte value: hashed, stored, fetched.
    group.bench_function("put_get_64B_stored", |b| {
        let rt = Runtime::builder().build();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut data = [0u8; 64];
            data[..8].copy_from_slice(&i.to_le_bytes());
            let h = rt.put_blob(Blob::from_slice(&data));
            black_box(rt.get_blob(h).expect("stored"))
        })
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pinpoint_selection");
    group.sample_size(30);
    let rt = Runtime::builder().build();
    // A wide tree of 4096 big children.
    let children: Vec<fix_core::Handle> = (0..4096u64)
        .map(|i| {
            let mut v = vec![0u8; 256];
            v[..8].copy_from_slice(&i.to_le_bytes());
            rt.put_blob(Blob::from_vec(v))
        })
        .collect();
    let tree = rt.put_tree(Tree::from_handles(children));

    group.bench_function("selection_one_child", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            let sel = rt.select(tree, i).expect("selection");
            black_box(rt.eval(sel).expect("eval"))
        })
    });
    group.bench_function("load_whole_entry_list", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            let t = rt.get_tree(tree).expect("tree");
            black_box(t.get(i as usize))
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_blake3");
    for size in [64usize, 4096, 1 << 20] {
        group.throughput(Throughput::Bytes(size as u64));
        let data = vec![0xABu8; size];
        group.bench_function(format!("hash_{size}B"), |b| {
            b.iter(|| black_box(fix_hash::hash(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_computational_gc");
    group.sample_size(20);

    // A 4-stage transform chain over a 4 KiB blob; every stage's output
    // is recorded with a recipe.
    let build = || {
        let rt = Runtime::builder().with_provenance().build();
        let step = rt.register_native(
            "bench/rot",
            Arc::new(|ctx| {
                let data = ctx.arg_blob(0)?;
                let out: Vec<u8> = data
                    .as_slice()
                    .iter()
                    .map(|b| b.rotate_left(3) ^ 0x5A)
                    .collect();
                ctx.host.create_blob(out)
            }),
        );
        let mut cur = rt.put_blob(Blob::from_vec(vec![0xCD; 4096]));
        for _ in 0..4 {
            let t = rt
                .apply(ResourceLimits::default_limits(), step, &[cur])
                .expect("apply");
            cur = rt.eval(t).expect("eval");
        }
        (rt, cur)
    };

    group.bench_function("warm_read_4stage", |b| {
        let (rt, out) = build();
        b.iter(|| black_box(rt.get_blob(out).expect("resident")))
    });
    group.bench_function("cold_read_recompute_4stage", |b| {
        let (rt, out) = build();
        b.iter(|| {
            rt.evict_recomputable(&[]).expect("evict");
            rt.materialize(out).expect("materialize");
            black_box(rt.get_blob(out).expect("recomputed"))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_memoization,
    bench_literals,
    bench_selection,
    bench_hash,
    bench_recompute
);
criterion_main!(benches);
