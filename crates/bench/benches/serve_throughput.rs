//! Criterion bench for the serving layer's warm-memoized path: a full
//! serve run — load generation, weighted-fair admission, the virtual
//! clock, and the real driver pool — against a runtime whose relation
//! cache already holds every result.
//!
//! Two rows compare the driver pool's execution strategies under
//! identical traffic:
//!
//! * `blocking_window1` — `inflight: 1`, the classic submit-and-park
//!   loop (each driver blocks on every batch);
//! * `pipelined_window4` — `inflight: 4`, the submission-first pool
//!   (batch *k+1* is submitted while *k* executes).
//!
//! The first (unmeasured) run pays the cold evaluations; the measured
//! runs reuse the same seed, so every minted thunk is a cache hit and
//! the bench isolates serving overhead per request. The virtual-clock
//! tables are asserted identical across both strategies — the window
//! may only move wall-clock throughput, never results.
//!
//! A third pair of rows, `tracing_off_window4` / `tracing_on_window4`,
//! measures the cost of the `fix-obs` event recorder on the same warm
//! pipelined traffic: off is one relaxed atomic load per
//! instrumentation site, on pays the full emit-and-buffer path for
//! every lifecycle event. The deterministic tables are asserted
//! unchanged either way.

//! The `dispatch_*` rows lift the same idea one tier up: a full
//! multi-node dispatch run — routing, per-node queues, node backends —
//! at 1 node, 4 nodes under memoization-affinity routing, and 4 nodes
//! under random placement. Affinity's warm-hit-rate delta over random
//! is printed (virtual-clock, so exact), and both 4-node tables are
//! pinned bit-identical across repeat runs.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_adapt::adaptive_serve;
use fix_dispatch::{dispatch, DispatchConfig, NodeStorage, RoutingPolicy};
use fix_serve::{serve, ArrivalProcess, RequestKind, ServeConfig, SloClass, TenantSpec};
use fixpoint::Runtime;
use std::hint::black_box;

/// ~2000 requests across two tenants on a short virtual horizon.
fn warm_config(inflight: usize) -> ServeConfig {
    ServeConfig {
        seed: 77,
        duration_us: 250_000,
        drivers: 4,
        batch: 32,
        queue_capacity: 256,
        batch_overhead_us: 5,
        inflight,
        tenants: vec![
            TenantSpec::uniform_mix(
                "adds",
                3,
                ArrivalProcess::Poisson { rate_rps: 6000.0 },
                RequestKind::Add,
            ),
            TenantSpec::uniform_mix(
                "fibs",
                1,
                ArrivalProcess::Poisson { rate_rps: 2000.0 },
                RequestKind::Fib { max_n: 12 },
            ),
        ],
    }
}

/// The same traffic with SLO classes attached: the add tenant rides the
/// latency tier (50 ms deadline), the fib tenant the batch tier — so
/// the measured path is the two-level dispatcher plus `submit_with` at
/// per-batch priorities, not plain DRR.
fn slo_config(inflight: usize) -> ServeConfig {
    let mut cfg = warm_config(inflight);
    cfg.tenants[0].slo = SloClass::latency(50_000);
    cfg.tenants[1].slo = SloClass::batch();
    cfg
}

/// The dispatcher-tier traffic: the warm arrival rates over a
/// repeat-heavy request mix (small Fib and SeBS key spaces), one driver
/// per node — so routing, not the driver pool, is the moving part, and
/// placement has memoization to win. The horizon is short enough that
/// the baselines keep re-paying cold evaluations the affinity router
/// pays once per distinct handle per node.
fn dispatch_config(nodes: usize, policy: RoutingPolicy) -> DispatchConfig {
    DispatchConfig {
        base: ServeConfig {
            drivers: 1, // per node
            duration_us: 60_000,
            tenants: vec![
                TenantSpec::uniform_mix(
                    "fibs",
                    3,
                    ArrivalProcess::Poisson { rate_rps: 6000.0 },
                    RequestKind::Fib { max_n: 8 },
                ),
                TenantSpec::uniform_mix(
                    "renders",
                    1,
                    ArrivalProcess::Poisson { rate_rps: 2000.0 },
                    RequestKind::SebsHtml { users: 4 },
                ),
            ],
            ..warm_config(2)
        },
        nodes,
        policy,
        spill_margin: 16,
        storage: NodeStorage::Memory,
        fault: None,
    }
}

fn bench_dispatch_routing(c: &mut Criterion) {
    let one = dispatch_config(1, RoutingPolicy::Affinity);
    let affinity = dispatch_config(4, RoutingPolicy::Affinity);
    let random = dispatch_config(4, RoutingPolicy::Random);

    // Determinism pin: the virtual tables (tenant + per-node) must be
    // bit-identical across repeat runs — wall-clock only moves time.
    let aff = dispatch(&affinity).expect("affinity dispatch run");
    let rnd = dispatch(&random).expect("random dispatch run");
    for (cfg, first) in [(&affinity, &aff), (&random, &rnd)] {
        assert_eq!(
            first.report.to_string(),
            dispatch(cfg)
                .expect("repeat dispatch run")
                .report
                .to_string(),
            "repeat dispatch runs must print identical tables"
        );
    }
    let n: u64 = aff.report.tenants.iter().map(|t| t.admitted).sum();
    println!(
        "serve_throughput[dispatch]: {n} requests over 4 nodes; affinity hit \
         rate {:.1}% vs random {:.1}% ({:+.1} points)",
        aff.hit_rate() * 100.0,
        rnd.hit_rate() * 100.0,
        (aff.hit_rate() - rnd.hit_rate()) * 100.0
    );

    let mut group = c.benchmark_group("dispatch_routing");
    for (label, cfg) in [
        ("1node_affinity", &one),
        ("4node_affinity", &affinity),
        ("4node_random", &random),
    ] {
        group.bench_function(format!("{label}/{n}_reqs"), |b| {
            b.iter(|| black_box(dispatch(black_box(cfg)).expect("dispatch")))
        });
    }
    group.finish();
}

fn bench_serve_throughput(c: &mut Criterion) {
    let blocking = warm_config(1);
    let pipelined = warm_config(4);
    let rt = Runtime::builder().build();
    // Warm-up: evaluates every distinct thunk the seed will ever mint.
    let warm = serve(&rt, &blocking).expect("warm-up serve run");
    let n = warm.completed;

    // The window must not perturb the deterministic tables.
    let pipelined_report = serve(&rt, &pipelined).expect("pipelined serve run");
    assert_eq!(
        warm.to_string(),
        pipelined_report.to_string(),
        "in-flight window changed the virtual tables"
    );

    // Pipelined-vs-blocking comparison on the warm path. Wall-clock, so
    // indicative rather than exact: rounds are interleaved to cancel
    // machine drift, and each mode reports its best round. On the
    // pool-less runtime the waiter executes everything itself, so the
    // window mostly improves cross-driver load balance; with a worker
    // pool behind the scheduler, submission genuinely overlaps
    // execution and the gap widens.
    for (label, rt) in [
        ("inline runtime", Runtime::builder().build()),
        ("2-worker runtime", Runtime::builder().workers(2).build()),
    ] {
        serve(&rt, &blocking).expect("warm-up"); // Warm this runtime's cache.
        let mut blocking_rps = 0.0f64;
        let mut pipelined_rps = 0.0f64;
        for _ in 0..9 {
            blocking_rps = blocking_rps.max(serve(&rt, &blocking).expect("serve").wall_rps());
            pipelined_rps = pipelined_rps.max(serve(&rt, &pipelined).expect("serve").wall_rps());
        }
        println!(
            "serve_throughput[{label}]: {n} warm requests; blocking(window=1) ≈ \
             {blocking_rps:.0} req/s, pipelined(window=4) ≈ {pipelined_rps:.0} req/s ({:+.1}%)",
            (pipelined_rps / blocking_rps - 1.0) * 100.0
        );
    }

    // Worker-pool scaling on the sharded scheduler: the same pipelined
    // traffic against 2-, 4-, and 8-worker runtimes. Every run's
    // virtual table must equal the warm run's (worker count can move
    // wall-clock throughput, never results). Wall-clock scaling only
    // shows on hardware with that many cores — the summary prints the
    // machine's available parallelism alongside, so a flat line on a
    // small box reads as a machine limit, not a scheduler one.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for workers in [2usize, 4, 8] {
        let rt = Runtime::builder().workers(workers).build();
        serve(&rt, &pipelined).expect("warm-up"); // Warm this runtime's cache.
        let mut best = 0.0f64;
        for _ in 0..9 {
            let report = serve(&rt, &pipelined).expect("serve");
            assert_eq!(
                warm.to_string(),
                report.to_string(),
                "worker count changed the virtual tables"
            );
            best = best.max(report.wall_rps());
        }
        scaling.push((workers, best));
    }
    let base = scaling[0].1;
    let summary: Vec<String> = scaling
        .iter()
        .map(|&(w, rps)| format!("{w}w ≈ {rps:.0} req/s ({:.2}×)", rps / base))
        .collect();
    println!(
        "serve_throughput[scaling, {cores} core(s) available]: {}",
        summary.join(", ")
    );

    // Tracing overhead on the warm pipelined path: same seed, recorder
    // on. The virtual tables must not move; the wall-clock gap is the
    // whole price of tracing (machine dependent, so printed rather than
    // asserted). Draining the buffers after each traced run is part of
    // the workflow being measured.
    fix_obs::recorder().clear();
    fix_obs::set_tracing(true);
    let traced = serve(&rt, &pipelined).expect("traced serve run");
    fix_obs::set_tracing(false);
    let events = fix_obs::recorder().drain().len();
    assert_eq!(
        warm.to_string(),
        traced.to_string(),
        "tracing must not perturb the virtual tables"
    );
    let mut off_rps = 0.0f64;
    let mut on_rps = 0.0f64;
    for _ in 0..9 {
        off_rps = off_rps.max(serve(&rt, &pipelined).expect("serve").wall_rps());
        fix_obs::set_tracing(true);
        let r = serve(&rt, &pipelined).expect("traced serve");
        fix_obs::set_tracing(false);
        fix_obs::recorder().clear();
        on_rps = on_rps.max(r.wall_rps());
    }
    println!(
        "serve_throughput[tracing]: {n} warm requests, {events} events/run; \
         off ≈ {off_rps:.0} req/s, on ≈ {on_rps:.0} req/s ({:+.1}%)",
        (on_rps / off_rps - 1.0) * 100.0
    );

    // The SLO mix: same arrivals, two-level dispatch, per-batch
    // priorities through submit_with. Its virtual tables differ from
    // the DRR rows (dispatch order changes), so it gets its own warm-up
    // and its own determinism pin.
    let slo = slo_config(4);
    let slo_warm = serve(&rt, &slo).expect("SLO warm-up serve run");
    let slo_n = slo_warm.completed;
    assert_eq!(
        slo_warm.to_string(),
        serve(&rt, &slo).expect("SLO repeat").to_string(),
        "SLO dispatch must stay deterministic under the bench loop"
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.bench_function(format!("blocking_window1/{n}_reqs"), |b| {
        b.iter(|| black_box(serve(&rt, black_box(&blocking)).expect("serve")))
    });
    group.bench_function(format!("pipelined_window4/{n}_reqs"), |b| {
        b.iter(|| black_box(serve(&rt, black_box(&pipelined)).expect("serve")))
    });
    group.bench_function(format!("slo_two_class_window4/{slo_n}_reqs"), |b| {
        b.iter(|| black_box(serve(&rt, black_box(&slo)).expect("serve")))
    });
    // The tracing pair: identical traffic, recorder off vs on. The on
    // row drains its events each iteration (bounded buffers would
    // otherwise saturate and measure the cheaper drop path instead).
    group.bench_function(format!("tracing_off_window4/{n}_reqs"), |b| {
        b.iter(|| black_box(serve(&rt, black_box(&pipelined)).expect("serve")))
    });
    group.bench_function(format!("tracing_on_window4/{n}_reqs"), |b| {
        fix_obs::set_tracing(true);
        b.iter(|| {
            let r = black_box(serve(&rt, black_box(&pipelined)).expect("serve"));
            fix_obs::recorder().clear();
            r
        });
        fix_obs::set_tracing(false);
        fix_obs::recorder().clear();
    });
    group.finish();
}

/// The `admission_*` rows run the `fix-adapt` flash-crowd scenario with
/// the admission controller off (the static pool — shed by deadline
/// expiry) and on (provably-late arrivals priced out at the door),
/// same seed. The attainment delta is virtual-clock exact and printed;
/// both tables are pinned bit-identical across repeat runs.
fn bench_adaptive_admission(c: &mut Criterion) {
    let off_cfg = fix_bench::adapt_table::static_config(1);
    let on_cfg = fix_bench::adapt_table::adaptive_config(1);
    let rt = Runtime::builder().build();
    // Warm-up (pays every cold evaluation once) + determinism pin.
    let off = adaptive_serve(&rt, &off_cfg)
        .expect("admission-off run")
        .serve;
    let on = adaptive_serve(&rt, &on_cfg)
        .expect("admission-on run")
        .serve;
    for (cfg, first) in [(&off_cfg, &off), (&on_cfg, &on)] {
        assert_eq!(
            first.to_string(),
            adaptive_serve(&rt, cfg)
                .expect("repeat run")
                .serve
                .to_string(),
            "repeat adaptive runs must print identical tables"
        );
    }
    let offered: u64 = off.tenants.iter().map(|t| t.offered).sum();
    println!(
        "serve_throughput[admission]: {offered} offered under the flash crowd; \
         off attainment {:.3} ({} expired), on {:.3} ({} rejected, {} expired) \
         ({:+.3} points)",
        off.attainment(),
        off.total_expired(),
        on.attainment(),
        on.total_rejected(),
        on.total_expired(),
        on.attainment() - off.attainment(),
    );

    let mut group = c.benchmark_group("adaptive_admission");
    group.bench_function(format!("admission_off/{offered}_offered"), |b| {
        b.iter(|| black_box(adaptive_serve(&rt, black_box(&off_cfg)).expect("serve")))
    });
    group.bench_function(format!("admission_on/{offered}_offered"), |b| {
        b.iter(|| black_box(adaptive_serve(&rt, black_box(&on_cfg)).expect("serve")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serve_throughput,
    bench_dispatch_routing,
    bench_adaptive_admission
);
criterion_main!(benches);
