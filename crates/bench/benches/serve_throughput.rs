//! Criterion bench for the serving layer's warm-memoized path: a full
//! serve run — load generation, weighted-fair admission, the virtual
//! clock, and the real driver pool draining every batch through
//! `eval_many` — against a runtime whose relation cache already holds
//! every result.
//!
//! The first (unmeasured) run pays the cold evaluations; the measured
//! runs reuse the same seed, so every minted thunk is a cache hit and
//! the bench isolates serving overhead per request: the continuation of
//! PR 2's batched-dispatch trajectory, now under multi-tenant traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_serve::{serve, ArrivalProcess, RequestKind, ServeConfig, TenantSpec};
use fixpoint::Runtime;
use std::hint::black_box;

/// ~2000 requests across two tenants on a short virtual horizon.
fn warm_config() -> ServeConfig {
    ServeConfig {
        seed: 77,
        duration_us: 250_000,
        drivers: 4,
        batch: 32,
        queue_capacity: 256,
        batch_overhead_us: 5,
        tenants: vec![
            TenantSpec::uniform_mix(
                "adds",
                3,
                ArrivalProcess::Poisson { rate_rps: 6000.0 },
                RequestKind::Add,
            ),
            TenantSpec::uniform_mix(
                "fibs",
                1,
                ArrivalProcess::Poisson { rate_rps: 2000.0 },
                RequestKind::Fib { max_n: 12 },
            ),
        ],
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let cfg = warm_config();
    let rt = Runtime::builder().build();
    // Warm-up: evaluates every distinct thunk the seed will ever mint.
    let warm = serve(&rt, &cfg).expect("warm-up serve run");
    let n = warm.completed;

    // Requests/sec on the warm path, reported directly alongside the
    // criterion timing (wall-clock, so indicative rather than exact).
    let t0 = std::time::Instant::now();
    let again = serve(&rt, &cfg).expect("warm serve run");
    let wall = t0.elapsed();
    assert_eq!(again.completed, n, "same seed, same traffic");
    println!(
        "serve_throughput: {n} warm requests in {:.1} ms wall ≈ {:.0} req/s",
        wall.as_secs_f64() * 1e3,
        n as f64 / wall.as_secs_f64()
    );

    let mut group = c.benchmark_group("serve_throughput");
    group.bench_function(&format!("warm_memoized/{n}_reqs"), |b| {
        b.iter(|| black_box(serve(&rt, black_box(&cfg)).expect("serve")))
    });
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
