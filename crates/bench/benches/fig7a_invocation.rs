//! Criterion bench for Fig. 7a: per-invocation overhead of trivial add.
//!
//! Measures the real mechanisms available on this machine; the
//! unavailable comparators are paper-calibrated constants printed by the
//! `figures` binary instead.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_bench::fig7a::{add_runtime, fixpoint_add_once};
use std::hint::black_box;

fn bench_invocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_invocation");

    group.bench_function("static_call", |b| {
        #[inline(never)]
        fn add(a: u8, bb: u8) -> u8 {
            a.wrapping_add(bb)
        }
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(add(black_box(i), 12))
        })
    });

    group.bench_function("fixpoint_native_codelet", |b| {
        let (rt, native, _) = add_runtime();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(fixpoint_add_once(&rt, native, i))
        })
    });

    group.bench_function("fixpoint_vm_codelet", |b| {
        let (rt, _, vm) = add_runtime();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(fixpoint_add_once(&rt, vm, i))
        })
    });

    group.bench_function("fixpoint_warm_memoized", |b| {
        // The same invocation again: pure relation-cache hit, the floor
        // of Fix's "pay for results" story.
        let (rt, native, _) = add_runtime();
        fixpoint_add_once(&rt, native, 7);
        b.iter(|| black_box(fixpoint_add_once(&rt, native, 7)))
    });

    group.sample_size(10);
    group.bench_function("linux_process_spawn", |b| {
        b.iter(|| {
            black_box(
                std::process::Command::new("true")
                    .status()
                    .map(|s| s.success())
                    .ok(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_invocation);
criterion_main!(benches);
