//! Criterion bench for the real-runtime side of Fig. 7b: a chain of 500
//! dependent invocations executed on the actual Fixpoint runtime (the
//! simulated-cluster version lives in the `figures` binary).
//!
//! Each step increments its input by one; steps are expressed as
//! tail-calling applications, so the whole chain is one trampolined
//! evaluation — no blocked threads, no per-step round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_core::data::Blob;
use fix_core::invocation::Invocation;
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use std::hint::black_box;
use std::sync::Arc;

fn chain_runtime() -> (Runtime, fix_core::Handle) {
    let rt = Runtime::builder().build();
    let marker: Arc<parking_lot::Mutex<Option<fix_core::Handle>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let m2 = Arc::clone(&marker);
    let proc_h = rt.register_native(
        "bench/chain-step",
        Arc::new(move |ctx| {
            let remaining = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let value = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
            if remaining == 0 {
                return ctx.host.create_blob(value.to_le_bytes().to_vec());
            }
            let self_h = m2.lock().expect("registered");
            let next = Invocation {
                limits: ResourceLimits::default_limits(),
                procedure: self_h,
                args: vec![
                    Blob::from_u64(remaining - 1).handle(),
                    Blob::from_u64(value + 1).handle(),
                ],
            }
            .to_tree();
            ctx.host.create_tree(next.entries().to_vec())?.application()
        }),
    );
    *marker.lock() = Some(proc_h);
    (rt, proc_h)
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_chain_real_runtime");
    group.sample_size(20);
    for n in [100u64, 500] {
        group.bench_function(format!("chain_{n}"), |b| {
            let (rt, proc_h) = chain_runtime();
            let mut salt = 0u64;
            b.iter(|| {
                // A fresh starting value defeats memoization of the chain.
                salt += 1;
                let thunk = rt
                    .apply(
                        ResourceLimits::default_limits(),
                        proc_h,
                        &[
                            rt.put_blob(Blob::from_u64(n)),
                            rt.put_blob(Blob::from_u64(salt << 20)),
                        ],
                    )
                    .expect("apply");
                black_box(rt.eval(thunk).expect("eval"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
