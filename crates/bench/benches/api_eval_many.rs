//! Criterion bench for the One Fix API's batched dispatch: N warm
//! (fully memoized) requests evaluated through `eval_many` — one
//! scheduler lock acquisition per batch — versus a loop of single
//! `eval` calls, which pays the submit/notify round per request.
//!
//! The warm-memoized path (~0.8 µs/request, Fig. 7a) is exactly where
//! per-request scheduler overhead is the largest *fraction* of total
//! cost, so it bounds the benefit batching can ever deliver.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_core::api::{SubmitApi, SubmitOptions};
use fix_core::data::Blob;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fixpoint::Runtime;
use std::hint::black_box;
use std::sync::Arc;

/// A runtime with `n` distinct add-thunks, all evaluated once so each
/// subsequent request is a pure relation-cache hit.
fn warm_batch(n: u64) -> (Runtime, Vec<Handle>) {
    let rt = Runtime::builder().build();
    let add = rt.register_native(
        "bench/add",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap();
            let b = ctx.arg_blob(1)?.as_u64().unwrap();
            ctx.host
                .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
        }),
    );
    let thunks: Vec<Handle> = (0..n)
        .map(|i| {
            rt.apply(
                ResourceLimits::default_limits(),
                add,
                &[
                    rt.put_blob(Blob::from_u64(i)),
                    rt.put_blob(Blob::from_u64(1)),
                ],
            )
            .unwrap()
        })
        .collect();
    for r in rt.eval_many(&thunks) {
        r.expect("warmup eval");
    }
    (rt, thunks)
}

fn bench_batched_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("api_eval_many");
    for n in [16u64, 256] {
        let (rt, thunks) = warm_batch(n);
        group.bench_function(format!("single_eval_loop/{n}"), |b| {
            b.iter(|| {
                for &t in &thunks {
                    black_box(rt.eval(t).unwrap());
                }
            })
        });
        let (rt, thunks) = warm_batch(n);
        group.bench_function(format!("eval_many_batched/{n}"), |b| {
            b.iter(|| {
                for r in rt.eval_many(black_box(&thunks)) {
                    black_box(r.unwrap());
                }
            })
        });
        // Strict submission: the eval→force chain watched as one batch.
        // Warm both stages first so the rows isolate dispatch overhead
        // (each strict slot watches two memoized jobs instead of one).
        let (rt, thunks) = warm_batch(n);
        for r in rt.wait_batch(rt.submit_with(&thunks, SubmitOptions::strict())) {
            r.expect("strict warmup");
        }
        group.bench_function(format!("strict_eval_loop/{n}"), |b| {
            b.iter(|| {
                for &t in &thunks {
                    black_box(rt.eval_strict(t).unwrap());
                }
            })
        });
        group.bench_function(format!("strict_submit_batched/{n}"), |b| {
            b.iter(|| {
                for r in rt.wait_batch(rt.submit_with(black_box(&thunks), SubmitOptions::strict()))
                {
                    black_box(r.unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_dispatch);
criterion_main!(benches);
