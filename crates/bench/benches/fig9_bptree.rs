//! Criterion bench for the real-runtime side of Fig. 9: B+-tree lookups
//! through the Fix-level continuation-passing codelet, across arities.
//!
//! The paper's claim: because Fix invocations are cheap and selections
//! are pinpoint, *finer granularity wins* — smaller arity means less
//! data touched per query, and the added invocations cost microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use fix_workloads::bptree::{build, lookup_fix, register_lookup};
use fix_workloads::titles::generate_sorted_titles;
use fixpoint::Runtime;
use std::hint::black_box;

fn bench_bptree(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_bptree_real_runtime");
    group.sample_size(20);

    let n_keys = 16_384;
    let titles = generate_sorted_titles(17, n_keys);
    let pairs: Vec<(String, Vec<u8>)> = titles
        .iter()
        .map(|t| (t.clone(), format!("v:{t}").into_bytes()))
        .collect();

    for log_arity in [14u32, 10, 7, 4, 2] {
        let arity = 1usize << log_arity;
        group.bench_function(format!("lookup_arity_2^{log_arity}"), |b| {
            let rt = Runtime::builder().build();
            let tree = build(rt.store(), &pairs, arity);
            let proc_h = register_lookup(&rt);
            let mut q = 0usize;
            b.iter(|| {
                // Rotate through query keys; memoization is shared, so
                // forget it to measure cold traversals like the paper's
                // independent query sets.
                q = (q + 7919) % n_keys;
                rt.clear_memoization();
                black_box(lookup_fix(&rt, proc_h, &tree, &titles[q]).expect("hit"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bptree);
criterion_main!(benches);
