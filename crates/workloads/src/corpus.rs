//! Deterministic pseudo-text corpus generation (the Wikipedia stand-in).
//!
//! The paper's §5.3.2 counts a 3-character string over a 96 GiB dump of
//! English Wikipedia, sharded into 984 × 100 MiB chunks. The dump is not
//! available here; what the experiment actually depends on is shard
//! *count*, shard *size*, placement, and bytes scanned per core — so the
//! substitute is seeded pseudo-prose with the same shape, at a
//! configurable scale factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small synthetic vocabulary; word lengths roughly match English.
const VOCAB: &[&str] = &[
    "the",
    "of",
    "and",
    "in",
    "was",
    "article",
    "history",
    "city",
    "world",
    "state",
    "university",
    "system",
    "computer",
    "network",
    "known",
    "new",
    "first",
    "century",
    "population",
    "river",
    "music",
    "island",
    "language",
    "science",
    "group",
    "house",
    "party",
    "between",
    "several",
    "during",
    "under",
    "american",
    "national",
    "government",
    "also",
    "used",
    "which",
    "with",
    "from",
    "were",
    "their",
    "this",
    "that",
    "have",
    "been",
    "other",
    "more",
    "most",
    "some",
];

/// Generates one corpus shard deterministically from `(seed, index)`.
///
/// # Examples
///
/// ```
/// let a = fix_workloads::corpus::generate_shard(7, 3, 1024);
/// let b = fix_workloads::corpus::generate_shard(7, 3, 1024);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 1024);
/// ```
pub fn generate_shard(seed: u64, index: u64, size: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut out = Vec::with_capacity(size + 16);
    while out.len() < size {
        let word = VOCAB[rng.gen_range(0..VOCAB.len())];
        out.extend_from_slice(word.as_bytes());
        // Occasional punctuation and newlines, mostly spaces.
        match rng.gen_range(0..20) {
            0 => out.extend_from_slice(b".\n"),
            1 => out.extend_from_slice(b", "),
            _ => out.push(b' '),
        }
    }
    out.truncate(size);
    out
}

/// Counts non-overlapping occurrences of `needle` in `haystack`
/// (the paper's count-string semantics).
pub fn count_nonoverlapping(haystack: &[u8], needle: &[u8]) -> u64 {
    if needle.is_empty() || haystack.len() < needle.len() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        if &haystack[i..i + needle.len()] == needle {
            count += 1;
            i += needle.len();
        } else {
            i += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_deterministic_and_distinct() {
        let a = generate_shard(1, 0, 4096);
        let b = generate_shard(1, 0, 4096);
        let c = generate_shard(1, 1, 4096);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shards_look_like_text() {
        let shard = generate_shard(2, 0, 10_000);
        let spaces = shard.iter().filter(|b| **b == b' ').count();
        assert!(spaces > 1000, "prose should be mostly words and spaces");
        assert!(shard.iter().all(|b| b.is_ascii()));
    }

    #[test]
    fn counting_basics() {
        assert_eq!(count_nonoverlapping(b"abcabcabc", b"abc"), 3);
        assert_eq!(count_nonoverlapping(b"", b"x"), 0);
        assert_eq!(count_nonoverlapping(b"xyz", b""), 0);
        assert_eq!(count_nonoverlapping(b"ab", b"abc"), 0);
    }

    #[test]
    fn counting_is_nonoverlapping() {
        assert_eq!(count_nonoverlapping(b"aaaa", b"aa"), 2);
        assert_eq!(count_nonoverlapping(b"aaa", b"aa"), 1);
        assert_eq!(count_nonoverlapping(b"aaaaaa", b"aaa"), 2);
    }

    #[test]
    fn counting_agrees_with_naive_scan() {
        let hay = generate_shard(3, 0, 50_000);
        for needle in [&b"the"[..], b"an", b"ver", b"q"] {
            // Naive: scan with manual skip.
            let mut expect = 0u64;
            let mut i = 0;
            while i + needle.len() <= hay.len() {
                if &hay[i..i + needle.len()] == needle {
                    expect += 1;
                    i += needle.len();
                } else {
                    i += 1;
                }
            }
            assert_eq!(count_nonoverlapping(&hay, needle), expect);
        }
    }

    #[test]
    fn common_trigram_appears() {
        let shard = generate_shard(4, 7, 100_000);
        assert!(count_nonoverlapping(&shard, b"the") > 100);
    }
}
