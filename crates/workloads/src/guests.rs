//! Shared FixVM guest fixtures (the paper's Fig. 3 programs).
//!
//! The `fib`/`add` assembler sources live once, in
//! `tests/guests/*.fvm`, and are embedded here so every example, test,
//! and bench uses the same modules instead of repeating inline strings
//! (and so their content-addressed handles agree everywhere). Install
//! them on any backend with [`install_fib`] / [`install_add`].

use fix_core::api::InvocationApi;
use fix_core::error::Result;
use fix_core::handle::Handle;

/// `fib.fvm`: recursive Fibonacci over Fix thunks — input
/// `[rlimits, fib, add, n]`, returns `n` for `n < 2` and otherwise an
/// application of `add` to two strictly-encoded recursive calls
/// (memoization collapses the exponential call tree).
pub const FIB_FVM: &str = include_str!("../../../tests/guests/fib.fvm");

/// `add.fvm`: the trivial add codelet of Fig. 7a — input
/// `[rlimits, add, a, b]`, returns the u64 sum.
pub const ADD_FVM: &str = include_str!("../../../tests/guests/add.fvm");

/// Assembles and installs [`FIB_FVM`], returning its module handle.
pub fn install_fib<R: InvocationApi>(rt: &R) -> Result<Handle> {
    install(rt, FIB_FVM)
}

/// Assembles and installs [`ADD_FVM`], returning its module handle.
pub fn install_add<R: InvocationApi>(rt: &R) -> Result<Handle> {
    install(rt, ADD_FVM)
}

/// Assembles FixVM source and installs the module blob on any backend
/// (the generic counterpart of `fixpoint::Runtime::install_vm_module`).
pub fn install<R: InvocationApi>(rt: &R, source: &str) -> Result<Handle> {
    rt.install_module(fix_vm::assemble(source)?.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::Blob;
    use fix_core::limits::ResourceLimits;
    use fixpoint::Runtime;

    #[test]
    fn fixtures_assemble_and_run() {
        let rt = Runtime::builder().build();
        let fib = install_fib(&rt).unwrap();
        let add = install_add(&rt).unwrap();
        let thunk = rt
            .apply(
                ResourceLimits::default_limits(),
                fib,
                &[add, rt.put_blob(Blob::from_u64(10))],
            )
            .unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 55);
    }

    #[test]
    fn fixture_handles_agree_across_backends() {
        // Content addressing: both backends install identical modules.
        let rt = Runtime::builder().build();
        let cc = fix_cluster::ClusterClient::builder().build().unwrap();
        assert_eq!(install_add(&rt).unwrap(), install_add(&cc).unwrap());
        assert_eq!(install_fib(&rt).unwrap(), install_fib(&cc).unwrap());
    }

    #[test]
    fn embedded_source_matches_runtime_installer() {
        let rt = Runtime::builder().build();
        assert_eq!(
            install_add(&rt).unwrap(),
            rt.install_vm_module(ADD_FVM).unwrap()
        );
    }
}
