//! Map-reduce as a reusable paradigm on Fix (paper §6: the burden of
//! I/O externalization "could be lifted by … providing implementations
//! of common programming paradigms, e.g. map-reduce, on Fix").
//!
//! A job is described *entirely* as Fix objects before anything runs:
//! one lazy Application per input, then a binary tree of reduce
//! Applications whose arguments are Strict encodes of their children.
//! The caller gets back a single Thunk — evaluating it lets the
//! platform see the whole dataflow (every footprint, every dependency)
//! and schedule map tasks in parallel, merge eagerly, and memoize every
//! stage. Nothing about the pattern is workload-specific; `count-string`
//! (Fig. 8b) is one instantiation.

use fix_core::api::{Evaluator, InvocationApi};
use fix_core::error::Result;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;

/// A map-reduce job description: procedures plus per-invocation limits.
#[derive(Debug, Clone, Copy)]
pub struct MapReduce {
    /// The map procedure: `[limits, proc, input, extra...] → value`.
    pub map_proc: Handle,
    /// The reduce procedure: `[limits, proc, a, b] → value` — must be
    /// associative over the map outputs for the tree shape to be
    /// deterministic in *value* (it always is in shape).
    pub reduce_proc: Handle,
    /// Resource limits stamped on every invocation.
    pub limits: ResourceLimits,
}

impl MapReduce {
    /// Describes the job over `inputs`, with `extra_map_args` appended
    /// to every map invocation (e.g. the needle of count-string).
    /// Returns the root Thunk — **nothing has run yet**.
    pub fn describe<R: InvocationApi>(
        &self,
        rt: &R,
        inputs: &[Handle],
        extra_map_args: &[Handle],
    ) -> Result<Handle> {
        assert!(!inputs.is_empty(), "map-reduce over no inputs");
        // Map layer: one lazy application per input, strictly encoded so
        // reducers receive accessible values.
        let mut layer: Vec<Handle> = inputs
            .iter()
            .map(|&input| {
                let mut args = vec![input];
                args.extend_from_slice(extra_map_args);
                rt.apply(self.limits, self.map_proc, &args)?.strict()
            })
            .collect::<Result<_>>()?;

        // Binary reduction to a single root.
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    rt.apply(self.limits, self.reduce_proc, &[pair[0], pair[1]])?
                        .strict()?
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        // The root is an encode over the final application (or, for a
        // single input, over its map); hand back the thunk itself.
        layer[0].encoded_thunk()
    }

    /// Describes and evaluates the job, returning the final value.
    pub fn run<R: InvocationApi + Evaluator>(
        &self,
        rt: &R,
        inputs: &[Handle],
        extra_map_args: &[Handle],
    ) -> Result<Handle> {
        let root = self.describe(rt, inputs, extra_map_args)?;
        rt.eval(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordcount::{register_count_string, register_merge_counts, store_shards};
    use fix_core::data::Blob;
    use fixpoint::Runtime;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    fn job(rt: &Runtime) -> MapReduce {
        MapReduce {
            map_proc: register_count_string(rt),
            reduce_proc: register_merge_counts(rt),
            limits: ResourceLimits::default_limits(),
        }
    }

    #[test]
    fn describe_runs_nothing() {
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, 3, 8, 8 << 10);
        let mr = job(&rt);
        let needle = rt.put_blob(Blob::from_slice(b"the"));
        let root = mr.describe(&rt, &shards, &[needle]).unwrap();
        assert!(root.is_thunk());
        assert_eq!(
            rt.engine().stats.procedures_run.load(Ordering::Relaxed),
            0,
            "description must be pure"
        );
        // The whole job is 8 maps + 7 merges once evaluated.
        rt.eval(root).unwrap();
        assert_eq!(rt.engine().stats.procedures_run.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn generic_combinator_matches_direct_count() {
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, 9, 11, 16 << 10);
        let needle = rt.put_blob(Blob::from_slice(b"of"));
        let mr = job(&rt);
        let via_combinator = rt
            .get_u64(mr.run(&rt, &shards, &[needle]).unwrap())
            .unwrap();
        let direct: u64 = (0..11)
            .map(|i| {
                crate::corpus::count_nonoverlapping(
                    &crate::corpus::generate_shard(9, i, 16 << 10),
                    b"of",
                )
            })
            .sum();
        assert_eq!(via_combinator, direct);
    }

    #[test]
    fn single_input_skips_the_reduce() {
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, 5, 1, 4 << 10);
        let mr = job(&rt);
        let needle = rt.put_blob(Blob::from_slice(b"a"));
        let out = mr.run(&rt, &shards, &[needle]).unwrap();
        assert!(rt.get_u64(out).unwrap() > 0);
        // 1 map, 0 merges.
        assert_eq!(rt.engine().stats.procedures_run.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn works_with_any_procedures() {
        // A different instantiation: map = byte-length, reduce = max.
        let rt = Runtime::builder().build();
        let len_proc = rt.register_native(
            "mr/len",
            Arc::new(|ctx| {
                let b = ctx.arg_blob(0)?;
                ctx.host
                    .create_blob((b.len() as u64).to_le_bytes().to_vec())
            }),
        );
        let max_proc = rt.register_native(
            "mr/max",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
                let b = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
                ctx.host.create_blob(a.max(b).to_le_bytes().to_vec())
            }),
        );
        let inputs: Vec<Handle> = [100usize, 7, 345, 20]
            .iter()
            .map(|&n| rt.put_blob(Blob::from_vec(vec![0xAA; n])))
            .collect();
        let mr = MapReduce {
            map_proc: len_proc,
            reduce_proc: max_proc,
            limits: ResourceLimits::default_limits(),
        };
        let out = mr.run(&rt, &inputs, &[]).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 345);
    }

    #[test]
    fn memoization_spans_jobs_sharing_inputs() {
        // Two jobs over overlapping shards: shared map stages run once.
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, 4, 6, 8 << 10);
        let mr = job(&rt);
        let needle = rt.put_blob(Blob::from_slice(b"the"));
        mr.run(&rt, &shards[..4], &[needle]).unwrap();
        let before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        mr.run(&rt, &shards[..6], &[needle]).unwrap();
        let delta = rt.engine().stats.procedures_run.load(Ordering::Relaxed) - before;
        // Only the 2 new maps + the new merge spine run; the first four
        // map results come from the relation cache.
        assert!(delta <= 2 + 5, "ran {delta} procedures");
    }

    #[test]
    fn parallel_workers_agree_with_inline() {
        let rt1 = Runtime::builder().build();
        let rt4 = Runtime::builder().workers(4).build();
        let needle1 = rt1.put_blob(Blob::from_slice(b"and"));
        let needle4 = rt4.put_blob(Blob::from_slice(b"and"));
        let s1 = store_shards(&rt1, 8, 12, 8 << 10);
        let s4 = store_shards(&rt4, 8, 12, 8 << 10);
        let a = job(&rt1).run(&rt1, &s1, &[needle1]).unwrap();
        let b = job(&rt4).run(&rt4, &s4, &[needle4]).unwrap();
        assert_eq!(rt1.get_u64(a).unwrap(), rt4.get_u64(b).unwrap());
    }
}
