//! The count-string workload (paper §5.3.2, Fig. 8b) and the one-off
//! function workload (§5.3.1, Fig. 8a).
//!
//! Two procedures, exactly as the paper describes: `count-string` takes
//! a corpus chunk and a needle and reports the number of non-overlapping
//! occurrences; `merge-counts` sums two counts in a binary reduction.
//! Both run for real on the Fixpoint runtime; the same workload also
//! compiles to a [`JobGraph`] for the simulated 10-node cluster.

use crate::corpus::{count_nonoverlapping, generate_shard};
use fix_cluster::{JobGraph, JobGraphBuilder, TaskId, TaskSpec};
use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
use fix_core::data::Blob;
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fix_netsim::{NodeId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Registers `count-string`: `[rl, proc, chunk, needle] -> u64 blob`.
pub fn register_count_string<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "wordcount/count-string",
        Arc::new(|ctx| {
            let chunk = ctx.arg_blob(0)?;
            let needle = ctx.arg_blob(1)?;
            let n = count_nonoverlapping(chunk.as_slice(), needle.as_slice());
            ctx.host.create_blob(n.to_le_bytes().to_vec())
        }),
    )
}

/// Registers `merge-counts`: `[rl, proc, a, b] -> u64 blob`.
pub fn register_merge_counts<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "wordcount/merge-counts",
        Arc::new(|ctx| {
            let a = ctx.arg_blob(0)?.as_u64().unwrap_or(0);
            let b = ctx.arg_blob(1)?.as_u64().unwrap_or(0);
            ctx.host.create_blob((a + b).to_le_bytes().to_vec())
        }),
    )
}

/// Runs the full map-reduce for real on a runtime: counts `needle`
/// across `shards` with a binary merge reduction, entirely as Fix
/// thunks/encodes — an instantiation of the generic
/// [`MapReduce`](crate::mapreduce::MapReduce) paradigm.
pub fn run_wordcount_fix<R: InvocationApi + Evaluator>(
    rt: &R,
    shards: &[Handle],
    needle: &[u8],
) -> fix_core::Result<u64> {
    let mr = crate::mapreduce::MapReduce {
        map_proc: register_count_string(rt),
        reduce_proc: register_merge_counts(rt),
        limits: ResourceLimits::default_limits(),
    };
    let needle_h = rt.put_blob(Blob::from_slice(needle));
    let result = mr.run(rt, shards, &[needle_h])?;
    rt.get_u64(result)
}

/// Generates and stores corpus shards, returning their handles.
pub fn store_shards<R: ObjectApi>(
    rt: &R,
    seed: u64,
    n_shards: usize,
    shard_size: usize,
) -> Vec<Handle> {
    (0..n_shards)
        .map(|i| rt.put_blob(Blob::from_vec(generate_shard(seed, i as u64, shard_size))))
        .collect()
}

// ----------------------------------------------------------------------
// Cluster graphs.
// ----------------------------------------------------------------------

/// Parameters of the Fig. 8b cluster workload.
#[derive(Debug, Clone)]
pub struct Fig8bParams {
    /// Number of corpus shards (paper: 984).
    pub n_shards: usize,
    /// Shard size in bytes (paper: 100 MiB).
    pub shard_size: u64,
    /// Worker nodes to scatter shards across.
    pub nodes: Vec<NodeId>,
    /// Per-core scan rate in bytes/s (calibrated so ten 32-core nodes
    /// finish 984 × 100 MiB in ≈3 s, as in the paper: ≈100 MB/s).
    pub scan_bytes_per_s: u64,
    /// Merge-task compute time.
    pub merge_us: Time,
    /// Placement RNG seed (shards are scattered randomly, like the
    /// paper's setup).
    pub seed: u64,
}

impl Default for Fig8bParams {
    fn default() -> Self {
        Fig8bParams {
            n_shards: 984,
            shard_size: 100 << 20,
            nodes: (0..10).map(NodeId).collect(),
            scan_bytes_per_s: 100_000_000,
            merge_us: 50,
            seed: 8,
        }
    }
}

/// Builds the Fig. 8b job graph: `count-string` over every shard, then a
/// binary `merge-counts` reduction.
pub fn fig8b_graph(p: &Fig8bParams) -> JobGraph {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = JobGraphBuilder::new();
    let scan_us = |bytes: u64| (bytes as u128 * 1_000_000 / p.scan_bytes_per_s as u128) as Time;

    let mut layer: Vec<TaskId> = (0..p.n_shards)
        .map(|_| {
            let node = p.nodes[rng.gen_range(0..p.nodes.len())];
            let chunk = b.object_at(p.shard_size, &[node]);
            b.task(TaskSpec {
                inputs: vec![chunk],
                deps: vec![],
                compute_us: scan_us(p.shard_size),
                cores: 1,
                ram: p.shard_size + (64 << 20),
                output_size: 8,
                output_hint: Some(8),
                func: 1,
            })
        })
        .collect();

    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.task(TaskSpec {
                    inputs: vec![],
                    deps: vec![pair[0], pair[1]],
                    compute_us: p.merge_us,
                    cores: 1,
                    ram: 64 << 20,
                    output_size: 8,
                    output_hint: Some(8),
                    func: 2,
                }));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    b.build()
}

/// Parameters of the Fig. 8a one-off-function workload.
#[derive(Debug, Clone)]
pub struct Fig8aParams {
    /// Number of invocations (paper: 1024).
    pub n_tasks: usize,
    /// The storage node holding every input (150 ms away).
    pub storage: NodeId,
    /// Input size per task (small objects; latency-dominated).
    pub input_size: u64,
    /// Per-task compute once the input is local.
    pub compute_us: Time,
    /// RAM requested per invocation (paper: 1 GB).
    pub ram: u64,
}

impl Default for Fig8aParams {
    fn default() -> Self {
        Fig8aParams {
            n_tasks: 1024,
            storage: NodeId(1),
            input_size: 64 << 10,
            compute_us: 100,
            ram: 1 << 30,
        }
    }
}

/// Builds the Fig. 8a job graph: independent tasks, each reading one
/// input that lives behind the high-latency storage node.
pub fn fig8a_graph(p: &Fig8aParams) -> JobGraph {
    let mut b = JobGraphBuilder::new();
    for _ in 0..p.n_tasks {
        let input = b.object_at(p.input_size, &[p.storage]);
        b.task(TaskSpec {
            inputs: vec![input],
            deps: vec![],
            compute_us: p.compute_us,
            cores: 1,
            ram: p.ram,
            output_size: 8,
            output_hint: Some(8),
            func: 1,
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixpoint::Runtime;

    #[test]
    fn real_wordcount_matches_direct_count() {
        let rt = Runtime::builder().workers(4).build();
        let shard_size = 64 << 10;
        let shards = store_shards(&rt, 5, 16, shard_size);
        let total = run_wordcount_fix(&rt, &shards, b"the").unwrap();
        let expect: u64 = (0..16)
            .map(|i| count_nonoverlapping(&generate_shard(5, i, shard_size), b"the"))
            .sum();
        assert_eq!(total, expect);
        assert!(expect > 100, "corpus should contain plenty of 'the'");
    }

    #[test]
    fn real_wordcount_single_threaded_matches_parallel() {
        let rt1 = Runtime::builder().build();
        let rt4 = Runtime::builder().workers(4).build();
        let shards1 = store_shards(&rt1, 6, 9, 16 << 10);
        let shards4 = store_shards(&rt4, 6, 9, 16 << 10);
        let a = run_wordcount_fix(&rt1, &shards1, b"of").unwrap();
        let b = run_wordcount_fix(&rt4, &shards4, b"of").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wordcount_memoizes_repeat_queries() {
        use std::sync::atomic::Ordering;
        let rt = Runtime::builder().build();
        let shards = store_shards(&rt, 7, 8, 8 << 10);
        let a = run_wordcount_fix(&rt, &shards, b"and").unwrap();
        let runs = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        let b = run_wordcount_fix(&rt, &shards, b"and").unwrap();
        assert_eq!(a, b);
        assert_eq!(
            rt.engine().stats.procedures_run.load(Ordering::Relaxed),
            runs,
            "identical job must be fully memoized"
        );
    }

    #[test]
    fn fig8b_graph_shape() {
        let p = Fig8bParams {
            n_shards: 100,
            shard_size: 1 << 20,
            ..Fig8bParams::default()
        };
        let g = fig8b_graph(&p);
        assert_eq!(g.tasks.len(), 100 + 99);
        assert_eq!(g.sinks().len(), 1);
        // All shards placed on the ten nodes.
        let placed = g
            .objects
            .iter()
            .filter(|o| !o.initial_locations.is_empty())
            .count();
        assert_eq!(placed, 100);
    }

    #[test]
    fn fig8a_graph_shape() {
        let g = fig8a_graph(&Fig8aParams::default());
        assert_eq!(g.tasks.len(), 1024);
        assert!(g
            .objects
            .iter()
            .filter(|o| !o.initial_locations.is_empty())
            .all(|o| o.initial_locations == vec![NodeId(1)]));
    }
}
