//! A key-value store as an on-Fix B+ tree (paper §5.4, Fig. 9, Table 2).
//!
//! Each node is a Fix Tree `[keys-blob, entry_1, ..., entry_k]`: leaves
//! hold value Refs, internal nodes hold child Refs, and the keys blob
//! carries a node-type flag plus the (length-prefixed) keys — for
//! internal nodes, the *maximum key* of each child's subtree.
//!
//! Because children and values are Refs selected by *pinpoint*
//! Selection thunks, a lookup's data footprint per level is just one
//! keys blob (`O(a · key size)`), not the whole node — the property
//! Table 2 credits for Fix's advantage at fine granularity.

use fix_core::api::{Evaluator, InvocationApi, ObjectApi};
use fix_core::data::{Blob, Tree};
use fix_core::error::{Error, Result};
use fix_core::handle::{EncodeStyle, Handle};
use fix_core::invocation::{Invocation, Selection};
use fix_core::limits::ResourceLimits;
use fix_storage::Store;
use std::sync::Arc;

/// The parsed keys blob of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeKeys {
    /// True for leaves (entries are values), false for internal nodes
    /// (entries are children and keys are subtree maxima).
    pub is_leaf: bool,
    /// The keys, in order.
    pub keys: Vec<String>,
}

impl NodeKeys {
    /// Serializes to the canonical keys-blob format.
    pub fn to_blob(&self) -> Blob {
        let mut out = Vec::new();
        out.push(if self.is_leaf { 0 } else { 1 });
        out.extend_from_slice(&(self.keys.len() as u32).to_le_bytes());
        for k in &self.keys {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
        }
        Blob::from_vec(out)
    }

    /// Parses a keys blob.
    pub fn from_blob(blob: &Blob) -> Result<NodeKeys> {
        let data = blob.as_slice();
        let fail = |r: &str| Error::Trap(format!("malformed b+tree keys blob: {r}"));
        if data.len() < 5 {
            return Err(fail("too short"));
        }
        let is_leaf = match data[0] {
            0 => true,
            1 => false,
            _ => return Err(fail("bad node flag")),
        };
        let count = u32::from_le_bytes([data[1], data[2], data[3], data[4]]) as usize;
        let mut pos = 5;
        let mut keys = Vec::with_capacity(count);
        for _ in 0..count {
            if pos + 2 > data.len() {
                return Err(fail("truncated key length"));
            }
            let len = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
            pos += 2;
            if pos + len > data.len() {
                return Err(fail("truncated key"));
            }
            keys.push(
                String::from_utf8(data[pos..pos + len].to_vec())
                    .map_err(|_| fail("key not UTF-8"))?,
            );
            pos += len;
        }
        Ok(NodeKeys { is_leaf, keys })
    }
}

/// A built B+ tree: the root handle plus shape metadata.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    /// Root node tree (accessible handle).
    pub root: Handle,
    /// Maximum children per node.
    pub arity: usize,
    /// Number of levels (1 = root is a leaf).
    pub depth: usize,
    /// Number of keys.
    pub len: usize,
}

/// Bulk-loads a B+ tree from sorted `(key, value)` pairs.
///
/// # Panics
///
/// Panics if `arity < 2` or the keys are not strictly sorted (builder
/// misuse is a programming error).
pub fn build(store: &Store, pairs: &[(String, Vec<u8>)], arity: usize) -> BPlusTree {
    assert!(arity >= 2, "arity must be at least 2");
    assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "keys must be strictly sorted"
    );
    assert!(!pairs.is_empty(), "tree must not be empty");

    // Build the leaf layer: (max_key, node_handle).
    let mut layer: Vec<(String, Handle)> = pairs
        .chunks(arity)
        .map(|chunk| {
            let keys = NodeKeys {
                is_leaf: true,
                keys: chunk.iter().map(|(k, _)| k.clone()).collect(),
            };
            let mut slots = vec![store.put_blob(keys.to_blob())];
            for (_, v) in chunk {
                slots.push(store.put_blob(Blob::from_slice(v)).as_ref_handle());
            }
            let node = store.put_tree(Tree::from_handles(slots));
            (chunk.last().expect("nonempty chunk").0.clone(), node)
        })
        .collect();

    let mut depth = 1;
    while layer.len() > 1 {
        depth += 1;
        layer = layer
            .chunks(arity)
            .map(|chunk| {
                let keys = NodeKeys {
                    is_leaf: false,
                    keys: chunk.iter().map(|(k, _)| k.clone()).collect(),
                };
                let mut slots = vec![store.put_blob(keys.to_blob())];
                for (_, child) in chunk {
                    slots.push(child.as_ref_handle());
                }
                let node = store.put_tree(Tree::from_handles(slots));
                (chunk.last().expect("nonempty chunk").0.clone(), node)
            })
            .collect();
    }
    BPlusTree {
        root: layer[0].1,
        arity,
        depth,
        len: pairs.len(),
    }
}

/// Statistics from a trusted lookup (the "data accessed" column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Nodes visited (= levels traversed).
    pub nodes_visited: u64,
    /// Bytes of keys blobs read.
    pub key_bytes_read: u64,
}

/// Trusted (runtime-side) lookup, for oracles and stats.
pub fn lookup_trusted(
    store: &Store,
    tree: &BPlusTree,
    key: &str,
) -> Result<(Option<Vec<u8>>, LookupStats)> {
    let mut stats = LookupStats::default();
    let mut node = tree.root;
    loop {
        let t = store.get_tree(node)?;
        let keys_blob = store.get_blob(t.get(0).expect("keys slot"))?;
        stats.nodes_visited += 1;
        stats.key_bytes_read += keys_blob.len() as u64;
        let keys = NodeKeys::from_blob(&keys_blob)?;
        if keys.is_leaf {
            return Ok(match keys.keys.iter().position(|k| k == key) {
                Some(i) => {
                    let v = store.get_blob(t.get(i + 1).expect("value slot"))?;
                    (Some(v.as_slice().to_vec()), stats)
                }
                None => (None, stats),
            });
        }
        // First child whose subtree maximum is >= key.
        let idx = match keys.keys.iter().position(|max| key <= max.as_str()) {
            Some(i) => i,
            None => return Ok((None, stats)), // Beyond the largest key.
        };
        node = t.get(idx + 1).expect("child slot").as_object_handle();
    }
}

/// Registers the Fix-level lookup codelet (continuation-passing, one
/// node per invocation — the paper's fine-grained decomposition).
///
/// Input: `[rlimits, proc, key, keys-blob, node]` where `keys-blob` is
/// accessible and `node` is (typically) a TreeRef.
pub fn register_lookup<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "bptree/lookup",
        Arc::new(|ctx| {
            let input = ctx.input_tree()?;
            let rlimit = input.get(0).expect("limits");
            let self_proc = input.get(1).expect("proc");
            let key_blob = ctx.arg_blob(0)?;
            let keys_blob = ctx.arg_blob(1)?;
            let node = ctx.arg(2)?;
            let key = String::from_utf8(key_blob.as_slice().to_vec())
                .map_err(|_| Error::Trap("key not UTF-8".into()))?;
            let keys = NodeKeys::from_blob(&keys_blob)?;

            if keys.is_leaf {
                let i = keys
                    .keys
                    .iter()
                    .position(|k| *k == key)
                    .ok_or_else(|| Error::Trap(format!("key '{key}' not found")))?;
                // The value, as a pinpoint selection — never fetched here.
                let sel = Selection::index(node, i as u64 + 1).to_tree();
                let sel_h = ctx.host.create_tree(sel.entries().to_vec())?;
                return sel_h.selection();
            }

            let i = keys
                .keys
                .iter()
                .position(|max| key <= *max)
                .ok_or_else(|| Error::Trap(format!("key '{key}' not found")))?;
            let child_sel = Selection::index(node, i as u64 + 1).to_tree();
            let child = ctx
                .host
                .create_tree(child_sel.entries().to_vec())?
                .selection()?;
            // The child's keys blob is needed next (strict); the child
            // node itself stays a Ref (shallow).
            let keys_sel = Selection::index(child, 0).to_tree();
            let x0 = ctx
                .host
                .create_tree(keys_sel.entries().to_vec())?
                .selection()?
                .encode(EncodeStyle::Strict)?;
            let x1 = child.encode(EncodeStyle::Shallow)?;
            let key_h = input.get(2).expect("key slot");
            let next = ctx
                .host
                .create_tree(vec![rlimit, self_proc, key_h, x0, x1])?;
            next.application()
        }),
    )
}

/// Looks up `key` through the Fix-level codelet; returns the value blob
/// handle.
pub fn lookup_fix<R: ObjectApi + Evaluator>(
    rt: &R,
    proc_h: Handle,
    tree: &BPlusTree,
    key: &str,
) -> Result<Handle> {
    let root_tree = rt.get_tree(tree.root)?;
    let keys_blob = root_tree.get(0).expect("keys slot");
    let inv = Invocation {
        limits: ResourceLimits::default_limits(),
        procedure: proc_h,
        args: vec![
            rt.put_blob(Blob::from_slice(key.as_bytes())),
            keys_blob,
            tree.root.as_ref_handle(),
        ],
    };
    let t = rt.put_tree(inv.to_tree());
    rt.eval(t.application()?)
}

// ----------------------------------------------------------------------
// Table 2 analytics and the Fig. 9 cost model.
// ----------------------------------------------------------------------

/// One row of the paper's Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// System name.
    pub system: &'static str,
    /// Function invocations per lookup.
    pub invocations: u64,
    /// Bytes accessed per lookup.
    pub data_accessed: u64,
    /// Maximum memory footprint in bytes.
    pub memory_footprint: u64,
}

/// The tree depth for `n` keys at `arity` (≥ 1).
pub fn depth_for(arity: usize, n: usize) -> u32 {
    let mut depth = 1u32;
    let mut capacity = arity as u128;
    while capacity < n as u128 {
        capacity *= arity as u128;
        depth += 1;
    }
    depth
}

/// Computes Table 2 for the given shape (sizes in bytes).
///
/// Formulas from the paper: per level, Fixpoint accesses only the keys
/// array (`a · key`); Ray accesses the keys array *and* the entry array
/// (`a · (key + entry)`); blocking Ray additionally accumulates every
/// level in memory.
pub fn table2(arity: u64, depth: u64, key_size: u64, entry_size: u64) -> Vec<Table2Row> {
    vec![
        Table2Row {
            system: "Fixpoint",
            invocations: depth,
            data_accessed: arity * depth * key_size,
            memory_footprint: arity * key_size,
        },
        Table2Row {
            system: "Ray (Continuation Passing)",
            invocations: 2 * depth,
            data_accessed: arity * depth * (key_size + entry_size),
            memory_footprint: arity * (key_size + entry_size),
        },
        Table2Row {
            system: "Ray (Blocking)",
            invocations: 1,
            data_accessed: arity * depth * (key_size + entry_size),
            memory_footprint: arity * depth * (key_size + entry_size),
        },
    ]
}

/// Closed-form Fig. 9 time model for one lookup, in µs.
///
/// Single-node execution: time = invocations × per-invocation overhead +
/// data accessed / load bandwidth (deserialization/scan). The overheads
/// come from the calibrated `fix-baselines`-style cost model; the
/// bandwidth default (100 MB/s) approximates Python-side
/// deserialization, documented in EXPERIMENTS.md.
pub fn fig9_time_us(
    invocations: u64,
    data_accessed: u64,
    per_invocation_us: u64,
    load_bandwidth_bytes_per_s: u64,
) -> u64 {
    invocations * per_invocation_us
        + (data_accessed as u128 * 1_000_000 / load_bandwidth_bytes_per_s.max(1) as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::titles::generate_sorted_titles;
    use fixpoint::Runtime;

    fn sample_tree(n: usize, arity: usize) -> (Runtime, BPlusTree, Vec<String>) {
        let rt = Runtime::builder().build();
        let titles = generate_sorted_titles(11, n);
        let pairs: Vec<(String, Vec<u8>)> = titles
            .iter()
            .map(|t| (t.clone(), format!("value-of-{t}").into_bytes()))
            .collect();
        let tree = build(rt.store(), &pairs, arity);
        (rt, tree, titles)
    }

    #[test]
    fn keys_blob_round_trip() {
        let keys = NodeKeys {
            is_leaf: false,
            keys: vec!["alpha".into(), "beta".into()],
        };
        assert_eq!(NodeKeys::from_blob(&keys.to_blob()).unwrap(), keys);
    }

    #[test]
    fn depth_matches_formula() {
        let (_, tree, _) = sample_tree(1000, 10);
        assert_eq!(tree.depth as u32, depth_for(10, 1000));
        assert_eq!(depth_for(10, 1000), 3);
        assert_eq!(depth_for(1 << 24, 1000), 1);
        assert_eq!(depth_for(2, 1024), 10);
    }

    #[test]
    fn trusted_lookup_agrees_with_oracle() {
        let (rt, tree, titles) = sample_tree(500, 8);
        for key in titles.iter().step_by(37) {
            let (v, _) = lookup_trusted(rt.store(), &tree, key).unwrap();
            assert_eq!(v.unwrap(), format!("value-of-{key}").into_bytes());
        }
        let (missing, _) = lookup_trusted(rt.store(), &tree, "ZZZZ_no_such_key").unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn fix_level_lookup_returns_values() {
        let (rt, tree, titles) = sample_tree(300, 4);
        let proc_h = register_lookup(&rt);
        for key in titles.iter().step_by(61) {
            let h = lookup_fix(&rt, proc_h, &tree, key).unwrap();
            let v = rt.get_blob(h).unwrap();
            assert_eq!(v.as_slice(), format!("value-of-{key}").as_bytes());
        }
    }

    #[test]
    fn fix_level_lookup_missing_key_errors() {
        let (rt, tree, _) = sample_tree(100, 4);
        let proc_h = register_lookup(&rt);
        let err = lookup_fix(&rt, proc_h, &tree, "AAAA_before_everything").unwrap_err();
        assert!(err.to_string().contains("not found"), "{err}");
    }

    #[test]
    fn invocations_scale_with_depth() {
        use std::sync::atomic::Ordering;
        let (rt, tree, titles) = sample_tree(256, 4);
        assert_eq!(tree.depth, 4); // 4^4 = 256.
        let proc_h = register_lookup(&rt);
        let before = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        lookup_fix(&rt, proc_h, &tree, &titles[123]).unwrap();
        let after = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        // One invocation per level (the paper's `d`).
        assert_eq!(after - before, tree.depth as u64);
    }

    #[test]
    fn data_accessed_shrinks_with_arity() {
        // The heart of Fig. 9: smaller arity => smaller keys blobs read.
        let (rt_hi, hi, titles) = sample_tree(4096, 4096); // Flat.
        let (rt_lo, lo, _) = sample_tree(4096, 8);
        let key = &titles[2048];
        let (_, s_hi) = lookup_trusted(rt_hi.store(), &hi, key).unwrap();
        let (_, s_lo) = lookup_trusted(rt_lo.store(), &lo, key).unwrap();
        assert!(s_hi.key_bytes_read > 8 * s_lo.key_bytes_read);
        assert!(s_lo.nodes_visited > s_hi.nodes_visited);
    }

    #[test]
    fn table2_shape() {
        let rows = table2(256, 3, 22, 32);
        assert_eq!(rows[0].invocations, 3);
        assert_eq!(rows[1].invocations, 6);
        assert_eq!(rows[2].invocations, 1);
        // Fix accesses less data than either Ray style.
        assert!(rows[0].data_accessed < rows[1].data_accessed);
        assert_eq!(rows[1].data_accessed, rows[2].data_accessed);
        // Blocking Ray's footprint accumulates across levels.
        assert!(rows[2].memory_footprint > rows[1].memory_footprint);
    }

    #[test]
    fn fig9_model_reproduces_crossover() {
        // As arity decreases, Ray CPS worsens (invocations × 1.29 ms
        // dominates) while Fix improves (less data): the paper's Fig. 9.
        let n = 6_000_000u64;
        let (key, entry, bw) = (22u64, 32u64, 100_000_000u64);
        let mut last_fix = u64::MAX;
        for log_a in [24u32, 12, 10, 8] {
            let a = 1u64 << log_a;
            let d = depth_for(a as usize, n as usize) as u64;
            let fix = fig9_time_us(d, a * d * key, 2, bw);
            let cps = fig9_time_us(2 * d, a * d * (key + entry), 1290, bw);
            assert!(fix < cps, "fix {fix} vs cps {cps} at arity 2^{log_a}");
            assert!(fix <= last_fix, "fix should improve as arity shrinks");
            last_fix = fix;
        }
        // At tiny arity, CPS is dominated by invocation count and loses
        // even to blocking Ray — the paper's observation.
        let a = 64u64;
        let d = depth_for(64, n as usize) as u64;
        let cps = fig9_time_us(2 * d, a * d * (key + entry), 1290, bw);
        let blocking = fig9_time_us(1, a * d * (key + entry), 1290, bw);
        assert!(blocking < cps);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fixpoint::Runtime;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The on-Fix B+ tree agrees with a `BTreeMap` oracle for any
        /// key set, arity, and probe pattern — both the trusted walk
        /// and the Fix-level continuation-passing codelet.
        #[test]
        fn lookups_match_btreemap_oracle(
            keys in proptest::collection::btree_set("[a-z]{1,12}", 2..80),
            arity in 2usize..16,
            probes in proptest::collection::vec(any::<u16>(), 1..8),
        ) {
            let rt = Runtime::builder().build();
            let keys: Vec<String> = keys.into_iter().collect();
            let pairs: Vec<(String, Vec<u8>)> = keys
                .iter()
                .map(|k| (k.clone(), format!("V:{k}").into_bytes()))
                .collect();
            let oracle: BTreeMap<&str, &[u8]> = pairs
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_slice()))
                .collect();
            let tree = build(rt.store(), &pairs, arity);
            prop_assert_eq!(tree.depth as u32, depth_for(arity, keys.len()));

            for p in &probes {
                let k = &keys[*p as usize % keys.len()];
                let (v, stats) = lookup_trusted(rt.store(), &tree, k).unwrap();
                prop_assert_eq!(v.as_deref(), oracle.get(k.as_str()).copied());
                prop_assert_eq!(stats.nodes_visited, tree.depth as u64);
            }
            // Keys outside the set are absent ('0' sorts before 'a').
            let (missing, _) = lookup_trusted(rt.store(), &tree, "0absent").unwrap();
            prop_assert!(missing.is_none());
            let (beyond, _) = lookup_trusted(rt.store(), &tree, "zzzzzzzzzzzzz").unwrap();
            prop_assert!(beyond.is_none());

            // The Fix-level codelet returns the same bytes.
            let proc_h = register_lookup(&rt);
            let k = &keys[probes[0] as usize % keys.len()];
            let h = lookup_fix(&rt, proc_h, &tree, k).unwrap();
            let got = rt.get_blob(h).unwrap();
            let expect = format!("V:{k}");
            prop_assert_eq!(got.as_slice(), expect.as_bytes());
        }

        /// Table-2 formulas hold structurally for any shape: Fix always
        /// accesses no more than either Ray style, and invocation counts
        /// follow `d` / `2d` / `1`.
        #[test]
        fn table2_orderings(
            arity in 2u64..1_000_000,
            depth in 1u64..12,
            key_size in 1u64..100,
            entry_size in 1u64..1_000,
        ) {
            let rows = table2(arity, depth, key_size, entry_size);
            prop_assert_eq!(rows[0].invocations, depth);
            prop_assert_eq!(rows[1].invocations, 2 * depth);
            prop_assert_eq!(rows[2].invocations, 1);
            prop_assert!(rows[0].data_accessed <= rows[1].data_accessed);
            prop_assert!(rows[0].memory_footprint <= rows[2].memory_footprint);
            prop_assert_eq!(rows[1].data_accessed, rows[2].data_accessed);
        }
    }
}
