//! A miniature Jinja-style template engine, for the `dynamic-html`
//! SeBS port (paper §5.6).
//!
//! Supports exactly what the benchmark's template needs:
//!
//! * `{{ var }}` — variable substitution;
//! * `{% for item in list %} ... {% endfor %}` — iteration, with
//!   `{{ item }}` available in the body.
//!
//! Unknown variables render as empty strings, like Jinja's default.

use fix_core::error::{Error, Result};
use std::collections::BTreeMap;

/// Template context: scalar variables and list variables.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// Scalar substitutions.
    pub vars: BTreeMap<String, String>,
    /// List substitutions (for `{% for %}`).
    pub lists: BTreeMap<String, Vec<String>>,
}

impl Context {
    /// Sets a scalar variable.
    pub fn set(&mut self, name: &str, value: impl Into<String>) -> &mut Self {
        self.vars.insert(name.to_string(), value.into());
        self
    }

    /// Sets a list variable.
    pub fn set_list(&mut self, name: &str, values: Vec<String>) -> &mut Self {
        self.lists.insert(name.to_string(), values);
        self
    }
}

/// Renders a template against a context.
///
/// # Examples
///
/// ```
/// use fix_workloads::template::{render, Context};
///
/// let mut ctx = Context::default();
/// ctx.set("name", "yuhan");
/// ctx.set_list("items", vec!["a".into(), "b".into()]);
/// let out = render(
///     "<h1>{{ name }}</h1>{% for i in items %}<li>{{ i }}</li>{% endfor %}",
///     &ctx,
/// ).unwrap();
/// assert_eq!(out, "<h1>yuhan</h1><li>a</li><li>b</li>");
/// ```
pub fn render(template: &str, ctx: &Context) -> Result<String> {
    let mut out = String::with_capacity(template.len());
    render_into(template, ctx, None, &mut out)?;
    Ok(out)
}

/// Renders `template` with an optional loop binding into `out`.
fn render_into(
    template: &str,
    ctx: &Context,
    binding: Option<(&str, &str)>,
    out: &mut String,
) -> Result<()> {
    let mut rest = template;
    while let Some(open) = rest
        .find("{{")
        .map(|i| (i, false))
        .into_iter()
        .chain(rest.find("{%").map(|i| (i, true)))
        .min()
    {
        let (idx, is_block) = open;
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        if !is_block {
            // {{ var }}
            let close = rest
                .find("}}")
                .ok_or_else(|| Error::Trap("unclosed '{{'".into()))?;
            let name = rest[2..close].trim();
            if let Some((bound, value)) = binding {
                if name == bound {
                    out.push_str(value);
                    rest = &rest[close + 2..];
                    continue;
                }
            }
            if let Some(v) = ctx.vars.get(name) {
                out.push_str(v);
            }
            rest = &rest[close + 2..];
        } else {
            // {% for x in list %} body {% endfor %}
            let close = rest
                .find("%}")
                .ok_or_else(|| Error::Trap("unclosed '{%'".into()))?;
            let directive = rest[2..close].trim().to_string();
            rest = &rest[close + 2..];
            let mut parts = directive.split_whitespace();
            match parts.next() {
                Some("for") => {
                    let var = parts
                        .next()
                        .ok_or_else(|| Error::Trap("for needs a variable".into()))?
                        .to_string();
                    if parts.next() != Some("in") {
                        return Err(Error::Trap("for syntax: for X in LIST".into()));
                    }
                    let list_name = parts
                        .next()
                        .ok_or_else(|| Error::Trap("for needs a list".into()))?;
                    let end = rest
                        .find("{% endfor %}")
                        .ok_or_else(|| Error::Trap("missing {% endfor %}".into()))?;
                    let body = &rest[..end];
                    let empty = Vec::new();
                    let items = ctx.lists.get(list_name).unwrap_or(&empty);
                    for item in items {
                        render_into(body, ctx, Some((&var, item)), out)?;
                    }
                    rest = &rest[end + "{% endfor %}".len()..];
                }
                Some("endfor") => {
                    return Err(Error::Trap("unexpected {% endfor %}".into()));
                }
                other => {
                    return Err(Error::Trap(format!("unknown directive {other:?}")));
                }
            }
        }
    }
    out.push_str(rest);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passes_through() {
        let ctx = Context::default();
        assert_eq!(render("hello world", &ctx).unwrap(), "hello world");
    }

    #[test]
    fn unknown_variables_render_empty() {
        let ctx = Context::default();
        assert_eq!(render("[{{ missing }}]", &ctx).unwrap(), "[]");
    }

    #[test]
    fn variables_substitute() {
        let mut ctx = Context::default();
        ctx.set("user", "keith").set("n", "42");
        assert_eq!(
            render("{{ user }} has {{ n }} items", &ctx).unwrap(),
            "keith has 42 items"
        );
    }

    #[test]
    fn loops_iterate() {
        let mut ctx = Context::default();
        ctx.set_list("xs", vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(
            render("{% for x in xs %}({{ x }}){% endfor %}", &ctx).unwrap(),
            "(1)(2)(3)"
        );
    }

    #[test]
    fn loop_body_can_use_outer_vars() {
        let mut ctx = Context::default();
        ctx.set("sep", "-");
        ctx.set_list("xs", vec!["a".into(), "b".into()]);
        assert_eq!(
            render("{% for x in xs %}{{ x }}{{ sep }}{% endfor %}", &ctx).unwrap(),
            "a-b-"
        );
    }

    #[test]
    fn empty_list_renders_nothing() {
        let mut ctx = Context::default();
        ctx.set_list("xs", vec![]);
        assert_eq!(
            render("a{% for x in xs %}X{% endfor %}b", &ctx).unwrap(),
            "ab"
        );
    }

    #[test]
    fn errors_on_malformed_templates() {
        let ctx = Context::default();
        assert!(render("{{ oops", &ctx).is_err());
        assert!(render("{% for x in xs %}no end", &ctx).is_err());
        assert!(render("{% endfor %}", &ctx).is_err());
        assert!(render("{% frob %}", &ctx).is_err());
    }
}
