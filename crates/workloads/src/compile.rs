//! The burst-parallel software-compilation workload (paper §5.5, Fig. 10).
//!
//! The paper compiles ≈2000 C files with a Fix-ported libclang and links
//! them with liblld. The substitute is a real (small) compilation
//! pipeline: a deterministic C-like source generator, a real lexer whose
//! token stream is reduced to a symbol table ("compilation"), and a link
//! step that merges object files and resolves symbol references. The
//! fan-out/reduce structure, per-file data sizes, and shared-header
//! dependencies match the paper's job.

use fix_cluster::{JobGraph, JobGraphBuilder, TaskSpec};
use fix_core::api::{Evaluator, InvocationApi};
use fix_core::data::Blob;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use fix_core::limits::ResourceLimits;
use fix_netsim::{NodeId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Source generation.
// ----------------------------------------------------------------------

/// Generates a deterministic C-like translation unit.
///
/// File `i` defines `fn_i_*` functions and calls into file `i-1`'s
/// (extern) symbols, giving the link step real cross-file references.
pub fn generate_source(seed: u64, index: u32, functions: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64) << 20);
    let mut out = String::new();
    out.push_str("#include \"common.h\"\n\n");
    if index > 0 {
        out.push_str(&format!("extern int fn_{}_0(int x);\n\n", index - 1));
    }
    for f in 0..functions {
        out.push_str(&format!("int fn_{index}_{f}(int x) {{\n"));
        out.push_str(&format!("    int acc = {};\n", rng.gen_range(1..100)));
        for _ in 0..rng.gen_range(2..6) {
            match rng.gen_range(0..3) {
                0 => out.push_str(&format!("    acc = acc * {} + x;\n", rng.gen_range(2..9))),
                1 => out.push_str(&format!(
                    "    if (x > {}) {{ acc = acc - x; }}\n",
                    rng.gen_range(0..50)
                )),
                _ => out.push_str(&format!(
                    "    while (acc > {}) {{ acc = acc / 2; }}\n",
                    rng.gen_range(100..1000)
                )),
            }
        }
        if index > 0 && f == 0 {
            out.push_str(&format!("    acc = acc + fn_{}_0(x);\n", index - 1));
        }
        out.push_str("    return acc;\n}\n\n");
    }
    out
}

// ----------------------------------------------------------------------
// The "compiler": a real lexer + symbol extraction.
// ----------------------------------------------------------------------

/// Token classes produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Number(u64),
    /// Any punctuation/operator character sequence.
    Punct(char),
    /// String literal (e.g. include paths).
    Str(String),
}

/// Lexes C-like source into tokens. Rejects unterminated strings.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == '#' {
            // Preprocessor directives: take the word after '#'.
            i += 1;
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_alphanumeric() {
                i += 1;
            }
            tokens.push(Token::Ident(format!("#{}", &source[start..i])));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token::Ident(source[start..i].to_string()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n = source[start..i]
                .parse()
                .map_err(|_| Error::Trap("number too large".into()))?;
            tokens.push(Token::Number(n));
        } else if c == '"' {
            let start = i + 1;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(Error::Trap("unterminated string literal".into()));
            }
            tokens.push(Token::Str(source[start..i].to_string()));
            i += 1;
        } else {
            tokens.push(Token::Punct(c));
            i += 1;
        }
    }
    Ok(tokens)
}

/// An "object file": defined and referenced symbols plus a size proxy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectFile {
    /// Symbols defined in this unit.
    pub defined: Vec<String>,
    /// Symbols referenced but not defined here.
    pub referenced: Vec<String>,
    /// Token count (a stand-in for code size).
    pub tokens: u64,
}

impl ObjectFile {
    /// Serializes: `defined\n...\n--\nreferenced\n...\n--\ntokens`.
    pub fn to_blob(&self) -> Blob {
        let mut out = String::new();
        for d in &self.defined {
            out.push_str(d);
            out.push('\n');
        }
        out.push_str("--\n");
        for r in &self.referenced {
            out.push_str(r);
            out.push('\n');
        }
        out.push_str("--\n");
        out.push_str(&self.tokens.to_string());
        Blob::from_vec(out.into_bytes())
    }

    /// Parses the serialization.
    pub fn from_blob(blob: &Blob) -> Result<ObjectFile> {
        let text = std::str::from_utf8(blob.as_slice())
            .map_err(|_| Error::Trap("object file not UTF-8".into()))?;
        let mut sections = text.split("--\n");
        let defined = sections
            .next()
            .unwrap_or("")
            .lines()
            .map(str::to_string)
            .collect();
        let referenced = sections
            .next()
            .unwrap_or("")
            .lines()
            .map(str::to_string)
            .collect();
        let tokens = sections
            .next()
            .unwrap_or("0")
            .trim()
            .parse()
            .map_err(|_| Error::Trap("bad token count".into()))?;
        Ok(ObjectFile {
            defined,
            referenced,
            tokens,
        })
    }
}

/// "Compiles" one translation unit: lex, then extract function
/// definitions (ident before '(' following `int` at statement start)
/// and extern references.
pub fn compile_unit(source: &str) -> Result<ObjectFile> {
    let tokens = lex(source)?;
    let mut obj = ObjectFile {
        tokens: tokens.len() as u64,
        ..ObjectFile::default()
    };
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Ident(kw) if kw == "extern" => {
                // extern int NAME (
                if let (Some(Token::Ident(_)), Some(Token::Ident(name))) =
                    (tokens.get(i + 1), tokens.get(i + 2))
                {
                    obj.referenced.push(name.clone());
                    i += 3;
                    continue;
                }
                i += 1;
            }
            Token::Ident(kw) if kw == "int" => {
                // int NAME ( ... ) { — a definition.
                if let (Some(Token::Ident(name)), Some(Token::Punct('('))) =
                    (tokens.get(i + 1), tokens.get(i + 2))
                {
                    obj.defined.push(name.clone());
                    i += 3;
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Ok(obj)
}

/// Links object files: merges symbol tables and checks that every
/// reference resolves. Returns the "executable" (a summary blob).
pub fn link(objects: &[ObjectFile]) -> Result<Blob> {
    let mut defined = BTreeMap::new();
    let mut total_tokens = 0u64;
    for (i, o) in objects.iter().enumerate() {
        total_tokens += o.tokens;
        for d in &o.defined {
            if defined.insert(d.clone(), i).is_some() {
                return Err(Error::Trap(format!("duplicate symbol '{d}'")));
            }
        }
    }
    for o in objects {
        for r in &o.referenced {
            if !defined.contains_key(r) {
                return Err(Error::Trap(format!("undefined reference to '{r}'")));
            }
        }
    }
    let out = format!(
        "FIXLINK01\nunits={}\nsymbols={}\ntokens={}\n",
        objects.len(),
        defined.len(),
        total_tokens
    );
    Ok(Blob::from_vec(out.into_bytes()))
}

// ----------------------------------------------------------------------
// Fix codelets + real end-to-end build.
// ----------------------------------------------------------------------

/// Registers the compile codelet: `[rl, proc, source] -> object blob`.
pub fn register_compile<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "compile/cc",
        Arc::new(|ctx| {
            let src = ctx.arg_blob(0)?;
            let text = std::str::from_utf8(src.as_slice())
                .map_err(|_| Error::Trap("source not UTF-8".into()))?;
            let obj = compile_unit(text)?;
            ctx.host.create_blob(obj.to_blob().as_slice().to_vec())
        }),
    )
}

/// Registers the link codelet: `[rl, proc, objects-tree] -> executable`.
pub fn register_link<R: InvocationApi>(rt: &R) -> Handle {
    rt.register_native(
        "compile/ld",
        Arc::new(|ctx| {
            let tree_h = ctx.arg(0)?;
            let tree = ctx.host.load_tree(tree_h)?;
            let mut objects = Vec::with_capacity(tree.len());
            for entry in tree.entries() {
                let blob = ctx.host.load_blob(entry.as_object_handle())?;
                objects.push(ObjectFile::from_blob(&blob)?);
            }
            let exe = link(&objects)?;
            ctx.host.create_blob(exe.as_slice().to_vec())
        }),
    )
}

/// Builds a whole project for real on the runtime: compiles `n_files`
/// generated sources in parallel (as lazy applications) and links the
/// results. Returns the executable blob handle.
pub fn build_project_fix<R: InvocationApi + Evaluator>(
    rt: &R,
    seed: u64,
    n_files: u32,
) -> Result<Handle> {
    let cc = register_compile(rt);
    let ld = register_link(rt);
    let limits = ResourceLimits::default_limits();
    let mut object_encodes = Vec::with_capacity(n_files as usize);
    for i in 0..n_files {
        let src = rt.put_blob(Blob::from_vec(generate_source(seed, i, 4).into_bytes()));
        object_encodes.push(rt.apply(limits, cc, &[src])?.strict()?);
    }
    // The link consumes a tree of (to-be-compiled) objects.
    let objects_tree = rt.put_tree(fix_core::data::Tree::from_handles(object_encodes));
    let thunk = rt.apply(limits, ld, &[objects_tree])?;
    rt.eval_strict(thunk)
}

// ----------------------------------------------------------------------
// The Fig. 10 cluster graph.
// ----------------------------------------------------------------------

/// Parameters for the Fig. 10 compile job.
#[derive(Debug, Clone)]
pub struct Fig10Params {
    /// Number of C files (paper: ≈2000).
    pub n_files: usize,
    /// Worker nodes.
    pub nodes: Vec<NodeId>,
    /// Where sources and headers start (client for Fixpoint, MinIO for
    /// the baselines — pass the right node).
    pub source_home: NodeId,
    /// Average source size in bytes.
    pub source_size: u64,
    /// Shared system + clang headers, needed by every compile.
    pub headers_size: u64,
    /// Per-file compile time.
    pub compile_us: Time,
    /// Link time.
    pub link_us: Time,
    /// Object file size.
    pub object_size: u64,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Fig10Params {
            n_files: 2000,
            nodes: (0..10).map(NodeId).collect(),
            source_home: NodeId(10),
            source_size: 8 << 10,
            // System + clang headers pulled by every translation unit.
            headers_size: 64 << 20,
            // Real clang on these units runs seconds per file: 2000 files
            // × 4 s over 320 cores ≈ 25 s of pure compute, which is the
            // bulk of the paper's 39.5 s Fixpoint result.
            compile_us: 4_000_000,
            link_us: 10_000_000,
            object_size: 32 << 10,
        }
    }
}

/// Builds the Fig. 10 job graph: N parallel compiles (each needs its
/// source + the shared headers), one link over all objects.
pub fn fig10_graph(p: &Fig10Params) -> JobGraph {
    let mut b = JobGraphBuilder::new();
    let headers = b.shared_object(p.headers_size, "headers", &[p.source_home]);
    let mut compiles = Vec::with_capacity(p.n_files);
    for _ in 0..p.n_files {
        let src = b.object_at(p.source_size, &[p.source_home]);
        compiles.push(b.task(TaskSpec {
            inputs: vec![src, headers],
            deps: vec![],
            compute_us: p.compile_us,
            cores: 1,
            ram: 512 << 20,
            output_size: p.object_size,
            output_hint: Some(p.object_size),
            func: 1, // libclang
        }));
    }
    b.task(TaskSpec {
        inputs: vec![],
        deps: compiles,
        compute_us: p.link_us,
        cores: 1,
        ram: 4 << 30,
        output_size: 4 << 20,
        output_hint: Some(4 << 20),
        func: 2, // liblld
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixpoint::Runtime;

    #[test]
    fn lexer_handles_the_generated_language() {
        let src = generate_source(1, 3, 4);
        let tokens = lex(&src).unwrap();
        assert!(tokens.len() > 50);
        assert!(tokens.contains(&Token::Ident("#include".into())));
        assert!(tokens.contains(&Token::Str("common.h".into())));
    }

    #[test]
    fn lexer_rejects_unterminated_strings() {
        assert!(lex("int x = \"oops").is_err());
    }

    #[test]
    fn compile_extracts_symbols() {
        let src = generate_source(1, 2, 3);
        let obj = compile_unit(&src).unwrap();
        assert_eq!(
            obj.defined,
            vec!["fn_2_0", "fn_2_1", "fn_2_2"],
            "one symbol per generated function"
        );
        assert_eq!(obj.referenced, vec!["fn_1_0"]);
        assert!(obj.tokens > 0);
    }

    #[test]
    fn object_file_round_trip() {
        let obj = compile_unit(&generate_source(2, 5, 2)).unwrap();
        let rt = ObjectFile::from_blob(&obj.to_blob()).unwrap();
        assert_eq!(rt, obj);
    }

    #[test]
    fn link_resolves_cross_file_references() {
        let objects: Vec<ObjectFile> = (0..10)
            .map(|i| compile_unit(&generate_source(3, i, 3)).unwrap())
            .collect();
        let exe = link(&objects).unwrap();
        let text = String::from_utf8(exe.as_slice().to_vec()).unwrap();
        assert!(text.contains("units=10"));
        assert!(text.contains("symbols=30"));
    }

    #[test]
    fn link_detects_undefined_references() {
        // File 5 references fn_4_0, which is missing without file 4.
        let objects = vec![compile_unit(&generate_source(3, 5, 2)).unwrap()];
        let err = link(&objects).unwrap_err();
        assert!(err.to_string().contains("undefined reference"), "{err}");
    }

    #[test]
    fn link_detects_duplicate_symbols() {
        let o = compile_unit(&generate_source(3, 0, 2)).unwrap();
        let err = link(&[o.clone(), o]).unwrap_err();
        assert!(err.to_string().contains("duplicate symbol"), "{err}");
    }

    #[test]
    fn real_end_to_end_build_on_fixpoint() {
        let rt = Runtime::builder().workers(4).build();
        let exe = build_project_fix(&rt, 4, 25).unwrap();
        let text = String::from_utf8(rt.get_blob(exe).unwrap().as_slice().to_vec()).unwrap();
        assert!(text.starts_with("FIXLINK01"), "{text}");
        assert!(text.contains("units=25"));
        // 25 compiles + 1 link.
        assert_eq!(
            rt.engine()
                .stats
                .procedures_run
                .load(std::sync::atomic::Ordering::Relaxed),
            26
        );
    }

    #[test]
    fn fig10_graph_shape() {
        let p = Fig10Params {
            n_files: 100,
            ..Fig10Params::default()
        };
        let g = fig10_graph(&p);
        assert_eq!(g.tasks.len(), 101);
        assert_eq!(g.sinks().len(), 1);
        // Every compile shares ONE headers object (content addressing).
        let headers = g
            .objects
            .iter()
            .filter(|o| o.size == p.headers_size)
            .count();
        assert_eq!(headers, 1);
    }
}
