//! Deterministic article-title generation (the 6 M Wikipedia titles
//! stand-in for the B+-tree experiment, paper §5.4).
//!
//! Titles average ≈22 bytes like the paper's dataset, are unique, and
//! come out lexicographically sortable for bulk-loading the B+ tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FIRST: &[&str] = &[
    "History",
    "Geography",
    "List",
    "Battle",
    "Treaty",
    "County",
    "Lake",
    "Mount",
    "River",
    "Province",
    "Kingdom",
    "Republic",
    "Empire",
    "Church",
    "Castle",
    "Bridge",
    "Museum",
    "Festival",
    "Symphony",
    "Railway",
];

const SECOND: &[&str] = &[
    "of_Albania",
    "of_Bavaria",
    "of_Cornwall",
    "of_Denmark",
    "of_Estonia",
    "of_Finland",
    "of_Galicia",
    "of_Hungary",
    "of_Iceland",
    "of_Jutland",
    "of_Kyoto",
    "of_Lorraine",
    "of_Moravia",
    "of_Norway",
    "of_Orkney",
    "of_Prussia",
    "of_Quebec",
    "of_Rome",
    "of_Saxony",
    "of_Tuscany",
];

/// Generates `n` unique titles (unsorted), deterministically.
pub fn generate_titles(seed: u64, n: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = FIRST[rng.gen_range(0..FIRST.len())];
        let b = SECOND[rng.gen_range(0..SECOND.len())];
        // A numeric disambiguator guarantees uniqueness (like Wikipedia's
        // parenthetical disambiguation) and spreads the keyspace.
        out.push(format!("{a}_{b}_{i:07}"));
    }
    out
}

/// Generates `n` unique titles, sorted (ready for B+-tree bulk load).
pub fn generate_sorted_titles(seed: u64, n: usize) -> Vec<String> {
    let mut titles = generate_titles(seed, n);
    titles.sort();
    titles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titles_are_unique_and_deterministic() {
        let a = generate_titles(9, 10_000);
        let b = generate_titles(9, 10_000);
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        for t in &a {
            assert!(set.insert(t), "duplicate title {t}");
        }
    }

    #[test]
    fn average_length_is_paper_like() {
        let titles = generate_titles(1, 5_000);
        let total: usize = titles.iter().map(String::len).sum();
        let avg = total as f64 / titles.len() as f64;
        // The paper reports ≈22 bytes average.
        assert!((18.0..32.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn sorted_variant_is_sorted() {
        let titles = generate_sorted_titles(2, 2_000);
        assert!(titles.windows(2).all(|w| w[0] < w[1]));
    }
}
