//! The two SeBS functions ported to Fix via Flatware (paper §5.6).
//!
//! * `dynamic-html` takes a user name, reads an HTML template from the
//!   Flatware filesystem, and renders it with the template engine;
//! * `compression` takes a directory ("bucket") name, gathers every file
//!   in it through Flatware, and produces an archive.
//!
//! Porting shape matches the paper: inputs arrive as command-line
//! arguments, data dependencies as files in a Flatware filesystem.

use crate::archive::create_archive;
use crate::template::{render, Context};
use fix_core::api::{InvocationApi, ObjectApi};
use fix_core::error::Result;
use fix_core::handle::Handle;
use flatware::{register_posix_program, EntryKind};
use std::sync::Arc;

/// The HTML template shipped with the dynamic-html benchmark.
pub const DYNAMIC_HTML_TEMPLATE: &str = r#"<!DOCTYPE html>
<html>
  <head><title>Randomly generated data.</title></head>
  <body>
    <p>Welcome {{ username }}!</p>
    <p>Data generated at: {{ timestamp }}</p>
    <ul>
    {% for item in random_numbers %}<li>{{ item }}</li>
    {% endfor %}</ul>
  </body>
</html>
"#;

/// Registers `dynamic-html`: argv = `[prog, username, n_items]`.
///
/// "Randomness" is deterministic (seeded from the username) because Fix
/// procedures cannot consume nondeterminism — exactly the delineation
/// the paper discusses in §6.
pub fn register_dynamic_html<R: InvocationApi>(rt: &R) -> Handle {
    register_posix_program(
        rt,
        "sebs/dynamic-html",
        Arc::new(|argv, world| {
            let username = argv.get(1).cloned().unwrap_or_else(|| "guest".into());
            let n: usize = argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
            let template_bytes = world.read_file("templates/template.html")?;
            let template = String::from_utf8(template_bytes.as_slice().to_vec())
                .map_err(|_| fix_core::Error::Trap("template not UTF-8".into()))?;

            // Deterministic "random" numbers from the username.
            let seed = fix_hash::hash(username.as_bytes());
            let numbers: Vec<String> = (0..n)
                .map(|i| {
                    let b = seed[i % 32] as u64;
                    ((b.wrapping_mul(2654435761) + i as u64) % 1_000_000).to_string()
                })
                .collect();

            let mut ctx = Context::default();
            ctx.set("username", username)
                .set("timestamp", "1970-01-01T00:00:00Z")
                .set_list("random_numbers", numbers);
            let html = render(&template, &ctx)?;
            world.print(&html);
            Ok(0)
        }),
    )
}

/// Registers `compression`: argv = `[prog, bucket_dir]`; stdout is the
/// archive bytes.
pub fn register_compression<R: InvocationApi>(rt: &R) -> Handle {
    register_posix_program(
        rt,
        "sebs/compression",
        Arc::new(|argv, world| {
            let bucket = argv.get(1).cloned().unwrap_or_else(|| "bucket".into());
            let entries = world.read_dir(&bucket)?;
            let mut files = Vec::new();
            for e in entries {
                if e.kind == EntryKind::File {
                    let contents = world.read_file(&format!("{bucket}/{}", e.name))?;
                    files.push((e.name.clone(), contents.as_slice().to_vec()));
                }
            }
            let archive = create_archive(&files);
            world.write(archive.as_slice());
            Ok(0)
        }),
    )
}

/// Builds the Flatware filesystem both benchmarks expect: the template
/// under `templates/` and some bucket files to compress.
pub fn build_sebs_fs<R: ObjectApi>(rt: &R, bucket_files: &[(String, Vec<u8>)]) -> Result<Handle> {
    let mut fs = flatware::FsBuilder::new();
    fs.add_file(
        "templates/template.html",
        DYNAMIC_HTML_TEMPLATE.as_bytes().to_vec(),
    )?;
    for (name, contents) in bucket_files {
        fs.add_file(&format!("bucket/{name}"), contents.clone())?;
    }
    Ok(fs.build(rt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::extract_archive;
    use fixpoint::Runtime;
    use flatware::run_program;

    #[test]
    fn dynamic_html_renders() {
        let rt = Runtime::builder().build();
        let root = build_sebs_fs(&rt, &[]).unwrap();
        let prog = register_dynamic_html(&rt);
        let (code, out) = run_program(&rt, prog, &["dynamic-html", "yuhan", "5"], root).unwrap();
        assert_eq!(code, 0);
        let html = String::from_utf8(out.as_slice().to_vec()).unwrap();
        assert!(html.contains("Welcome yuhan!"), "{html}");
        assert_eq!(html.matches("<li>").count(), 5);
    }

    #[test]
    fn dynamic_html_is_deterministic_per_user() {
        let rt = Runtime::builder().build();
        let root = build_sebs_fs(&rt, &[]).unwrap();
        let prog = register_dynamic_html(&rt);
        let (_, a) = run_program(&rt, prog, &["p", "alice", "3"], root).unwrap();
        let (_, b) = run_program(&rt, prog, &["p", "alice", "3"], root).unwrap();
        let (_, c) = run_program(&rt, prog, &["p", "bob", "3"], root).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn compression_archives_the_bucket() {
        let rt = Runtime::builder().build();
        let files = vec![
            ("one.txt".to_string(), b"first file".to_vec()),
            ("two.bin".to_string(), vec![7u8; 500]),
        ];
        let root = build_sebs_fs(&rt, &files).unwrap();
        let prog = register_compression(&rt);
        let (code, out) = run_program(&rt, prog, &["compression", "bucket"], root).unwrap();
        assert_eq!(code, 0);
        let extracted = extract_archive(&fix_core::data::Blob::from_slice(out.as_slice())).unwrap();
        assert_eq!(extracted, files);
    }

    #[test]
    fn compression_of_missing_bucket_fails() {
        let rt = Runtime::builder().build();
        let root = build_sebs_fs(&rt, &[]).unwrap();
        let prog = register_compression(&rt);
        assert!(run_program(&rt, prog, &["compression", "nope"], root).is_err());
    }
}
