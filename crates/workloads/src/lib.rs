//! `fix-workloads`: the paper's evaluation workloads, end to end.
//!
//! Every application the paper measures is implemented here twice over:
//! once *for real* against the Fixpoint runtime (guest codelets, Fix
//! trees, selections, encodes), and once as a [`fix_cluster::JobGraph`]
//! generator for the simulated 10-node cluster:
//!
//! * [`corpus`] / [`wordcount`] — the Wikipedia count-string map-reduce
//!   (Fig. 8b) and the one-off-function workload (Fig. 8a);
//! * [`titles`] / [`bptree`] — the B+-tree key-value store over Fix
//!   trees (Fig. 9 and Table 2);
//! * [`compile`] — the burst-parallel compilation job with a real lexer
//!   and linker (Fig. 10);
//! * [`template`] / [`archive`] / [`sebs`] — the SeBS `dynamic-html` and
//!   `compression` functions ported through Flatware (§5.6);
//! * [`guests`] — the shared FixVM guest fixtures (`fib`/`add`).
//!
//! Since the One Fix API refactor every real-runtime entry point here is
//! generic over the `fix_core::api` traits, so the same workload runs
//! unchanged on `fixpoint::Runtime`, `fix_cluster::ClusterClient`, or a
//! `fix_baselines::BaselineEvaluator`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod bptree;
pub mod compile;
pub mod corpus;
pub mod guests;
pub mod mapreduce;
pub mod sebs;
pub mod template;
pub mod titles;
pub mod wordcount;
