//! A miniature tar-style archiver, for the `compression` SeBS port
//! (paper §5.6).
//!
//! Format: magic `FIXAR01\0`, then per file: u16 name length, name,
//! u64 size, bytes. No compression — the benchmark's cost is dominated
//! by gathering the files, which is the part that exercises Flatware.

use fix_core::data::Blob;
use fix_core::error::{Error, Result};

/// The archive magic bytes.
pub const MAGIC: &[u8; 8] = b"FIXAR01\0";

/// Creates an archive from `(name, contents)` pairs.
pub fn create_archive(files: &[(String, Vec<u8>)]) -> Blob {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    for (name, contents) in files {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(contents.len() as u64).to_le_bytes());
        out.extend_from_slice(contents);
    }
    Blob::from_vec(out)
}

/// Extracts an archive back into `(name, contents)` pairs.
pub fn extract_archive(blob: &Blob) -> Result<Vec<(String, Vec<u8>)>> {
    let data = blob.as_slice();
    let fail = |r: &str| Error::Trap(format!("malformed archive: {r}"));
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(fail("bad magic"));
    }
    let mut pos = MAGIC.len();
    let mut files = Vec::new();
    while pos < data.len() {
        if pos + 2 > data.len() {
            return Err(fail("truncated name length"));
        }
        let name_len = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if pos + name_len + 8 > data.len() {
            return Err(fail("truncated header"));
        }
        let name = String::from_utf8(data[pos..pos + name_len].to_vec())
            .map_err(|_| fail("name not UTF-8"))?;
        pos += name_len;
        let mut size_bytes = [0u8; 8];
        size_bytes.copy_from_slice(&data[pos..pos + 8]);
        let size = u64::from_le_bytes(size_bytes) as usize;
        pos += 8;
        if pos + size > data.len() {
            return Err(fail("truncated contents"));
        }
        files.push((name, data[pos..pos + size].to_vec()));
        pos += size;
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let files = vec![
            ("a.txt".to_string(), b"hello".to_vec()),
            ("dir/b.bin".to_string(), vec![0u8; 1000]),
            ("empty".to_string(), vec![]),
        ];
        let blob = create_archive(&files);
        assert_eq!(extract_archive(&blob).unwrap(), files);
    }

    #[test]
    fn empty_archive() {
        let blob = create_archive(&[]);
        assert!(extract_archive(&blob).unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(extract_archive(&Blob::from_slice(b"not an archive")).is_err());
        let mut truncated = create_archive(&[("x".into(), vec![1, 2, 3])])
            .as_slice()
            .to_vec();
        truncated.truncate(truncated.len() - 2);
        assert!(extract_archive(&Blob::from_vec(truncated)).is_err());
    }

    #[test]
    fn deterministic_bytes() {
        let files = vec![("f".to_string(), b"data".to_vec())];
        assert_eq!(
            create_archive(&files).handle(),
            create_archive(&files).handle()
        );
    }
}
