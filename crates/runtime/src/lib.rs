//! `fixpoint`: the single-node Fix runtime.
//!
//! This crate implements the paper's §4: a runtime whose worker threads
//! share a job queue and a content-addressed storage, evaluate Fix
//! objects according to Fix semantics, and run guest procedures (FixVM
//! codelets or registered native codelets) without spawning processes —
//! which is where the ~microsecond invocation overhead of Fig. 7a comes
//! from.
//!
//! Entry points:
//!
//! * [`Runtime`] — the public API (Table 1 operations + evaluation);
//! * [`engine::Engine`] / [`engine::Job`] — the semantics core, also
//!   reused by the distributed engine in `fix-cluster`;
//! * [`registry::ProgramRegistry`] — native codelets;
//! * [`scheduler::Scheduler`] — dependency tracking over restartable
//!   jobs, driven inline or by a [`scheduler::WorkerPool`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cps;
pub mod engine;
pub mod recompute;
pub mod registry;
pub mod runtime;
pub mod scheduler;
mod submit;

pub use cps::{StepCtx, StepFn, StepOutcome};
pub use engine::{Engine, Job, Step};
pub use recompute::{EvictionOutcome, RecomputeReport};
pub use registry::{native_marker, NativeCtx, NativeFn, ProgramRegistry};
pub use runtime::{Runtime, RuntimeBuilder};
pub use scheduler::{Scheduler, WorkerPool};

#[cfg(test)]
mod tests {
    use super::*;
    use fix_core::data::{Blob, Tree};
    use fix_core::error::Error;
    use fix_core::handle::Kind;
    use fix_core::invocation::Invocation;
    use fix_core::limits::ResourceLimits;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn limits() -> ResourceLimits {
        ResourceLimits::default_limits()
    }

    /// add(a, b) as a native codelet.
    fn register_add(rt: &Runtime) -> fix_core::handle::Handle {
        rt.register_native(
            "add",
            Arc::new(|ctx| {
                let a = ctx.arg_blob(0)?.as_u64().expect("u64 arg");
                let b = ctx.arg_blob(1)?.as_u64().expect("u64 arg");
                ctx.host
                    .create_blob(a.wrapping_add(b).to_le_bytes().to_vec())
            }),
        )
    }

    #[test]
    fn native_add_end_to_end() {
        let rt = Runtime::builder().build();
        let add = register_add(&rt);
        let one = rt.put_blob(Blob::from_u64(1));
        let two = rt.put_blob(Blob::from_u64(2));
        let thunk = rt.apply(limits(), add, &[one, two]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 3);
    }

    #[test]
    fn vm_add_end_to_end() {
        let rt = Runtime::builder().build();
        let add = rt
            .install_vm_module(
                r#"
                func apply args=0 locals=0
                  const 0
                  const 2
                  tree.get
                  const 0
                  blob.read_u64
                  const 0
                  const 3
                  tree.get
                  const 0
                  blob.read_u64
                  add
                  blob.create_u64
                  ret_handle
                end
                "#,
            )
            .unwrap();
        let a = rt.put_blob(Blob::from_u64(20));
        let b = rt.put_blob(Blob::from_u64(22));
        let thunk = rt.apply(limits(), add, &[a, b]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 42);
        assert_eq!(rt.engine().stats.vm_runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn memoization_runs_procedure_once() {
        let rt = Runtime::builder().build();
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let proc_h = rt.register_native(
            "counting",
            Arc::new(move |ctx| {
                c2.fetch_add(1, Ordering::SeqCst);
                let v = ctx.arg_blob(0)?.as_u64().unwrap();
                ctx.host.create_blob((v * 2).to_le_bytes().to_vec())
            }),
        );
        let x = rt.put_blob(Blob::from_u64(21));
        let thunk = rt.apply(limits(), proc_h, &[x]).unwrap();
        let r1 = rt.eval(thunk).unwrap();
        let r2 = rt.eval(thunk).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(counter.load(Ordering::SeqCst), 1, "apply must be memoized");
    }

    #[test]
    fn identification_and_selection() {
        let rt = Runtime::builder().build();
        let a = rt.put_blob(Blob::from_vec(vec![1u8; 100]));
        let b = rt.put_blob(Blob::from_vec(vec![2u8; 100]));
        let tree = rt.put_tree(Tree::from_handles(vec![a, b]));

        // identity
        let ident = tree.identification().unwrap();
        assert_eq!(rt.eval(ident).unwrap(), tree);

        // select index 1
        let sel = rt.select(tree, 1).unwrap();
        assert_eq!(rt.eval(sel).unwrap(), b);

        // select range [0,2) -> new tree with both entries
        let sel2 = rt.select_range(tree, 0, 2).unwrap();
        let sub = rt.eval(sel2).unwrap();
        assert_eq!(rt.get_tree(sub).unwrap().entries(), &[a, b]);

        // blob range selection
        let sel3 = rt.select_range(a, 10, 20).unwrap();
        let slice = rt.eval(sel3).unwrap();
        assert_eq!(rt.get_blob(slice).unwrap().as_slice(), &[1u8; 10]);
    }

    #[test]
    fn selection_chains_through_nested_thunks() {
        // Fig. 4 style: select from the result of another selection.
        let rt = Runtime::builder().build();
        let inner_blob = rt.put_blob(Blob::from_vec(vec![7u8; 50]));
        let inner = rt.put_tree(Tree::from_handles(vec![inner_blob]));
        let outer = rt.put_tree(Tree::from_handles(vec![inner]));
        let sel_inner = rt.select(outer, 0).unwrap(); // -> inner tree
        let sel_leaf = rt.select(sel_inner, 0).unwrap(); // -> inner_blob
        assert_eq!(rt.eval(sel_leaf).unwrap(), inner_blob);
    }

    #[test]
    fn strict_encode_forces_shallow_keeps_ref() {
        let rt = Runtime::builder().build();
        let add = register_add(&rt);
        let one = rt.put_blob(Blob::from_u64(1));
        let two = rt.put_blob(Blob::from_u64(2));
        let inner = rt.apply(limits(), add, &[one, two]).unwrap();

        // A "pass-through" procedure that returns its third slot (arg 0).
        let first = rt.register_native("first-arg", Arc::new(|ctx| ctx.arg(0)));

        // Strict: the procedure sees the result as an accessible Object.
        let strict_thunk = rt
            .apply(limits(), first, &[inner.strict().unwrap()])
            .unwrap();
        let strict_out = rt.eval(strict_thunk).unwrap();
        assert!(strict_out.is_accessible());
        assert_eq!(rt.get_u64(strict_out).unwrap(), 3);

        // Shallow: the procedure sees a Ref (metadata only).
        let shallow_thunk = rt
            .apply(limits(), first, &[inner.shallow().unwrap()])
            .unwrap();
        let shallow_out = rt.eval(shallow_thunk).unwrap();
        assert!(matches!(shallow_out.kind(), Kind::Ref(_)));
        assert_eq!(shallow_out.size(), 8);
    }

    #[test]
    fn tail_calls_trampoline() {
        // A procedure that returns a thunk: countdown(n) -> countdown(n-1).
        let rt = Runtime::builder().build();
        let marker: Arc<parking_lot::Mutex<Option<fix_core::handle::Handle>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let m2 = Arc::clone(&marker);
        let proc_h = rt.register_native(
            "countdown",
            Arc::new(move |ctx| {
                let n = ctx.arg_blob(0)?.as_u64().unwrap();
                if n == 0 {
                    return ctx.host.create_blob(b"done".to_vec());
                }
                let self_h = m2.lock().expect("marker set");
                let limits = ResourceLimits::default_limits();
                let next = Invocation {
                    limits,
                    procedure: self_h,
                    args: vec![Blob::from_u64(n - 1).handle()],
                }
                .to_tree();
                let t = ctx.host.create_tree(next.entries().to_vec())?;
                t.application()
            }),
        );
        *marker.lock() = Some(proc_h);
        let thunk = rt
            .apply(limits(), proc_h, &[rt.put_blob(Blob::from_u64(100))])
            .unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_blob(out).unwrap().as_slice(), b"done");
        // 101 applications ran (100 tail calls + base case).
        assert_eq!(
            rt.engine().stats.procedures_run.load(Ordering::Relaxed),
            101
        );
    }

    #[test]
    fn fix_level_fibonacci_via_vm() {
        // The paper's Fig. 3: fib creates recursive thunks and returns an
        // application of `add` to two strictly-encoded recursive calls.
        let rt = Runtime::builder().build();
        let fib_src = r#"
            ; input tree: [rlimits, fib.elf, add.elf, x]
            func apply args=0 locals=6
              const 0
              const 3
              tree.get          ; x handle
              const 0
              blob.read_u64
              local.set 0       ; x
              local.get 0
              const 2
              lt_u
              jump_if base

              ; build t1 = [rlimit, fib, add, x-1]
              const 0
              const 0
              tree.get
              local.set 1       ; rlimit
              const 0
              const 1
              tree.get
              local.set 2       ; fib
              const 0
              const 2
              tree.get
              local.set 3       ; add

              local.get 1
              tb.push
              local.get 2
              tb.push
              local.get 3
              tb.push
              local.get 0
              const 1
              sub
              blob.create_u64
              tb.push
              tb.build
              application
              strict
              local.set 4       ; e1

              local.get 1
              tb.push
              local.get 2
              tb.push
              local.get 3
              tb.push
              local.get 0
              const 2
              sub
              blob.create_u64
              tb.push
              tb.build
              application
              strict
              local.set 5       ; e2

              ; t_sum = [rlimit, add, e1, e2]
              local.get 1
              tb.push
              local.get 3
              tb.push
              local.get 4
              tb.push
              local.get 5
              tb.push
              tb.build
              application
              ret_handle

            base:
              local.get 0
              blob.create_u64
              ret_handle
            end
        "#;
        let add_src = r#"
            ; input tree: [rlimits, add.elf, a, b]
            func apply args=0 locals=0
              const 0
              const 2
              tree.get
              const 0
              blob.read_u64
              const 0
              const 3
              tree.get
              const 0
              blob.read_u64
              add
              blob.create_u64
              ret_handle
            end
        "#;
        let fib = rt.install_vm_module(fib_src).unwrap();
        let add = rt.install_vm_module(add_src).unwrap();
        let x = rt.put_blob(Blob::from_u64(10));
        let thunk = rt.apply(limits(), fib, &[add, x]).unwrap();
        let out = rt.eval(thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), 55);
        // Memoization collapses the exponential call tree: fib(0..=10) plus
        // the adds, not 2^10 invocations.
        let runs = rt.engine().stats.procedures_run.load(Ordering::Relaxed);
        assert!(runs <= 25, "expected memoized recursion, got {runs} runs");
    }

    #[test]
    fn parallel_evaluation_with_worker_pool() {
        let rt = Runtime::builder().workers(4).build();
        let add = register_add(&rt);
        // A reduction tree of adds via strict encodes: sum of 0..16.
        let leaves: Vec<_> = (0..16u64).map(|i| rt.put_blob(Blob::from_u64(i))).collect();
        let mut layer = leaves;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let t = rt
                    .apply(limits(), add, &[pair[0], pair[1]])
                    .unwrap()
                    .strict()
                    .unwrap();
                next.push(t);
            }
            layer = next;
        }
        let root_thunk = layer[0].encoded_thunk().unwrap();
        let out = rt.eval(root_thunk).unwrap();
        assert_eq!(rt.get_u64(out).unwrap(), (0..16).sum::<u64>());
    }

    #[test]
    fn guest_trap_propagates_as_error() {
        let rt = Runtime::builder().build();
        let bad = rt
            .install_vm_module("func apply args=0 locals=0\n unreachable\nend")
            .unwrap();
        let thunk = rt.apply(limits(), bad, &[]).unwrap();
        let err = rt.eval(thunk).unwrap_err();
        assert!(matches!(err, Error::Trap(_)), "{err}");
    }

    #[test]
    fn unknown_procedure_fails() {
        let rt = Runtime::builder().build();
        let junk = rt.put_blob(Blob::from_vec(vec![0xAB; 64]));
        let thunk = rt.apply(limits(), junk, &[]).unwrap();
        let err = rt.eval(thunk).unwrap_err();
        assert!(matches!(err, Error::UnknownProcedure(_)), "{err}");
    }

    #[test]
    fn fuel_limit_respected_through_runtime() {
        let rt = Runtime::builder().build();
        let spin = rt
            .install_vm_module("func apply args=0 locals=0\nl:\n jump l\nend")
            .unwrap();
        let small = ResourceLimits::new(1 << 20, 1000);
        let thunk = rt.apply(small, spin, &[]).unwrap();
        let err = rt.eval(thunk).unwrap_err();
        assert!(matches!(err, Error::OutOfFuel { .. }), "{err}");
    }

    #[test]
    fn error_propagates_through_dependencies() {
        let rt = Runtime::builder().build();
        let bad = rt
            .install_vm_module("func apply args=0 locals=0\n unreachable\nend")
            .unwrap();
        let first = rt.register_native("first2", Arc::new(|ctx| ctx.arg(0)));
        let inner = rt.apply(limits(), bad, &[]).unwrap();
        let outer = rt
            .apply(limits(), first, &[inner.strict().unwrap()])
            .unwrap();
        let err = rt.eval(outer).unwrap_err();
        assert!(matches!(err, Error::Trap(_)), "{err}");
    }

    #[test]
    fn eval_strict_deep_forces_nested_results() {
        let rt = Runtime::builder().build();
        let add = register_add(&rt);
        let one = rt.put_blob(Blob::from_u64(1));
        let two = rt.put_blob(Blob::from_u64(2));
        let inner = rt.apply(limits(), add, &[one, two]).unwrap();
        // A procedure returning a tree that still contains a thunk.
        let wrap = rt.register_native(
            "wrap-thunk",
            Arc::new(move |ctx| ctx.host.create_tree(vec![inner])),
        );
        let outer = rt.apply(limits(), wrap, &[]).unwrap();
        let forced = rt.eval_strict(outer).unwrap();
        let tree = rt.get_tree(forced).unwrap();
        assert_eq!(tree.len(), 1);
        let entry = tree.get(0).unwrap();
        assert!(entry.is_accessible());
        assert_eq!(rt.get_u64(entry).unwrap(), 3);
    }

    #[test]
    fn footprint_through_runtime() {
        let rt = Runtime::builder().build();
        let add = register_add(&rt);
        let big = rt.put_blob(Blob::from_vec(vec![1u8; 4096]));
        let b2 = rt.put_blob(Blob::from_u64(2));
        let thunk = rt.apply(limits(), add, &[big, b2]).unwrap();
        let fp = rt.footprint(thunk).unwrap();
        assert!(fp.is_complete());
        assert!(fp.objects.contains(&big));
        assert!(fp.total_bytes >= 4096);
    }

    #[test]
    fn gc_keeps_roots() {
        let rt = Runtime::builder().build();
        let keep = rt.put_blob(Blob::from_vec(vec![1u8; 64]));
        let _unused = rt.put_blob(Blob::from_vec(vec![2u8; 64]));
        let collected = rt.gc(&[keep]);
        assert_eq!(collected, 1);
        assert!(rt.get_blob(keep).is_ok());
    }

    #[test]
    fn labels_namespace() {
        let rt = Runtime::builder().build();
        let h = rt.put_blob(Blob::from_slice(b"hello"));
        rt.labels().set("greeting", h);
        assert_eq!(rt.labels().get("greeting"), Some(h));
    }

    /// Two applications sharing a strict-encoded sub-computation, so the
    /// second evaluation's dependency set collides with jobs finished by
    /// the first — the shape that exposed the memo-desync livelock.
    fn shared_encode_pair(rt: &Runtime) -> (fix_core::handle::Handle, fix_core::handle::Handle) {
        let add = register_add(rt);
        let one = rt.put_blob(Blob::from_u64(1));
        let two = rt.put_blob(Blob::from_u64(2));
        let ten = rt.put_blob(Blob::from_u64(10));
        let inner = rt.apply(limits(), add, &[one, two]).unwrap();
        let shared = inner.strict().unwrap();
        let a = rt.apply(limits(), add, &[shared, one]).unwrap();
        let b = rt.apply(limits(), add, &[shared, ten]).unwrap();
        (a, b)
    }

    #[test]
    fn clear_memoization_allows_cold_reevaluation() {
        let rt = Runtime::builder().build();
        let (a, b) = shared_encode_pair(&rt);
        assert_eq!(rt.get_u64(rt.eval(a).unwrap()).unwrap(), 4);
        rt.clear_memoization();
        // `b` depends on the same strict encode the first eval resolved;
        // after a *consistent* clear this must re-run, not hang.
        assert_eq!(rt.get_u64(rt.eval(b).unwrap()).unwrap(), 13);
        assert_eq!(rt.engine().stats.procedures_run.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn desynced_memo_layers_fail_loudly_instead_of_spinning() {
        let rt = Runtime::builder().build();
        let (a, b) = shared_encode_pair(&rt);
        rt.eval(a).unwrap();
        // Clear only the relation cache: the scheduler still remembers the
        // shared Resolve job as done, so stepping `b` can never progress.
        // The respin guard must turn that livelock into an error.
        rt.cache().clear();
        let err = rt.eval(b).unwrap_err();
        assert!(
            err.to_string().contains("clear_memoization"),
            "unexpected error: {err}"
        );
    }

    /// Regression: pool shutdown must not race a worker into a missed
    /// wakeup. The flag store now happens under the scheduler mutex;
    /// before that fix, roughly 1-in-10³ create/work/drop cycles left a
    /// worker parked forever and the drop joining it.
    #[test]
    fn worker_pool_shutdown_never_strands_a_worker() {
        for i in 0..300 {
            let rt = Runtime::builder().workers(4).build();
            let add = register_add(&rt);
            let thunk = rt
                .apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(i)),
                        rt.put_blob(Blob::from_u64(1)),
                    ],
                )
                .unwrap();
            assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), i + 1);
            drop(rt); // Joins the pool; must never hang.
        }
    }

    /// Regression: two inline drivers (no worker pool) sharing one
    /// scheduler must cooperate, not misreport a stall. Before the
    /// `inline_executing` claim, driver B could observe an empty queue
    /// while driver A was mid-step on the last runnable job and fail the
    /// whole request with "evaluation stalled".
    #[test]
    fn concurrent_inline_drivers_never_misreport_a_stall() {
        use std::sync::Arc;
        for round in 0..200u64 {
            let rt = Arc::new(Runtime::builder().build());
            let add = register_add(&rt);
            // Both threads race the same dependency chain: shared strict
            // encodes force one driver to wait on jobs the other may be
            // executing.
            let one = rt.put_blob(Blob::from_u64(1));
            let seed = rt.put_blob(Blob::from_u64(round));
            let inner = rt.apply(limits(), add, &[seed, one]).unwrap();
            let shared = inner.strict().unwrap();
            let left = rt.apply(limits(), add, &[shared, one]).unwrap();
            let right = rt.apply(limits(), add, &[shared, seed]).unwrap();

            let threads: Vec<_> = [left, right]
                .into_iter()
                .map(|thunk| {
                    let rt = Arc::clone(&rt);
                    std::thread::spawn(move || rt.eval(thunk).unwrap())
                })
                .collect();
            let outs: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
            assert_eq!(rt.get_u64(outs[0]).unwrap(), round + 2);
            assert_eq!(rt.get_u64(outs[1]).unwrap(), 2 * round + 1);
        }
    }

    /// A panicking codelet is a guest fault, not a scheduler failure: it
    /// must surface as `Error::Trap` to every driver (inline or pooled)
    /// and leave the scheduler fully usable — never a lost job, a hang,
    /// or a dead worker (this test *hanging* is the regression signal).
    #[test]
    fn panicking_codelet_does_not_strand_other_drivers() {
        use std::sync::Arc;
        for workers in [0usize, 2] {
            let rt = Arc::new(Runtime::builder().workers(workers).build());
            let boom = rt.register_native(
                "panicker",
                Arc::new(
                    |_ctx| -> fix_core::error::Result<fix_core::handle::Handle> {
                        panic!("guest bug")
                    },
                ),
            );
            let bad = rt.apply(limits(), boom, &[]).unwrap();

            // Two concurrent drivers of the same failing job: both must
            // come back with the trap, however the job was executed.
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let rt = Arc::clone(&rt);
                    std::thread::spawn(move || rt.eval(bad))
                })
                .collect();
            for t in threads {
                let err = t
                    .join()
                    .expect("drivers do not panic")
                    .expect_err("a panicking job must not produce a value");
                assert!(
                    err.to_string().contains("panicked"),
                    "workers={workers}: {err}"
                );
            }
            // The scheduler (and any pool workers) still work afterward.
            let add = register_add(&rt);
            let t = rt
                .apply(
                    limits(),
                    add,
                    &[
                        rt.put_blob(Blob::from_u64(1)),
                        rt.put_blob(Blob::from_u64(2)),
                    ],
                )
                .unwrap();
            assert_eq!(rt.get_u64(rt.eval(t).unwrap()).unwrap(), 3);
        }
    }

    #[test]
    fn compact_scheduler_drops_finished_jobs_keeps_results() {
        let rt = Runtime::builder().build();
        let add = register_add(&rt);
        let one = rt.put_blob(Blob::from_u64(1));
        let two = rt.put_blob(Blob::from_u64(2));
        let thunk = rt.apply(limits(), add, &[one, two]).unwrap();
        rt.eval(thunk).unwrap();
        assert!(rt.compact_scheduler() >= 1);
        // Re-submission completes from the (intact) relation cache.
        assert_eq!(rt.get_u64(rt.eval(thunk).unwrap()).unwrap(), 3);
        assert_eq!(
            rt.engine().stats.procedures_run.load(Ordering::Relaxed),
            1,
            "compaction must not forget memoized relations"
        );
    }
}
