//! The program registry: mapping procedure Blobs to runnable code.
//!
//! Fixpoint runs two kinds of procedures:
//!
//! * **FixVM codelets** — Blobs in the [`fix_vm::Module`] format,
//!   recognized by their magic bytes. These are the "black-box machine
//!   code" of the paper (its Wasm→x86-64 codelets) and need no
//!   registration: any node holding the blob can run it.
//! * **Native codelets** — trusted Rust functions registered under a
//!   content-addressed marker blob (`"FIXNATIVE:<name>"`). These model
//!   the paper's ahead-of-time-compiled native procedures, and let the
//!   workloads run at native speed. Because the marker is content
//!   addressed, every node that registers the same name agrees on the
//!   handle.

use fix_core::data::Blob;
use fix_core::handle::Handle;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

// The codelet context and signature live in `fix_core::api` since the
// One Fix API refactor, so backend-agnostic code can register natives
// through `InvocationApi` without depending on this crate.
pub use fix_core::api::{NativeCtx, NativeFn};

/// Maps procedure handles to native implementations.
#[derive(Default)]
pub struct ProgramRegistry {
    by_handle: RwLock<HashMap<[u8; 32], (String, NativeFn)>>,
}

/// Builds the content-addressed marker blob for a native procedure name.
pub fn native_marker(name: &str) -> Blob {
    Blob::from_vec(format!("FIXNATIVE:{name}").into_bytes())
}

impl ProgramRegistry {
    /// Creates an empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Registers a native codelet under `name`, returning the marker
    /// blob whose handle names the procedure. Re-registering a name
    /// replaces the implementation (the handle is unchanged).
    pub fn register(&self, name: &str, f: NativeFn) -> (Blob, Handle) {
        let blob = native_marker(name);
        let handle = blob.handle();
        let mut key = *handle.raw();
        key[30] = 0;
        self.by_handle.write().insert(key, (name.to_string(), f));
        (blob, handle)
    }

    /// Looks up the native implementation for a procedure handle.
    pub fn lookup(&self, handle: Handle) -> Option<NativeFn> {
        let mut key = *handle.raw();
        key[30] = 0;
        self.by_handle.read().get(&key).map(|(_, f)| Arc::clone(f))
    }

    /// The registered procedure names (for diagnostics).
    pub fn names(&self) -> Vec<String> {
        self.by_handle
            .read()
            .values()
            .map(|(n, _)| n.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = ProgramRegistry::new();
        let (_, h) = reg.register("noop", Arc::new(|ctx| Ok(ctx.input)));
        assert!(reg.lookup(h).is_some());
        assert!(reg.lookup(h.as_ref_handle()).is_some(), "lookup by payload");
        let other = Blob::from_slice(b"FIXNATIVE:unregistered").handle();
        assert!(reg.lookup(other).is_none());
    }

    #[test]
    fn markers_are_content_addressed() {
        let a = native_marker("add");
        let b = native_marker("add");
        assert_eq!(a.handle(), b.handle());
        assert_ne!(a.handle(), native_marker("sub").handle());
    }

    #[test]
    fn names_are_listed() {
        let reg = ProgramRegistry::new();
        reg.register("alpha", Arc::new(|ctx| Ok(ctx.input)));
        reg.register("beta", Arc::new(|ctx| Ok(ctx.input)));
        let mut names = reg.names();
        names.sort();
        assert_eq!(names, vec!["alpha", "beta"]);
    }
}
