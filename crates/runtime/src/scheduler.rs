//! The job scheduler: dependency tracking over restartable jobs.
//!
//! All worker threads of a node share a queue of pending jobs and the
//! runtime storage (paper §4.2.1). A job is stepped on a worker; if it
//! reports dependencies, it parks until they complete and is then stepped
//! again. Jobs are deduplicated by identity, so concurrent requests for
//! the same evaluation share one execution — Fix's determinism makes this
//! safe.
//!
//! The scheduler can be driven two ways:
//!
//! * **inline** ([`Scheduler::run_inline`]) — the calling thread drains
//!   the queue itself; this is the microsecond path used when a client
//!   evaluates a single computation (no thread handoff);
//! * **pooled** ([`WorkerPool`]) — N worker threads drain the queue
//!   concurrently; independent sub-computations (e.g. the branches of a
//!   parallel map) run in parallel.
//!
//! Batches can also be **watched** instead of driven: `submit_watched_with`
//! enqueues a set of roots under one lock acquisition and registers a
//! `BatchState` that the completion path fills in as each root
//! finishes — no caller thread parked, no per-job polling. This is the
//! mechanism behind the One Fix API's submission tickets
//! (`fix_core::api::SubmitApi`); `wait_batch` turns the calling thread
//! into an inline driver until the watched batch is done.
//!
//! Watched submissions are *request scoped* (`fix_core::api::SubmitOptions`):
//!
//! * **priority** — the run queue is tiered by `Priority`; dispatch
//!   always drains the highest non-empty tier first. A job's tier is
//!   fixed at its first enqueue (a deduplicated job shared across
//!   tiers runs at the tier that queued it).
//! * **deadlines** — a watched batch may carry an absolute deadline on
//!   the scheduler's virtual clock; queued work whose deadline has
//!   passed is expired *lazily at dequeue*: the expired slots fail with
//!   `Error::DeadlineExceeded`, and the job itself is skipped when no
//!   live request still wants it — dead work is withdrawn, not executed.
//! * **cancellation** — `cancel_batch` fails a batch's unresolved slots
//!   with `Error::Cancelled` and withdraws still-queued jobs no other
//!   live request shares, via the per-job interest refcount the job map
//!   keeps (watched slots + pinned fire-and-forget submissions +
//!   dependency waiters all count as interest).
//! * **strict mode** — a strict slot watches the whole eval→force job
//!   chain: when its `Eval` completes, the watcher *chains* onto the
//!   `Force` of the produced value instead of filling, so the slot
//!   resolves exactly when a blocking `eval_strict` would return.

use crate::engine::{Engine, Job, Step};
use fix_core::api::Priority;
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
enum JobState {
    /// In the queue (or about to be, or currently being stepped).
    Queued,
    /// Parked until `pending` dependencies complete.
    Waiting { pending: usize },
    /// Finished successfully.
    Done(Handle),
    /// Finished with an error.
    Failed(Error),
}

#[derive(Debug, Default)]
struct JobEntry {
    /// `None` means "no live request wants this job" — either it was
    /// never submitted, or it was withdrawn after a cancellation.
    state: Option<JobState>,
    waiters: Vec<Job>,
    /// Consecutive requeues where every reported dependency was already
    /// finished. Bounded in healthy operation (each requeue follows real
    /// progress); a runaway count means the job-state map and the
    /// engine's relation cache disagree, and the job is failed loudly
    /// instead of spinning forever.
    respins: u32,
    /// Queue tokens currently floating in the tier queues for this job.
    /// Withdrawal cannot cheaply delete from the middle of a `VecDeque`,
    /// so a withdrawn job leaves its token behind and dequeue skips it;
    /// the count bounds how long the entry must outlive its work.
    tokens: u32,
    /// True while exactly one of the floating tokens is *live*: popping
    /// any token while this is set claims the job for execution and
    /// clears it, so even with stale duplicates in the queues a job is
    /// stepped by at most one thread at a time. A `Queued` entry with
    /// `enqueued == false` is popped-and-executing, which is what lets
    /// withdrawal distinguish "still in the queue" (revocable) from
    /// "mid-step" (must complete).
    enqueued: bool,
    /// Live requests whose *current stage* is this job: one per watched
    /// ticket slot (see `Shared::watchers`). Dependency waiters are
    /// tracked in `waiters`, fire-and-forget submissions in `pinned`;
    /// a queued job with no interest from any of the three is withdrawn
    /// on cancellation instead of executed.
    interest: usize,
    /// Set by fire-and-forget [`Scheduler::submit`] (and inline-driven
    /// roots): the job must never be withdrawn.
    pinned: bool,
    /// The tier whose queue a (re)enqueue of this job joins. Fixed at
    /// first submission; a later higher-priority submission promotes
    /// future enqueues but does not reposition a token already queued.
    priority: Priority,
}

/// Requeue bound before a job is declared stuck (see [`JobEntry::respins`]).
const MAX_RESPINS: u32 = 10_000;

/// One watched-batch slot's stake in a job (see `Shared::watchers`).
struct Watcher {
    state: Arc<BatchState>,
    pos: usize,
    /// Strict slot, eval stage: on success, chain onto the `Force` of
    /// the produced value instead of filling the slot.
    then_force: bool,
}

#[derive(Default)]
struct Shared {
    jobs: HashMap<Job, JobEntry>,
    /// Run queues, one per `Priority` tier; dispatch drains the highest
    /// (lowest-index) non-empty tier first.
    queues: [VecDeque<Job>; Priority::TIERS],
    /// Inline drivers currently stepping a popped job outside the lock.
    /// Living inside `Shared` makes the invariant structural: every
    /// mutation happens under the mutex, so a driver that checks this
    /// while deciding to park cannot miss the release wakeup.
    inline_executing: usize,
    /// Completion watchers: job → the watched batch slots that want its
    /// result. Registered under the same lock acquisition as the
    /// submission, drained by [`Scheduler::complete`] the moment the
    /// job finishes — so batch completion costs O(1) per job instead of
    /// a polling pass per executed step. A watcher exists only while its
    /// job is unfinished; cancelling a batch removes its watchers
    /// eagerly, so a dropped ticket leaks nothing.
    watchers: HashMap<Job, Vec<Watcher>>,
}

/// One slot of a watched batch: the job currently answering it (the
/// `Force` stage of a strict slot replaces the `Eval` stage here when
/// the chain advances) and the result, once produced.
struct BatchSlot {
    job: Job,
    result: Option<Result<Handle>>,
}

/// The completion state of one watched batch: positional result slots
/// filled by the scheduler's completion path. Shared between the
/// scheduler (which fills) and a submission ticket (which waits).
///
/// Slots are only ever filled while holding the scheduler mutex, so the
/// `done` flag is ordered with the condvar the same way every other
/// stall-predicate mutation is — a waiter that checks `is_done` under
/// the lock before parking cannot miss the completing wakeup.
pub(crate) struct BatchState {
    /// Positional slots; a slot's `job` tracks the current stage of its
    /// eval→force chain so cancellation can find (and deregister from)
    /// exactly the jobs still answering unresolved slots.
    slots: Mutex<Vec<BatchSlot>>,
    /// Unfilled slot count; reaches zero exactly once.
    remaining: AtomicUsize,
    /// Set (under the scheduler lock) when the last slot fills.
    done: AtomicBool,
    /// Absolute expiry on the scheduler's virtual clock, in µs.
    deadline_us: Option<u64>,
    /// The batch's scheduling class (inherited by its jobs' enqueues).
    priority: Priority,
}

impl BatchState {
    fn new(roots: &[(Job, bool)], deadline_us: Option<u64>, priority: Priority) -> BatchState {
        let n = roots.len();
        BatchState {
            slots: Mutex::new(
                roots
                    .iter()
                    .map(|&(job, _)| BatchSlot { job, result: None })
                    .collect(),
            ),
            remaining: AtomicUsize::new(n),
            done: AtomicBool::new(n == 0),
            deadline_us,
            priority,
        }
    }

    /// True once every slot has a result.
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Clones out the positional results. Call only after
    /// [`is_done`](Self::is_done) returns true.
    pub(crate) fn results(&self) -> Vec<Result<Handle>> {
        debug_assert!(self.is_done(), "results() before the batch completed");
        self.slots
            .lock()
            .iter()
            .map(|s| s.result.clone().expect("completed batch slot is filled"))
            .collect()
    }

    /// Fills one slot (idempotent per slot). Callers hold the scheduler
    /// mutex, which is what serializes `remaining`/`done` against
    /// waiters' park decisions.
    fn fill(&self, pos: usize, result: Result<Handle>) {
        let mut slots = self.slots.lock();
        if slots[pos].result.is_none() {
            slots[pos].result = Some(result);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.done.store(true, Ordering::Release);
            }
        }
    }

    /// Records the job currently answering slot `pos` (the chain stage).
    /// Called under the scheduler mutex.
    fn set_slot_job(&self, pos: usize, job: Job) {
        self.slots.lock()[pos].job = job;
    }

    /// The unresolved slots and the jobs currently answering them.
    fn unresolved(&self) -> Vec<(usize, Job)> {
        self.slots
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.result.is_none())
            .map(|(i, s)| (i, s.job))
            .collect()
    }
}

/// The shared scheduler for one node.
pub struct Scheduler {
    engine: Arc<Engine>,
    shared: Mutex<Shared>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Number of pool workers attached (used for stall detection).
    workers_running: std::sync::atomic::AtomicUsize,
    /// The virtual clock (µs) submission deadlines are measured on.
    /// Advanced only by the embedder, never by wall time, so expiry is
    /// deterministic.
    clock: AtomicU64,
}

impl Scheduler {
    /// Creates a scheduler over an engine.
    pub fn new(engine: Arc<Engine>) -> Scheduler {
        Scheduler {
            engine,
            shared: Mutex::new(Shared::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers_running: std::sync::atomic::AtomicUsize::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The engine this scheduler drives.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The virtual clock, in µs.
    pub fn virtual_now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the virtual clock by `us` µs. Queued jobs whose batch
    /// deadlines the clock passes expire at their next dequeue.
    pub fn advance_clock(&self, us: u64) {
        self.clock.fetch_add(us, Ordering::Relaxed);
    }

    /// Submits a job if it is not already known, pinning it: a
    /// fire-and-forget submission has no ticket whose cancellation
    /// could withdraw it. Returns immediately.
    pub fn submit(&self, job: Job) {
        let mut shared = self.shared.lock();
        self.enqueue_locked(&mut shared, job, Priority::Normal, true);
        drop(shared);
        self.cv.notify_all();
    }

    /// Core enqueue under the lock: creates/refreshes the entry and,
    /// unless a live token already floats, pushes a fresh token into
    /// the job's tier. A revived (previously withdrawn) job always gets
    /// a fresh token at the *reviving* submission's tier — its stale
    /// token keeps floating in the old tier and is skipped at dequeue
    /// (though a stale token in a higher tier may still dispatch the
    /// job earlier than the new tier would; never later).
    fn enqueue_locked(&self, shared: &mut Shared, job: Job, priority: Priority, pinned: bool) {
        let Shared { jobs, queues, .. } = shared;
        let entry = jobs.entry(job).or_default();
        if pinned {
            entry.pinned = true;
        }
        if entry.state.is_none() {
            // Fresh (or previously withdrawn) job: it runs at the tier
            // of the submission reviving it.
            entry.priority = priority;
            entry.state = Some(JobState::Queued);
            if !entry.enqueued {
                entry.enqueued = true;
                entry.tokens += 1;
                queues[entry.priority.tier()].push_back(job);
            }
        } else if priority < entry.priority {
            // Promote future enqueues; a token already queued keeps its
            // position (priority is applied at enqueue, not retrofitted).
            entry.priority = priority;
        }
    }

    /// Requeues a job that already has an entry (dependency satisfied,
    /// or a benign respin).
    fn requeue_locked(shared: &mut Shared, job: Job) {
        let Shared { jobs, queues, .. } = shared;
        let entry = jobs.entry(job).or_default();
        entry.state = Some(JobState::Queued);
        if !entry.enqueued {
            entry.enqueued = true;
            entry.tokens += 1;
            queues[entry.priority.tier()].push_back(job);
        }
    }

    /// Submits every root and registers a completion watcher for each,
    /// all under **one** lock acquisition, returning immediately — no
    /// caller thread is parked. Roots that already finished fill their
    /// slots on the spot; the rest fill as the completion path reaches
    /// them. Each root is `(job, then_force)`: a strict slot submits
    /// its `Eval` with `then_force`, and the watcher chains onto the
    /// `Force` of the result when the eval completes. This is the
    /// scheduler half of the One Fix API's `submit_with`.
    pub(crate) fn submit_watched_with(
        &self,
        roots: &[(Job, bool)],
        deadline_us: Option<u64>,
        priority: Priority,
    ) -> Arc<BatchState> {
        let state = Arc::new(BatchState::new(roots, deadline_us, priority));
        {
            let mut shared = self.shared.lock();
            for (pos, &(job, then_force)) in roots.iter().enumerate() {
                self.watch_job_locked(&mut shared, &state, pos, job, then_force, false);
            }
        }
        self.cv.notify_all();
        state
    }

    /// Points slot `pos` of `state` at `job`: fills immediately if the
    /// job already finished (chaining through `Force` for strict
    /// slots), otherwise enqueues the job at the batch's tier and
    /// registers the completion watcher, counting one unit of interest.
    ///
    /// `stage_moved` says whether `job` differs from the slot's
    /// recorded stage job: false for the initial watch (the slot was
    /// constructed pointing at its root job), true when a strict chain
    /// advanced onto the `Force`. Recording the stage only matters for
    /// slots that stay unresolved — cancellation looks the job up
    /// through the slot — so fills skip it, keeping the warm
    /// (already-memoized) submission path at one slots-lock per slot.
    fn watch_job_locked(
        &self,
        shared: &mut Shared,
        state: &Arc<BatchState>,
        pos: usize,
        job: Job,
        then_force: bool,
        stage_moved: bool,
    ) {
        match shared.jobs.get(&job).and_then(|e| e.state.clone()) {
            Some(JobState::Done(h)) => {
                if then_force {
                    // The eval stage is already memoized: the slot's
                    // fate rests on the force of its value.
                    self.watch_job_locked(shared, state, pos, Job::Force(h), false, true);
                } else {
                    state.fill(pos, Ok(h));
                }
            }
            Some(JobState::Failed(e)) => {
                state.fill(pos, Err(e));
            }
            _ => {
                self.enqueue_locked(shared, job, state.priority, false);
                shared
                    .jobs
                    .get_mut(&job)
                    .expect("enqueue_locked created the entry")
                    .interest += 1;
                shared.watchers.entry(job).or_default().push(Watcher {
                    state: Arc::clone(state),
                    pos,
                    then_force,
                });
                if stage_moved {
                    state.set_slot_job(pos, job);
                }
            }
        }
    }

    /// Drives the queue on the calling thread until the watched batch
    /// completes; cooperates with pool workers and other inline drivers
    /// exactly like [`run_inline`](Scheduler::run_inline). On a genuine
    /// stall the batch's unfinished slots are failed (and its watchers
    /// deregistered) instead of parking forever.
    pub(crate) fn wait_batch(&self, state: &Arc<BatchState>) {
        loop {
            if state.is_done() {
                return;
            }
            let claim = {
                let mut shared = self.shared.lock();
                loop {
                    if state.is_done() {
                        return;
                    }
                    if let Some(claim) = self.pop_claimed(&mut shared) {
                        break claim;
                    }
                    if self.drained_and_stalled(&shared) {
                        self.fail_stalled_locked(&mut shared, state);
                        return;
                    }
                    self.cv.wait(&mut shared);
                }
            };
            claim.execute();
        }
    }

    /// Bounded progress toward a watched batch: steps one queued job
    /// inline if there is one, otherwise parks for at most `timeout`
    /// awaiting someone else's progress (or fails the batch on a genuine
    /// stall). The building block of `wait_any`-style multiplexing.
    pub(crate) fn advance_batch(&self, state: &Arc<BatchState>, timeout: Duration) {
        if state.is_done() {
            return;
        }
        let claim = {
            let mut shared = self.shared.lock();
            if state.is_done() {
                return;
            }
            match self.pop_claimed(&mut shared) {
                Some(claim) => claim,
                None => {
                    if self.drained_and_stalled(&shared) {
                        self.fail_stalled_locked(&mut shared, state);
                    } else {
                        self.cv.wait_for(&mut shared, timeout);
                    }
                    return;
                }
            }
        };
        claim.execute();
    }

    /// Cancels a watched batch (the ticket was cancelled or dropped
    /// unresolved): unresolved slots fail with [`Error::Cancelled`],
    /// their watchers are deregistered, and still-queued jobs that no
    /// other live request shares are withdrawn — they will be skipped
    /// at dequeue instead of executed. Jobs that are shared, depended
    /// on, pinned, or already executing stay ordinary scheduler state
    /// and complete normally.
    pub(crate) fn cancel_batch(&self, state: &Arc<BatchState>) {
        let mut shared = self.shared.lock();
        for (pos, job) in state.unresolved() {
            self.unwatch_locked(&mut shared, state, pos, job);
            self.withdraw_if_orphan_locked(&mut shared, job);
            state.fill(pos, Err(Error::Cancelled));
        }
        drop(shared);
        // A concurrent waiter of another ticket may be parked on this
        // batch's jobs; the withdrawal changed what is runnable.
        self.cv.notify_all();
    }

    /// Removes slot `pos` of `state` from `job`'s watcher list and
    /// releases the slot's unit of interest.
    fn unwatch_locked(&self, shared: &mut Shared, state: &Arc<BatchState>, pos: usize, job: Job) {
        if let std::collections::hash_map::Entry::Occupied(mut entry) = shared.watchers.entry(job) {
            let before = entry.get().len();
            entry
                .get_mut()
                .retain(|w| !(Arc::ptr_eq(&w.state, state) && w.pos == pos));
            let removed = before - entry.get().len();
            if entry.get().is_empty() {
                entry.remove();
            }
            if removed > 0 {
                if let Some(e) = shared.jobs.get_mut(&job) {
                    e.interest = e.interest.saturating_sub(removed);
                }
            }
        }
    }

    /// Withdraws a job nothing live wants: *genuinely in the queue*
    /// (live token unclaimed — a popped, mid-step job must complete,
    /// or a later submission of the same job could run it twice
    /// concurrently), zero watcher interest, no dependency waiters,
    /// not pinned. The entry's state returns to `None`; its now-stale
    /// token is skipped at dequeue, which also drops the entry once
    /// the last token drains.
    fn withdraw_if_orphan_locked(&self, shared: &mut Shared, job: Job) {
        let Some(entry) = shared.jobs.get_mut(&job) else {
            return;
        };
        if entry.interest == 0
            && !entry.pinned
            && entry.waiters.is_empty()
            && matches!(entry.state, Some(JobState::Queued))
            && entry.enqueued
        {
            entry.state = None;
            entry.enqueued = false;
        }
    }

    /// Drops a job this thread just claimed at dequeue but will not
    /// execute (nothing live wants it): the claim is already consumed,
    /// so clearing the state is safe — no other thread can be stepping
    /// it.
    fn skip_unwanted_locked(&self, shared: &mut Shared, job: Job) {
        let Some(entry) = shared.jobs.get_mut(&job) else {
            return;
        };
        entry.state = None;
        if entry.tokens == 0 {
            shared.jobs.remove(&job);
        }
    }

    /// Fails a watched batch's unfinished slots with the stall error
    /// (mirroring what [`run_inline`](Scheduler::run_inline) reports)
    /// and deregisters its watchers, so the waiter returns instead of
    /// parking on a graph that can never progress.
    fn fail_stalled_locked(&self, shared: &mut Shared, state: &Arc<BatchState>) {
        for (pos, job) in state.unresolved() {
            self.unwatch_locked(shared, state, pos, job);
            state.fill(
                pos,
                Err(Error::Trap(format!(
                    "evaluation stalled: no runnable jobs for {job}"
                ))),
            );
        }
    }

    /// Registered completion watchers across all watched batches
    /// (diagnostic; the leak test pins this to zero after tickets are
    /// resolved or dropped).
    pub fn watcher_count(&self) -> usize {
        self.shared.lock().watchers.values().map(Vec::len).sum()
    }

    /// Jobs currently queued for (or undergoing) execution. Withdrawn
    /// jobs do not count: after cancelling the only ticket that wanted
    /// a batch, a quiescent scheduler reports zero — the "no orphaned
    /// queued work" half of the ticket-leak pin.
    pub fn queued_jobs(&self) -> usize {
        self.shared
            .lock()
            .jobs
            .values()
            .filter(|e| matches!(e.state, Some(JobState::Queued)))
            .count()
    }

    /// Discards all job state and any queued work.
    ///
    /// Job completion records double as a memo consistent with the
    /// engine's relation cache, so the two must be cleared together
    /// (see [`Runtime::clear_memoization`](crate::Runtime::clear_memoization)).
    /// Must only be called while no evaluation is in flight; queued jobs
    /// are dropped and their waiters never woken. Watched batches still
    /// in flight are failed loudly rather than silently forgotten, so a
    /// leaked ticket wait cannot hang.
    pub fn reset(&self) {
        let mut shared = self.shared.lock();
        shared.jobs.clear();
        for queue in &mut shared.queues {
            queue.clear();
        }
        let watchers = std::mem::take(&mut shared.watchers);
        for (job, entries) in watchers {
            for w in entries {
                w.state.fill(
                    w.pos,
                    Err(Error::Trap(format!(
                        "scheduler reset while {job} was in flight"
                    ))),
                );
            }
        }
        drop(shared);
        self.cv.notify_all();
    }

    /// Drops one finished job record, so a later submission re-steps it
    /// against the engine instead of short-circuiting to the recorded
    /// result. No-op if the job is still queued, running, or waited on.
    ///
    /// Used by recompute-on-demand after the matching relation-cache
    /// entries are removed, keeping the invariant that a `Done` job
    /// record always has its relations memoized.
    pub fn forget(&self, job: Job) {
        let mut shared = self.shared.lock();
        if let Some(entry) = shared.jobs.get(&job) {
            let finished = matches!(
                entry.state,
                Some(JobState::Done(_)) | Some(JobState::Failed(_))
            );
            if finished && entry.waiters.is_empty() && entry.tokens == 0 {
                shared.jobs.remove(&job);
            }
        }
    }

    /// Drops completed job records that nothing waits on, bounding the
    /// job map for long-lived nodes. Results stay reproducible: the
    /// engine's relation cache still memoizes the underlying relations,
    /// so a re-submitted job completes from cache without re-running
    /// procedures.
    pub fn forget_finished(&self) -> usize {
        let mut shared = self.shared.lock();
        let before = shared.jobs.len();
        shared.jobs.retain(|_, entry| {
            !matches!(
                entry.state,
                Some(JobState::Done(_)) | Some(JobState::Failed(_))
            ) || !entry.waiters.is_empty()
                || entry.tokens > 0
        });
        before - shared.jobs.len()
    }

    /// Returns the job's result if it has finished.
    pub fn poll(&self, job: Job) -> Option<Result<Handle>> {
        let shared = self.shared.lock();
        match shared.jobs.get(&job).and_then(|e| e.state.as_ref()) {
            Some(JobState::Done(h)) => Some(Ok(*h)),
            Some(JobState::Failed(e)) => Some(Err(e.clone())),
            _ => None,
        }
    }

    /// Blocks until the job completes (requires a running [`WorkerPool`]
    /// or another thread driving the queue). The job should have been
    /// submitted with [`submit`](Scheduler::submit), which pins it —
    /// an unpinned job could be withdrawn by a cancellation and never
    /// complete.
    pub fn wait(&self, job: Job) -> Result<Handle> {
        let mut shared = self.shared.lock();
        loop {
            match shared.jobs.get(&job).and_then(|e| e.state.as_ref()) {
                Some(JobState::Done(h)) => return Ok(*h),
                Some(JobState::Failed(e)) => return Err(e.clone()),
                _ => self.cv.wait(&mut shared),
            }
        }
    }

    /// True when no one can make progress: no pool workers and no inline
    /// driver mid-step. The caller holds `shared`, so a `false` answer is
    /// stable until the lock is released.
    fn drained_and_stalled(&self, shared: &Shared) -> bool {
        self.active_workers() == 0 && shared.inline_executing == 0
    }

    /// Pops the next runnable job, highest tier first, skipping stale
    /// tokens (withdrawn or already-moved-on jobs) and lazily expiring
    /// deadline-passed watcher slots — the "expire at dequeue" half of
    /// request-scoped submission. Returns `None` when every tier is
    /// drained of runnable work.
    fn pop_runnable_locked(&self, shared: &mut Shared) -> Option<Job> {
        loop {
            let job = shared.queues.iter_mut().find_map(VecDeque::pop_front)?;
            let Some(entry) = shared.jobs.get_mut(&job) else {
                continue; // Withdrawn and fully dropped: stale token.
            };
            entry.tokens = entry.tokens.saturating_sub(1);
            if !(matches!(entry.state, Some(JobState::Queued)) && entry.enqueued) {
                // Stale token: the job was withdrawn, is already being
                // stepped by someone who claimed the live token, or has
                // moved on entirely.
                if entry.state.is_none()
                    && entry.tokens == 0
                    && entry.interest == 0
                    && !entry.pinned
                    && entry.waiters.is_empty()
                {
                    shared.jobs.remove(&job);
                }
                continue;
            }
            // Claim the live token: from here the job counts as being
            // stepped (never withdrawable), not as queued.
            entry.enqueued = false;
            let wanted = entry.interest > 0 || entry.pinned || !entry.waiters.is_empty();
            if shared.watchers.is_empty() {
                // Fast path for the no-watched-batches case (plain
                // `eval` inline driving): nothing can expire, so skip
                // the per-pop watcher lookup on the microsecond path.
                if wanted {
                    return Some(job);
                }
                self.skip_unwanted_locked(shared, job);
                continue;
            }
            if self.expire_at_dequeue_locked(shared, job) {
                continue; // Every interest expired: dead work, skipped.
            }
            return Some(job);
        }
    }

    /// Expires deadline-passed watcher slots of `job` at its dequeue,
    /// failing them with `DeadlineExceeded`. Returns true when the
    /// expiry left the job wanted by nothing live — the job is then
    /// withdrawn (dead work is skipped, not executed).
    fn expire_at_dequeue_locked(&self, shared: &mut Shared, job: Job) -> bool {
        let now = self.clock.load(Ordering::Relaxed);
        let mut expired_any = false;
        if let std::collections::hash_map::Entry::Occupied(mut watchers) =
            shared.watchers.entry(job)
        {
            let before = watchers.get().len();
            watchers.get_mut().retain(|w| match w.state.deadline_us {
                Some(deadline) if now > deadline => {
                    w.state.fill(
                        w.pos,
                        Err(Error::DeadlineExceeded {
                            deadline_us: deadline,
                        }),
                    );
                    false
                }
                _ => true,
            });
            let removed = before - watchers.get().len();
            if watchers.get().is_empty() {
                watchers.remove();
            }
            if removed > 0 {
                expired_any = true;
                if let Some(e) = shared.jobs.get_mut(&job) {
                    e.interest = e.interest.saturating_sub(removed);
                }
            }
        }
        if expired_any {
            // Waiters of the expired batches may be parked; their
            // predicate (batch done) just changed.
            self.cv.notify_all();
        }
        let Some(entry) = shared.jobs.get_mut(&job) else {
            return true;
        };
        if entry.interest == 0 && !entry.pinned && entry.waiters.is_empty() {
            // Nothing live wants this job, and the dequeue claim is
            // ours: withdraw instead of executing dead work.
            self.skip_unwanted_locked(shared, job);
            return true;
        }
        false
    }

    /// Pops the next queued job, claiming executor status under the lock
    /// so a concurrent inline driver that finds the queue empty sees the
    /// in-flight step instead of declaring a stall. The returned
    /// [`InlineClaim`] releases the claim on drop — including on unwind
    /// out of a panicking codelet, so a panic degrades to the stall
    /// error, never a parked-forever driver.
    fn pop_claimed<'a>(&'a self, shared: &mut Shared) -> Option<InlineClaim<'a>> {
        let job = self.pop_runnable_locked(shared)?;
        shared.inline_executing += 1;
        Some(InlineClaim {
            scheduler: self,
            job,
        })
    }

    /// Drives the queue on the calling thread until `root` completes.
    ///
    /// If worker threads are also draining the queue, this cooperates with
    /// them; when the queue is momentarily empty it waits for progress.
    /// Kept allocation-free separately from the watched-batch path
    /// (`submit_watched_with` + `wait_batch`, which backs
    /// `Runtime::eval_many` and the submission tickets) — this is the
    /// Fig. 7a microsecond path — with the subtle parts (executor
    /// claims, the stall predicate) shared between the two loops.
    pub fn run_inline(&self, root: Job) -> Result<Handle> {
        self.submit(root);
        loop {
            if let Some(result) = self.poll(root) {
                return result;
            }
            let claim = {
                let mut shared = self.shared.lock();
                loop {
                    match shared.jobs.get(&root).and_then(|e| e.state.as_ref()) {
                        Some(JobState::Done(h)) => return Ok(*h),
                        Some(JobState::Failed(e)) => return Err(e.clone()),
                        _ => {}
                    }
                    if let Some(claim) = self.pop_claimed(&mut shared) {
                        break claim;
                    }
                    // Queue is empty but the root isn't finished: jobs are
                    // running on pool workers or another inline driver, or
                    // the graph is stalled.
                    if self.drained_and_stalled(&shared) {
                        return Err(Error::Trap(format!(
                            "evaluation stalled: no runnable jobs for {root}"
                        )));
                    }
                    self.cv.wait(&mut shared);
                }
            };
            claim.execute();
        }
    }

    fn active_workers(&self) -> usize {
        self.workers_running.load(Ordering::Relaxed)
    }

    /// Releases an inline-executor claim. The decrement happens while
    /// holding the mutex (like [`begin_shutdown`](Scheduler::begin_shutdown)'s
    /// flag store, and for the same reason): an unlocked release could
    /// slip between a parked driver's stall check and its `cv.wait`,
    /// losing the wakeup.
    fn release_claim(&self) {
        {
            let mut shared = self.shared.lock();
            shared.inline_executing -= 1;
        }
        self.cv.notify_all();
    }

    /// Raises the shutdown flag so workers exit.
    ///
    /// The store happens *while holding the scheduler mutex*: a worker's
    /// check-shutdown-then-wait sequence is atomic only against mutators
    /// that hold the lock. An unlocked store can slip between a worker's
    /// flag check and its `cv.wait`, leaving it parked through the
    /// notify and deadlocking the joiner.
    fn begin_shutdown(&self) {
        {
            let _guard = self.shared.lock();
            self.shutdown.store(true, Ordering::SeqCst);
        }
        self.cv.notify_all();
    }

    /// Pops and executes one job; returns false if the queue was empty.
    fn try_drive_one(&self) -> bool {
        let job = {
            let mut shared = self.shared.lock();
            self.pop_runnable_locked(&mut shared)
        };
        match job {
            Some(job) => {
                self.execute(job);
                true
            }
            None => false,
        }
    }

    /// Steps a job and records the outcome.
    ///
    /// A panicking codelet is caught at this boundary and recorded as a
    /// guest [`Error::Trap`] — panics are guest faults like VM traps, and
    /// converting them here lets failure propagation wake every waiter.
    /// Letting the panic unwind instead would lose the job (its entry
    /// stays `Queued` but it is no longer in the queue), permanently
    /// hanging any driver or pool waiting on it.
    fn execute(&self, job: Job) {
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.engine.step(job)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(Error::Trap(format!("codelet panicked: {msg}")))
            });
        let mut shared = self.shared.lock();
        match step {
            Ok(Step::Done(h)) => self.complete(&mut shared, job, Ok(h)),
            Err(e) => self.complete(&mut shared, job, Err(e)),
            Ok(Step::Deps(deps)) => {
                // Dependencies run at the tier of the job that needs them.
                let tier = shared
                    .jobs
                    .get(&job)
                    .map(|e| e.priority)
                    .unwrap_or_default();
                let mut pending = 0usize;
                let mut failed: Option<Error> = None;
                for dep in deps {
                    match shared.jobs.get(&dep).and_then(|e| e.state.clone()) {
                        Some(JobState::Done(_)) => {}
                        Some(JobState::Failed(e)) => {
                            failed = Some(e);
                            break;
                        }
                        _ => {
                            self.enqueue_locked(&mut shared, dep, tier, false);
                            let entry = shared.jobs.entry(dep).or_default();
                            entry.waiters.push(job);
                            pending += 1;
                        }
                    }
                }
                if let Some(e) = failed {
                    self.complete(&mut shared, job, Err(e));
                } else if pending == 0 {
                    // Everything finished in the meantime; go again — but
                    // bound the spins: if the engine keeps reporting deps
                    // the job map says are done, the two memo layers are
                    // out of sync (e.g. the relation cache was cleared
                    // without resetting the scheduler).
                    let entry = shared.jobs.entry(job).or_default();
                    entry.respins += 1;
                    if entry.respins > MAX_RESPINS {
                        self.complete(
                            &mut shared,
                            job,
                            Err(Error::Trap(format!(
                                "scheduler stuck re-stepping {job}: job states and the \
                                 relation cache disagree (was the cache cleared without \
                                 Runtime::clear_memoization?)"
                            ))),
                        );
                    } else {
                        Self::requeue_locked(&mut shared, job);
                    }
                } else {
                    let entry = shared.jobs.entry(job).or_default();
                    entry.respins = 0;
                    entry.state = Some(JobState::Waiting { pending });
                }
            }
        }
        drop(shared);
        self.cv.notify_all();
    }

    /// Marks a job finished and wakes its (transitive) waiters, filling
    /// the slots of any watched batches as it goes (the completion
    /// notification hook behind submission tickets). A strict slot's
    /// watcher does not fill on its eval stage — it chains onto the
    /// `Force` of the produced value, re-registering on that job.
    fn complete(&self, shared: &mut Shared, job: Job, result: Result<Handle>) {
        // Worklist of (job, result) so failure propagation is iterative.
        let mut worklist: Vec<(Job, Result<Handle>)> = vec![(job, result)];
        while let Some((job, result)) = worklist.pop() {
            let entry = shared.jobs.entry(job).or_default();
            entry.state = Some(match &result {
                Ok(h) => JobState::Done(*h),
                Err(e) => JobState::Failed(e.clone()),
            });
            let waiters = std::mem::take(&mut entry.waiters);
            if let Some(watchers) = shared.watchers.remove(&job) {
                if let Some(e) = shared.jobs.get_mut(&job) {
                    e.interest = e.interest.saturating_sub(watchers.len());
                }
                for w in watchers {
                    match (&result, w.then_force) {
                        (Ok(h), true) => {
                            // Strict chain: the slot now rides the
                            // deep-force of the evaluated value.
                            self.watch_job_locked(
                                shared,
                                &w.state,
                                w.pos,
                                Job::Force(*h),
                                false,
                                true,
                            );
                        }
                        _ => w.state.fill(w.pos, result.clone()),
                    }
                }
            }
            for waiter in waiters {
                match &result {
                    Ok(_) => {
                        let w = shared.jobs.entry(waiter).or_default();
                        if let Some(JobState::Waiting { pending }) = &mut w.state {
                            *pending -= 1;
                            if *pending == 0 {
                                Self::requeue_locked(shared, waiter);
                            }
                        }
                    }
                    Err(e) => {
                        // Fail the waiter and its waiters transitively.
                        worklist.push((waiter, Err(e.clone())));
                    }
                }
            }
        }
    }
}

/// An inline driver's executor claim on one popped job (see
/// [`Scheduler::pop_claimed`]): while it lives, concurrent drivers that
/// find the queue empty wait for this step instead of reporting a
/// stall. Dropping releases the claim and wakes parked drivers — also
/// on unwind, so a panicking codelet leaves the scheduler consistent
/// (the surviving driver then reports the stall as an error).
struct InlineClaim<'a> {
    scheduler: &'a Scheduler,
    job: Job,
}

impl InlineClaim<'_> {
    /// Steps the claimed job, then releases the claim.
    fn execute(self) {
        self.scheduler.execute(self.job);
        // Release happens in Drop, which also covers the panic path.
    }
}

impl Drop for InlineClaim<'_> {
    fn drop(&mut self) {
        self.scheduler.release_claim();
    }
}

/// A pool of worker threads draining a scheduler's queue.
pub struct WorkerPool {
    scheduler: Arc<Scheduler>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n` workers over the scheduler.
    pub fn spawn(scheduler: Arc<Scheduler>, n: usize) -> WorkerPool {
        scheduler.workers_running.fetch_add(n, Ordering::SeqCst);
        let threads = (0..n)
            .map(|i| {
                let sched = Arc::clone(&scheduler);
                std::thread::Builder::new()
                    .name(format!("fixpoint-worker-{i}"))
                    .spawn(move || sched.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { scheduler, threads }
    }

    /// Signals shutdown and joins all workers.
    pub fn shutdown(mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Scheduler {
    fn worker_loop(&self) {
        /// Keeps `workers_running` an honest *live*-worker count: the
        /// decrement runs on every exit, including unwinding out of a
        /// panicking codelet. Without it, a dead worker would satisfy
        /// the stall predicate forever and park inline drivers instead
        /// of letting them report the stall. Decrement under the lock +
        /// notify, like every other stall-predicate mutation.
        struct LiveWorker<'a>(&'a Scheduler);
        impl Drop for LiveWorker<'_> {
            fn drop(&mut self) {
                {
                    let _guard = self.0.shared.lock();
                    self.0.workers_running.fetch_sub(1, Ordering::SeqCst);
                }
                self.0.cv.notify_all();
            }
        }
        let _live = LiveWorker(self);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !self.try_drive_one() {
                let mut shared = self.shared.lock();
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if shared.queues.iter().all(VecDeque::is_empty) {
                    self.cv.wait(&mut shared);
                }
            }
        }
    }
}
