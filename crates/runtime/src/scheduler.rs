//! The job scheduler: dependency tracking over restartable jobs.
//!
//! All worker threads of a node share a queue of pending jobs and the
//! runtime storage (paper §4.2.1). A job is stepped on a worker; if it
//! reports dependencies, it parks until they complete and is then stepped
//! again. Jobs are deduplicated by identity, so concurrent requests for
//! the same evaluation share one execution — Fix's determinism makes this
//! safe.
//!
//! The scheduler can be driven two ways:
//!
//! * **inline** ([`Scheduler::run_inline`]) — the calling thread drains
//!   the queue itself; this is the microsecond path used when a client
//!   evaluates a single computation (no thread handoff);
//! * **pooled** ([`WorkerPool`]) — N worker threads drain the queue
//!   concurrently; independent sub-computations (e.g. the branches of a
//!   parallel map) run in parallel.
//!
//! Batches can also be **watched** instead of driven: `submit_watched`
//! enqueues a set of roots under one lock acquisition and registers a
//! `BatchState` that the completion path fills in as each root
//! finishes — no caller thread parked, no per-job polling. This is the
//! mechanism behind the One Fix API's submission tickets
//! (`fix_core::api::SubmitApi`); `wait_batch` turns the calling thread
//! into an inline driver until the watched batch is done.

use crate::engine::{Engine, Job, Step};
use fix_core::error::{Error, Result};
use fix_core::handle::Handle;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
enum JobState {
    /// In the queue (or about to be).
    Queued,
    /// Parked until `pending` dependencies complete.
    Waiting { pending: usize },
    /// Finished successfully.
    Done(Handle),
    /// Finished with an error.
    Failed(Error),
}

#[derive(Debug, Default)]
struct JobEntry {
    state: Option<JobState>,
    waiters: Vec<Job>,
    /// Consecutive requeues where every reported dependency was already
    /// finished. Bounded in healthy operation (each requeue follows real
    /// progress); a runaway count means the job-state map and the
    /// engine's relation cache disagree, and the job is failed loudly
    /// instead of spinning forever.
    respins: u32,
}

/// Requeue bound before a job is declared stuck (see [`JobEntry::respins`]).
const MAX_RESPINS: u32 = 10_000;

#[derive(Default)]
struct Shared {
    jobs: HashMap<Job, JobEntry>,
    queue: VecDeque<Job>,
    /// Inline drivers currently stepping a popped job outside the lock.
    /// Living inside `Shared` makes the invariant structural: every
    /// mutation happens under the mutex, so a driver that checks this
    /// while deciding to park cannot miss the release wakeup.
    inline_executing: usize,
    /// Completion watchers: job → the watched batches (and the slot
    /// within each) that want its result. Registered by
    /// [`Scheduler::submit_watched`] under the same lock acquisition as
    /// the submission, drained by [`Scheduler::complete`] the moment the
    /// job finishes — so batch completion costs O(1) per job instead of
    /// a polling pass per executed step. A watcher exists only while its
    /// job is unfinished; detaching a batch removes its watchers
    /// eagerly, so a dropped ticket leaks nothing.
    watchers: HashMap<Job, Vec<(Arc<BatchState>, usize)>>,
}

/// The completion state of one watched batch: positional result slots
/// filled by the scheduler's completion path. Shared between the
/// scheduler (which fills) and a submission ticket (which waits).
///
/// Slots are only ever filled while holding the scheduler mutex, so the
/// `done` flag is ordered with the condvar the same way every other
/// stall-predicate mutation is — a waiter that checks `is_done` under
/// the lock before parking cannot miss the completing wakeup.
pub(crate) struct BatchState {
    /// The watched roots, slot-aligned (duplicates allowed: each slot
    /// resolves independently).
    jobs: Vec<Job>,
    /// Positional results; `None` while in flight.
    slots: Mutex<Vec<Option<Result<Handle>>>>,
    /// Unfilled slot count; reaches zero exactly once.
    remaining: AtomicUsize,
    /// Set (under the scheduler lock) when the last slot fills.
    done: AtomicBool,
}

impl BatchState {
    fn new(jobs: Vec<Job>) -> BatchState {
        let n = jobs.len();
        BatchState {
            jobs,
            slots: Mutex::new(vec![None; n]),
            remaining: AtomicUsize::new(n),
            done: AtomicBool::new(n == 0),
        }
    }

    /// True once every slot has a result.
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Clones out the positional results. Call only after
    /// [`is_done`](Self::is_done) returns true.
    pub(crate) fn results(&self) -> Vec<Result<Handle>> {
        debug_assert!(self.is_done(), "results() before the batch completed");
        self.slots
            .lock()
            .iter()
            .map(|s| s.clone().expect("completed batch slot is filled"))
            .collect()
    }

    /// Fills one slot (idempotent per slot). Callers hold the scheduler
    /// mutex, which is what serializes `remaining`/`done` against
    /// waiters' park decisions.
    fn fill(&self, pos: usize, result: Result<Handle>) {
        let mut slots = self.slots.lock();
        if slots[pos].is_none() {
            slots[pos] = Some(result);
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.done.store(true, Ordering::Release);
            }
        }
    }
}

/// The shared scheduler for one node.
pub struct Scheduler {
    engine: Arc<Engine>,
    shared: Mutex<Shared>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Number of pool workers attached (used for stall detection).
    workers_running: std::sync::atomic::AtomicUsize,
}

impl Scheduler {
    /// Creates a scheduler over an engine.
    pub fn new(engine: Arc<Engine>) -> Scheduler {
        Scheduler {
            engine,
            shared: Mutex::new(Shared::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers_running: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The engine this scheduler drives.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Submits a job if it is not already known. Returns immediately.
    pub fn submit(&self, job: Job) {
        let mut shared = self.shared.lock();
        self.submit_locked(&mut shared, job);
        drop(shared);
        self.cv.notify_all();
    }

    fn submit_locked(&self, shared: &mut Shared, job: Job) {
        let entry = shared.jobs.entry(job).or_default();
        if entry.state.is_none() {
            entry.state = Some(JobState::Queued);
            shared.queue.push_back(job);
        }
    }

    /// Submits every job in `roots` and registers a completion watcher
    /// for each, all under **one** lock acquisition, returning
    /// immediately — no caller thread is parked. Roots that already
    /// finished fill their slots on the spot; the rest fill as the
    /// completion path reaches them. This is the scheduler half of the
    /// One Fix API's `submit_many`.
    pub(crate) fn submit_watched(&self, roots: &[Job]) -> Arc<BatchState> {
        let state = Arc::new(BatchState::new(roots.to_vec()));
        {
            let mut shared = self.shared.lock();
            for (pos, &job) in roots.iter().enumerate() {
                match shared.jobs.get(&job).and_then(|e| e.state.clone()) {
                    Some(JobState::Done(h)) => state.fill(pos, Ok(h)),
                    Some(JobState::Failed(e)) => state.fill(pos, Err(e)),
                    _ => {
                        self.submit_locked(&mut shared, job);
                        shared
                            .watchers
                            .entry(job)
                            .or_default()
                            .push((Arc::clone(&state), pos));
                    }
                }
            }
        }
        self.cv.notify_all();
        state
    }

    /// Drives the queue on the calling thread until the watched batch
    /// completes; cooperates with pool workers and other inline drivers
    /// exactly like [`run_inline`](Scheduler::run_inline). On a genuine
    /// stall the batch's unfinished slots are failed (and its watchers
    /// deregistered) instead of parking forever.
    pub(crate) fn wait_batch(&self, state: &Arc<BatchState>) {
        loop {
            if state.is_done() {
                return;
            }
            let claim = {
                let mut shared = self.shared.lock();
                loop {
                    if state.is_done() {
                        return;
                    }
                    if let Some(claim) = self.pop_claimed(&mut shared) {
                        break claim;
                    }
                    if self.drained_and_stalled(&shared) {
                        self.fail_stalled_locked(&mut shared, state);
                        return;
                    }
                    self.cv.wait(&mut shared);
                }
            };
            claim.execute();
        }
    }

    /// Bounded progress toward a watched batch: steps one queued job
    /// inline if there is one, otherwise parks for at most `timeout`
    /// awaiting someone else's progress (or fails the batch on a genuine
    /// stall). The building block of `wait_any`-style multiplexing.
    pub(crate) fn advance_batch(&self, state: &Arc<BatchState>, timeout: Duration) {
        if state.is_done() {
            return;
        }
        let claim = {
            let mut shared = self.shared.lock();
            if state.is_done() {
                return;
            }
            match self.pop_claimed(&mut shared) {
                Some(claim) => claim,
                None => {
                    if self.drained_and_stalled(&shared) {
                        self.fail_stalled_locked(&mut shared, state);
                    } else {
                        self.cv.wait_for(&mut shared, timeout);
                    }
                    return;
                }
            }
        };
        claim.execute();
    }

    /// Withdraws a watched batch's completion watchers (the ticket was
    /// dropped unresolved). The jobs themselves stay submitted — they
    /// are shared, deduplicated state that other requests may depend on
    /// — but nothing batch-specific survives, so a dropped ticket can
    /// never accumulate scheduler memory.
    pub(crate) fn detach_batch(&self, state: &Arc<BatchState>) {
        let mut shared = self.shared.lock();
        self.deregister_locked(&mut shared, state);
    }

    /// Removes every watcher of `state` from the watcher map.
    fn deregister_locked(&self, shared: &mut Shared, state: &Arc<BatchState>) {
        for job in &state.jobs {
            if let std::collections::hash_map::Entry::Occupied(mut entry) =
                shared.watchers.entry(*job)
            {
                entry.get_mut().retain(|(s, _)| !Arc::ptr_eq(s, state));
                if entry.get().is_empty() {
                    entry.remove();
                }
            }
        }
    }

    /// Fails a watched batch's unfinished slots with the stall error
    /// (mirroring what [`run_inline`](Scheduler::run_inline) reports)
    /// and deregisters its watchers, so the waiter returns instead of
    /// parking on a graph that can never progress.
    fn fail_stalled_locked(&self, shared: &mut Shared, state: &Arc<BatchState>) {
        self.deregister_locked(shared, state);
        let unfilled: Vec<usize> = {
            let slots = state.slots.lock();
            (0..slots.len()).filter(|&i| slots[i].is_none()).collect()
        };
        for pos in unfilled {
            state.fill(
                pos,
                Err(Error::Trap(format!(
                    "evaluation stalled: no runnable jobs for {}",
                    state.jobs[pos]
                ))),
            );
        }
    }

    /// Registered completion watchers across all watched batches
    /// (diagnostic; the leak test pins this to zero after tickets are
    /// resolved or dropped).
    pub fn watcher_count(&self) -> usize {
        self.shared.lock().watchers.values().map(Vec::len).sum()
    }

    /// Discards all job state and any queued work.
    ///
    /// Job completion records double as a memo consistent with the
    /// engine's relation cache, so the two must be cleared together
    /// (see [`Runtime::clear_memoization`](crate::Runtime::clear_memoization)).
    /// Must only be called while no evaluation is in flight; queued jobs
    /// are dropped and their waiters never woken. Watched batches still
    /// in flight are failed loudly rather than silently forgotten, so a
    /// leaked ticket wait cannot hang.
    pub fn reset(&self) {
        let mut shared = self.shared.lock();
        shared.jobs.clear();
        shared.queue.clear();
        let watchers = std::mem::take(&mut shared.watchers);
        for (job, entries) in watchers {
            for (state, pos) in entries {
                state.fill(
                    pos,
                    Err(Error::Trap(format!(
                        "scheduler reset while {job} was in flight"
                    ))),
                );
            }
        }
        drop(shared);
        self.cv.notify_all();
    }

    /// Drops one finished job record, so a later submission re-steps it
    /// against the engine instead of short-circuiting to the recorded
    /// result. No-op if the job is still queued, running, or waited on.
    ///
    /// Used by recompute-on-demand after the matching relation-cache
    /// entries are removed, keeping the invariant that a `Done` job
    /// record always has its relations memoized.
    pub fn forget(&self, job: Job) {
        let mut shared = self.shared.lock();
        if let Some(entry) = shared.jobs.get(&job) {
            let finished = matches!(
                entry.state,
                Some(JobState::Done(_)) | Some(JobState::Failed(_))
            );
            if finished && entry.waiters.is_empty() {
                shared.jobs.remove(&job);
            }
        }
    }

    /// Drops completed job records that nothing waits on, bounding the
    /// job map for long-lived nodes. Results stay reproducible: the
    /// engine's relation cache still memoizes the underlying relations,
    /// so a re-submitted job completes from cache without re-running
    /// procedures.
    pub fn forget_finished(&self) -> usize {
        let mut shared = self.shared.lock();
        let before = shared.jobs.len();
        shared.jobs.retain(|_, entry| {
            !matches!(
                entry.state,
                Some(JobState::Done(_)) | Some(JobState::Failed(_))
            ) || !entry.waiters.is_empty()
        });
        before - shared.jobs.len()
    }

    /// Returns the job's result if it has finished.
    pub fn poll(&self, job: Job) -> Option<Result<Handle>> {
        let shared = self.shared.lock();
        match shared.jobs.get(&job).and_then(|e| e.state.as_ref()) {
            Some(JobState::Done(h)) => Some(Ok(*h)),
            Some(JobState::Failed(e)) => Some(Err(e.clone())),
            _ => None,
        }
    }

    /// Blocks until the job completes (requires a running [`WorkerPool`]
    /// or another thread driving the queue).
    pub fn wait(&self, job: Job) -> Result<Handle> {
        let mut shared = self.shared.lock();
        loop {
            match shared.jobs.get(&job).and_then(|e| e.state.as_ref()) {
                Some(JobState::Done(h)) => return Ok(*h),
                Some(JobState::Failed(e)) => return Err(e.clone()),
                _ => self.cv.wait(&mut shared),
            }
        }
    }

    /// True when no one can make progress: no pool workers and no inline
    /// driver mid-step. The caller holds `shared`, so a `false` answer is
    /// stable until the lock is released.
    fn drained_and_stalled(&self, shared: &Shared) -> bool {
        self.active_workers() == 0 && shared.inline_executing == 0
    }

    /// Pops the next queued job, claiming executor status under the lock
    /// so a concurrent inline driver that finds the queue empty sees the
    /// in-flight step instead of declaring a stall. The returned
    /// [`InlineClaim`] releases the claim on drop — including on unwind
    /// out of a panicking codelet, so a panic degrades to the stall
    /// error, never a parked-forever driver.
    fn pop_claimed<'a>(&'a self, shared: &mut Shared) -> Option<InlineClaim<'a>> {
        let job = shared.queue.pop_front()?;
        shared.inline_executing += 1;
        Some(InlineClaim {
            scheduler: self,
            job,
        })
    }

    /// Drives the queue on the calling thread until `root` completes.
    ///
    /// If worker threads are also draining the queue, this cooperates with
    /// them; when the queue is momentarily empty it waits for progress.
    /// Kept allocation-free separately from the watched-batch path
    /// (`submit_watched` + `wait_batch`, which backs `Runtime::eval_many`
    /// and the submission tickets) — this is the Fig. 7a microsecond
    /// path — with the subtle parts (executor claims, the stall
    /// predicate) shared between the two loops.
    pub fn run_inline(&self, root: Job) -> Result<Handle> {
        self.submit(root);
        loop {
            if let Some(result) = self.poll(root) {
                return result;
            }
            let claim = {
                let mut shared = self.shared.lock();
                loop {
                    match shared.jobs.get(&root).and_then(|e| e.state.as_ref()) {
                        Some(JobState::Done(h)) => return Ok(*h),
                        Some(JobState::Failed(e)) => return Err(e.clone()),
                        _ => {}
                    }
                    if let Some(claim) = self.pop_claimed(&mut shared) {
                        break claim;
                    }
                    // Queue is empty but the root isn't finished: jobs are
                    // running on pool workers or another inline driver, or
                    // the graph is stalled.
                    if self.drained_and_stalled(&shared) {
                        return Err(Error::Trap(format!(
                            "evaluation stalled: no runnable jobs for {root}"
                        )));
                    }
                    self.cv.wait(&mut shared);
                }
            };
            claim.execute();
        }
    }

    fn active_workers(&self) -> usize {
        self.workers_running.load(Ordering::Relaxed)
    }

    /// Releases an inline-executor claim. The decrement happens while
    /// holding the mutex (like [`begin_shutdown`](Scheduler::begin_shutdown)'s
    /// flag store, and for the same reason): an unlocked release could
    /// slip between a parked driver's stall check and its `cv.wait`,
    /// losing the wakeup.
    fn release_claim(&self) {
        {
            let mut shared = self.shared.lock();
            shared.inline_executing -= 1;
        }
        self.cv.notify_all();
    }

    /// Raises the shutdown flag so workers exit.
    ///
    /// The store happens *while holding the scheduler mutex*: a worker's
    /// check-shutdown-then-wait sequence is atomic only against mutators
    /// that hold the lock. An unlocked store can slip between a worker's
    /// flag check and its `cv.wait`, leaving it parked through the
    /// notify and deadlocking the joiner.
    fn begin_shutdown(&self) {
        {
            let _guard = self.shared.lock();
            self.shutdown.store(true, Ordering::SeqCst);
        }
        self.cv.notify_all();
    }

    /// Pops and executes one job; returns false if the queue was empty.
    fn try_drive_one(&self) -> bool {
        let job = self.shared.lock().queue.pop_front();
        match job {
            Some(job) => {
                self.execute(job);
                true
            }
            None => false,
        }
    }

    /// Steps a job and records the outcome.
    ///
    /// A panicking codelet is caught at this boundary and recorded as a
    /// guest [`Error::Trap`] — panics are guest faults like VM traps, and
    /// converting them here lets failure propagation wake every waiter.
    /// Letting the panic unwind instead would lose the job (its entry
    /// stays `Queued` but it is no longer in the queue), permanently
    /// hanging any driver or pool waiting on it.
    fn execute(&self, job: Job) {
        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.engine.step(job)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                Err(Error::Trap(format!("codelet panicked: {msg}")))
            });
        let mut shared = self.shared.lock();
        match step {
            Ok(Step::Done(h)) => self.complete(&mut shared, job, Ok(h)),
            Err(e) => self.complete(&mut shared, job, Err(e)),
            Ok(Step::Deps(deps)) => {
                let mut pending = 0usize;
                let mut failed: Option<Error> = None;
                for dep in deps {
                    match shared.jobs.get(&dep).and_then(|e| e.state.clone()) {
                        Some(JobState::Done(_)) => {}
                        Some(JobState::Failed(e)) => {
                            failed = Some(e);
                            break;
                        }
                        _ => {
                            self.submit_locked(&mut shared, dep);
                            let entry = shared.jobs.entry(dep).or_default();
                            entry.waiters.push(job);
                            pending += 1;
                        }
                    }
                }
                if let Some(e) = failed {
                    self.complete(&mut shared, job, Err(e));
                } else if pending == 0 {
                    // Everything finished in the meantime; go again — but
                    // bound the spins: if the engine keeps reporting deps
                    // the job map says are done, the two memo layers are
                    // out of sync (e.g. the relation cache was cleared
                    // without resetting the scheduler).
                    let entry = shared.jobs.entry(job).or_default();
                    entry.respins += 1;
                    if entry.respins > MAX_RESPINS {
                        self.complete(
                            &mut shared,
                            job,
                            Err(Error::Trap(format!(
                                "scheduler stuck re-stepping {job}: job states and the \
                                 relation cache disagree (was the cache cleared without \
                                 Runtime::clear_memoization?)"
                            ))),
                        );
                    } else {
                        entry.state = Some(JobState::Queued);
                        shared.queue.push_back(job);
                    }
                } else {
                    let entry = shared.jobs.entry(job).or_default();
                    entry.respins = 0;
                    entry.state = Some(JobState::Waiting { pending });
                }
            }
        }
        drop(shared);
        self.cv.notify_all();
    }

    /// Marks a job finished and wakes its (transitive) waiters, filling
    /// the slots of any watched batches as it goes (the completion
    /// notification hook behind submission tickets).
    fn complete(&self, shared: &mut Shared, job: Job, result: Result<Handle>) {
        // Worklist of (job, result) so failure propagation is iterative.
        let mut worklist: Vec<(Job, Result<Handle>)> = vec![(job, result)];
        while let Some((job, result)) = worklist.pop() {
            let entry = shared.jobs.entry(job).or_default();
            entry.state = Some(match &result {
                Ok(h) => JobState::Done(*h),
                Err(e) => JobState::Failed(e.clone()),
            });
            if let Some(watchers) = shared.watchers.remove(&job) {
                for (state, pos) in watchers {
                    state.fill(pos, result.clone());
                }
            }
            let waiters = std::mem::take(&mut entry.waiters);
            for waiter in waiters {
                match &result {
                    Ok(_) => {
                        let w = shared.jobs.entry(waiter).or_default();
                        if let Some(JobState::Waiting { pending }) = &mut w.state {
                            *pending -= 1;
                            if *pending == 0 {
                                w.state = Some(JobState::Queued);
                                shared.queue.push_back(waiter);
                            }
                        }
                    }
                    Err(e) => {
                        // Fail the waiter and its waiters transitively.
                        worklist.push((waiter, Err(e.clone())));
                    }
                }
            }
        }
    }
}

/// An inline driver's executor claim on one popped job (see
/// [`Scheduler::pop_claimed`]): while it lives, concurrent drivers that
/// find the queue empty wait for this step instead of reporting a
/// stall. Dropping releases the claim and wakes parked drivers — also
/// on unwind, so a panicking codelet leaves the scheduler consistent
/// (the surviving driver then reports the stall as an error).
struct InlineClaim<'a> {
    scheduler: &'a Scheduler,
    job: Job,
}

impl InlineClaim<'_> {
    /// Steps the claimed job, then releases the claim.
    fn execute(self) {
        self.scheduler.execute(self.job);
        // Release happens in Drop, which also covers the panic path.
    }
}

impl Drop for InlineClaim<'_> {
    fn drop(&mut self) {
        self.scheduler.release_claim();
    }
}

/// A pool of worker threads draining a scheduler's queue.
pub struct WorkerPool {
    scheduler: Arc<Scheduler>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `n` workers over the scheduler.
    pub fn spawn(scheduler: Arc<Scheduler>, n: usize) -> WorkerPool {
        scheduler.workers_running.fetch_add(n, Ordering::SeqCst);
        let threads = (0..n)
            .map(|i| {
                let sched = Arc::clone(&scheduler);
                std::thread::Builder::new()
                    .name(format!("fixpoint-worker-{i}"))
                    .spawn(move || sched.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { scheduler, threads }
    }

    /// Signals shutdown and joins all workers.
    pub fn shutdown(mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.scheduler.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Scheduler {
    fn worker_loop(&self) {
        /// Keeps `workers_running` an honest *live*-worker count: the
        /// decrement runs on every exit, including unwinding out of a
        /// panicking codelet. Without it, a dead worker would satisfy
        /// the stall predicate forever and park inline drivers instead
        /// of letting them report the stall. Decrement under the lock +
        /// notify, like every other stall-predicate mutation.
        struct LiveWorker<'a>(&'a Scheduler);
        impl Drop for LiveWorker<'_> {
            fn drop(&mut self) {
                {
                    let _guard = self.0.shared.lock();
                    self.0.workers_running.fetch_sub(1, Ordering::SeqCst);
                }
                self.0.cv.notify_all();
            }
        }
        let _live = LiveWorker(self);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !self.try_drive_one() {
                let mut shared = self.shared.lock();
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if shared.queue.is_empty() {
                    self.cv.wait(&mut shared);
                }
            }
        }
    }
}
